//! Real-TCP deployments of the YCSB microbenchmark: an in-process loopback
//! mesh for the transport ablation, and the multi-process launcher.
//!
//! Two deployment shapes share the [`aloha_core::Node`] runtime:
//!
//! * [`tcp_ycsb_run`] builds one [`TcpTransport`] **per node inside one
//!   process**, cross-wired over 127.0.0.1 — every cross-partition message
//!   pays real socket + codec cost while process management stays out of the
//!   measurement. This is the `tcp-loopback` row of
//!   `BENCH_ablation_transport.json`.
//! * [`launch`] spawns each node as its **own OS process** (re-executing the
//!   current binary with [`CHILD_FLAG`]) and drives them over a line-based
//!   stdin/stdout protocol: collect listener ports, broadcast the peer map,
//!   run the workload on the driver nodes, then merge the per-node commit
//!   histories and check the deployment's final state against the
//!   serializability checker's serial replay. With [`LaunchOpts::kill`] it
//!   SIGKILLs one non-driver node mid-run and respawns it over its durable
//!   WAL — a process-granular crash test.
//!
//! ## Child protocol
//!
//! ```text
//! child → parent   PORT <port>                 after binding 127.0.0.1:0
//! parent → child   peers <addr0> ... <addrN-1>
//! child → parent   READY                       node started
//! parent → child   run <txns> <seed>           driver nodes only
//! child → parent   DONE <committed> <aborted>
//! parent → child   dump-history <path>
//! child → parent   DUMPED <records>
//! parent → child   read-finals <path>          one node; settles first
//! child → parent   READ <keys>
//! parent → child   exit
//! child            (shuts its node down, exits 0)
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write as _};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use aloha_common::clock::UnixClock;
use aloha_common::codec::{Reader, Writer};
use aloha_common::{Key, Result, ServerId, Timestamp, Value};
use aloha_core::{
    diff_states, replay_history, CommitRecord, DurableLogSpec, Node, NodeConfig, ServerMsg,
    ServerMsgCodec, TxnOutcome,
};
use aloha_functor::{Functor, HandlerRegistry};
use aloha_net::{Addr, TcpTransport, Transport};
use aloha_storage::wal::{decode_functor, encode_functor};
use aloha_workloads::driver::{run_windowed, DriverConfig, Workload};
use aloha_workloads::ycsb::{self, YcsbConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::harness::RunResult;

/// Argv marker that re-enters this binary as a deployment child process.
pub const CHILD_FLAG: &str = "--aloha-node";

/// Builds `n` [`TcpTransport`]s in one process, every pair cross-wired over
/// loopback: transport `i` serves `Addr::Server(i)` (and transport 0 the
/// epoch manager), all others reach it via TCP.
///
/// # Panics
///
/// Panics when a listener cannot bind (no loopback available).
pub fn tcp_mesh(n: u16) -> Vec<Arc<TcpTransport<ServerMsg>>> {
    let codec = Arc::new(ServerMsgCodec);
    let transports: Vec<Arc<TcpTransport<ServerMsg>>> = (0..n)
        .map(|_| {
            Arc::new(
                TcpTransport::bind("127.0.0.1:0", codec.clone()).expect("bind loopback listener"),
            )
        })
        .collect();
    let addrs: Vec<SocketAddr> = transports.iter().map(|t| t.local_addr()).collect();
    for (i, transport) in transports.iter().enumerate() {
        for (j, at) in addrs.iter().enumerate() {
            if i == j {
                continue;
            }
            transport.add_peer(Addr::Server(ServerId(j as u16)), *at);
        }
        if i != 0 {
            transport.add_peer(Addr::EpochManager, addrs[0]);
        }
    }
    transports
}

/// The YCSB workload over a set of nodes: each transaction coordinates at
/// the node owning its first key, exactly like the in-process
/// [`aloha_workloads::ycsb::AlohaYcsb`] pins its front-end.
struct NodeYcsb {
    nodes: Vec<Arc<Node>>,
    cfg: Arc<YcsbConfig>,
}

impl Workload for NodeYcsb {
    type Handle = aloha_core::TxnHandle;

    fn submit(&self, rng: &mut SmallRng) -> Result<Self::Handle> {
        let keys = ycsb::gen_txn_keys(rng, &self.cfg);
        let fe = keys[0].partition(self.cfg.partitions).0 as usize;
        self.nodes[fe].execute(ycsb::YCSB_ALOHA, ycsb::encode_txn_args(&keys))
    }

    fn wait(&self, handle: Self::Handle) -> Result<bool> {
        Ok(handle.wait_processed()? == TxnOutcome::Committed)
    }
}

/// Builds, loads, drives and tears down a YCSB deployment of `cfg.partitions`
/// nodes over real loopback TCP (one transport per node, in one process).
/// The returned snapshot is node 0's (its server plus its transport's wire
/// counters); committed/aborted counts are driver-side and deployment-wide.
pub fn tcp_ycsb_run(cfg: &YcsbConfig, epoch: Duration, driver: &DriverConfig) -> RunResult {
    tcp_ycsb_run_tuned(cfg, epoch, driver, |c| c)
}

/// [`tcp_ycsb_run`] with a hook over each node's configuration, for
/// ablations that toggle one knob (compaction, durability) while keeping the
/// workload and epoch schedule identical. The hook runs once per node.
pub fn tcp_ycsb_run_tuned(
    cfg: &YcsbConfig,
    epoch: Duration,
    driver: &DriverConfig,
    tune: impl Fn(NodeConfig) -> NodeConfig,
) -> RunResult {
    let transports = tcp_mesh(cfg.partitions);
    let origin = UnixClock::unix_now_micros();
    let nodes: Vec<Arc<Node>> = transports
        .iter()
        .enumerate()
        .map(|(i, transport)| {
            let mut builder = Node::builder(tune(
                NodeConfig::new(ServerId(i as u16), cfg.partitions, origin)
                    .with_epoch_duration(epoch),
            ));
            ycsb::install_aloha_node(&mut builder);
            let net: Arc<dyn Transport<ServerMsg>> = Arc::clone(transport) as _;
            Arc::new(builder.start(net).expect("start node"))
        })
        .collect();
    for node in &nodes {
        ycsb::load_aloha_node(node, cfg);
    }
    let workload = NodeYcsb {
        nodes: nodes.clone(),
        cfg: Arc::new(cfg.clone()),
    };
    let report = run_windowed(&workload, driver);
    let snapshot = nodes[0].snapshot();
    drop(workload);
    for node in nodes {
        match Arc::try_unwrap(node) {
            Ok(node) => node.shutdown(),
            Err(_) => unreachable!("workload dropped; nodes are uniquely held"),
        }
    }
    RunResult::from_parts(&report, snapshot)
}

// ---------------------------------------------------------------------------
// Multi-process launcher
// ---------------------------------------------------------------------------

/// Launcher options (a deployment manifest in miniature).
#[derive(Debug, Clone)]
pub struct LaunchOpts {
    /// Total node processes (= servers = partitions).
    pub servers: u16,
    /// How many of them drive workload (nodes `0..drivers` act as FEs for
    /// the generated transactions; every node still coordinates remote
    /// installs as a BE).
    pub drivers: u16,
    /// Transactions submitted per driver node.
    pub txns_per_driver: u64,
    /// Unified epoch duration.
    pub epoch: Duration,
    /// Keys per partition (small for smoke runs: the verifier reads the
    /// whole key space back).
    pub keys_per_partition: u32,
    /// SIGKILL one non-driver node mid-run and respawn it over its durable
    /// WAL (forces `durable = true`).
    pub kill: bool,
    /// Give every node a crash-durable WAL under the scratch directory.
    pub durable: bool,
    /// Scratch directory for WALs, history dumps and final-state dumps.
    pub scratch: PathBuf,
}

impl LaunchOpts {
    /// A 2-FE/4-BE loopback smoke deployment writing scratch files under
    /// `scratch`.
    pub fn smoke(scratch: impl Into<PathBuf>) -> LaunchOpts {
        LaunchOpts {
            servers: 4,
            drivers: 2,
            txns_per_driver: 300,
            epoch: Duration::from_millis(5),
            keys_per_partition: 256,
            kill: false,
            durable: false,
            scratch: scratch.into(),
        }
    }

    fn ycsb(&self) -> YcsbConfig {
        YcsbConfig::with_contention_index(self.servers, 0.1)
            .with_keys_per_partition(self.keys_per_partition)
    }
}

/// What a [`launch`] run measured and concluded.
#[derive(Debug)]
pub struct LaunchReport {
    /// Committed transactions across all drivers.
    pub committed: u64,
    /// Aborted transactions across all drivers.
    pub aborted: u64,
    /// Commit records merged across the driver nodes.
    pub history_records: usize,
    /// Keys whose final value diverged from the serial replay (empty =
    /// the merged history is serializable and the state matches).
    pub divergences: usize,
    /// Whether a node process was killed and respawned during the run.
    pub killed: bool,
}

/// One child process and the line-based channel to it.
struct ChildProc {
    child: Child,
    stdin: std::process::ChildStdin,
    stdout: BufReader<std::process::ChildStdout>,
    port: u16,
}

impl ChildProc {
    /// Spawns one node child of the current executable and reads its PORT
    /// line.
    fn spawn(
        id: u16,
        opts: &LaunchOpts,
        origin: u64,
        record_history: bool,
    ) -> std::io::Result<ChildProc> {
        let exe = std::env::current_exe()?;
        let mut cmd = Command::new(exe);
        cmd.arg(CHILD_FLAG)
            .arg("--id")
            .arg(id.to_string())
            .arg("--servers")
            .arg(opts.servers.to_string())
            .arg("--epoch-micros")
            .arg(opts.epoch.as_micros().to_string())
            .arg("--origin")
            .arg(origin.to_string())
            .arg("--keys")
            .arg(opts.keys_per_partition.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        if record_history {
            cmd.arg("--history");
        }
        if opts.durable || opts.kill {
            cmd.arg("--wal").arg(opts.scratch.join(format!("wal-{id}")));
        }
        let mut child = cmd.spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line)?;
        let port = line
            .trim()
            .strip_prefix("PORT ")
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("child {id} said {line:?}, expected PORT"),
                )
            })?;
        Ok(ChildProc {
            child,
            stdin,
            stdout,
            port,
        })
    }

    fn send(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.stdin, "{line}")?;
        self.stdin.flush()
    }

    /// Reads one line and checks its first token.
    fn expect(&mut self, token: &str) -> std::io::Result<Vec<String>> {
        let mut line = String::new();
        self.stdout.read_line(&mut line)?;
        let mut parts = line.split_whitespace().map(str::to_string);
        match parts.next() {
            Some(t) if t == token => Ok(parts.collect()),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected {token}, child said {other:?} ({line:?})"),
            )),
        }
    }
}

/// Runs a full multi-process deployment per `opts` and verifies the merged
/// history. See the module docs for the protocol.
///
/// # Errors
///
/// Process management and protocol violations surface as `Err`; a
/// serializability divergence is reported in the `Ok` report (callers
/// decide whether to fail).
pub fn launch(opts: &LaunchOpts) -> std::io::Result<LaunchReport> {
    std::fs::create_dir_all(&opts.scratch)?;
    let origin = UnixClock::unix_now_micros();
    let mut children: Vec<ChildProc> = (0..opts.servers)
        .map(|id| ChildProc::spawn(id, opts, origin, id < opts.drivers))
        .collect::<std::io::Result<_>>()?;

    broadcast_peers(&mut children)?;
    for child in &mut children {
        child.expect("READY")?;
    }

    // Drivers run concurrently: send all `run`s, then collect all `DONE`s
    // (each driver is single-threaded; deployment parallelism comes from
    // running several driver processes).
    for (i, child) in children.iter_mut().enumerate().take(opts.drivers as usize) {
        child.send(&format!(
            "run {} {}",
            opts.txns_per_driver,
            0xA10A + i as u64
        ))?;
    }

    let mut killed = false;
    if opts.kill {
        // Kill the last node — never a driver (drivers hold the workload
        // loops), never node 0 (it hosts the epoch manager). The victim's
        // partition goes dark mid-run; drivers ride it out on RPC
        // retransmission until the respawned process recovers from its WAL
        // and rejoins on a fresh ephemeral port (`add_peer` overwrites, so
        // a peer-map rebroadcast redirects everyone).
        let victim = (opts.servers - 1) as usize;
        assert!(victim >= opts.drivers as usize, "need a non-driver to kill");
        std::thread::sleep(Duration::from_millis(200));
        children[victim].child.kill()?;
        let _ = children[victim].child.wait();
        std::thread::sleep(Duration::from_millis(100));
        children[victim] = ChildProc::spawn(victim as u16, opts, origin, false)?;
        broadcast_peers(&mut children)?;
        children[victim].expect("READY")?;
        killed = true;
    }

    let mut committed = 0;
    let mut aborted = 0;
    for child in children.iter_mut().take(opts.drivers as usize) {
        let parts = child.expect("DONE")?;
        committed += parts
            .first()
            .and_then(|p| p.parse::<u64>().ok())
            .unwrap_or(0);
        aborted += parts
            .get(1)
            .and_then(|p| p.parse::<u64>().ok())
            .unwrap_or(0);
    }

    // Merge the driver histories.
    let mut records = Vec::new();
    for (i, child) in children.iter_mut().enumerate().take(opts.drivers as usize) {
        let path = opts.scratch.join(format!("history-{i}.bin"));
        child.send(&format!("dump-history {}", path.display()))?;
        child.expect("DUMPED")?;
        records.extend(read_history(&path)?);
    }
    records.sort_by_key(|r| r.ts);

    // Final state, read through the live deployment by node 0.
    let finals_path = opts.scratch.join("finals.bin");
    children[0].send(&format!("read-finals {}", finals_path.display()))?;
    children[0].expect("READ")?;
    let actual = read_finals(&finals_path)?;

    for child in &mut children {
        child.send("exit")?;
    }
    for child in &mut children {
        let _ = child.child.wait();
    }

    // Serial replay: the loaded zero rows enter as one synthetic bottom
    // record below every transaction timestamp (loads install at version 1).
    let cfg = opts.ycsb();
    let bottom = CommitRecord {
        ts: Timestamp::from_raw(1),
        writes: ycsb::all_keys(&cfg)
            .into_iter()
            .map(|k| (k, Functor::Value(Value::from_i64(0))))
            .collect(),
        reads: Vec::new(),
        aborted_at_install: false,
    };
    let mut all = vec![bottom];
    all.extend(records);
    let history_records = all.len() - 1;
    let expected = replay_history(&all, &HandlerRegistry::new())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let divergences = diff_states(&expected, &actual);

    Ok(LaunchReport {
        committed,
        aborted,
        history_records,
        divergences: divergences.len(),
        killed,
    })
}

/// Sends every child the full peer address map.
fn broadcast_peers(children: &mut [ChildProc]) -> std::io::Result<()> {
    let peers: Vec<String> = children
        .iter()
        .map(|c| format!("127.0.0.1:{}", c.port))
        .collect();
    let line = format!("peers {}", peers.join(" "));
    for child in children.iter_mut() {
        child.send(&line)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------------

/// Parsed [`CHILD_FLAG`] argv.
struct ChildArgs {
    id: u16,
    servers: u16,
    epoch: Duration,
    origin: u64,
    keys: u32,
    history: bool,
    wal: Option<PathBuf>,
}

fn parse_child_args(args: &[String]) -> std::result::Result<ChildArgs, String> {
    let mut out = ChildArgs {
        id: 0,
        servers: 0,
        epoch: Duration::from_millis(25),
        origin: 0,
        keys: 256,
        history: false,
        wal: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{arg} needs a value"));
        match arg.as_str() {
            "--id" => out.id = value()?.parse().map_err(|e| format!("--id: {e}"))?,
            "--servers" => {
                out.servers = value()?.parse().map_err(|e| format!("--servers: {e}"))?;
            }
            "--epoch-micros" => {
                out.epoch = Duration::from_micros(
                    value()?
                        .parse()
                        .map_err(|e| format!("--epoch-micros: {e}"))?,
                );
            }
            "--origin" => out.origin = value()?.parse().map_err(|e| format!("--origin: {e}"))?,
            "--keys" => out.keys = value()?.parse().map_err(|e| format!("--keys: {e}"))?,
            "--history" => out.history = true,
            "--wal" => out.wal = Some(PathBuf::from(value()?)),
            other => return Err(format!("unknown child argument '{other}'")),
        }
    }
    if out.servers == 0 {
        return Err("--servers required".into());
    }
    Ok(out)
}

/// Entry point for a [`CHILD_FLAG`] process: runs one node until `exit`.
/// `args` excludes the flag itself. Never returns normally — the process
/// exits 0 on a clean `exit`, 1 on a protocol or startup failure.
pub fn child_main(args: &[String]) -> ! {
    let code = match run_child(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("node child failed: {e}");
            1
        }
    };
    std::process::exit(code);
}

fn run_child(args: &[String]) -> std::result::Result<(), String> {
    let args = parse_child_args(args)?;
    let cfg =
        YcsbConfig::with_contention_index(args.servers, 0.1).with_keys_per_partition(args.keys);

    let tcp = Arc::new(
        TcpTransport::bind("127.0.0.1:0", Arc::new(ServerMsgCodec))
            .map_err(|e| format!("bind: {e}"))?,
    );
    println!("PORT {}", tcp.local_addr().port());

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    let mut next = || -> std::result::Result<String, String> {
        lines
            .next()
            .ok_or("launcher hung up".to_string())?
            .map_err(|e| e.to_string())
    };

    // Phase 1: peer map.
    let line = next()?;
    let mut parts = line.split_whitespace();
    if parts.next() != Some("peers") {
        return Err(format!("expected peers, got {line:?}"));
    }
    apply_peers(&tcp, &args, parts)?;

    // Phase 2: start the node and load owned rows.
    let mut node_config = NodeConfig::new(ServerId(args.id), args.servers, args.origin)
        .with_epoch_duration(args.epoch)
        // Process kill + respawn leaves a partition dark for a while;
        // per-attempt timeouts well above the epoch keep retransmission
        // alive across it without stalling the no-fault path.
        .with_rpc_timeout(Duration::from_millis(500));
    if args.history {
        node_config = node_config.with_history();
    }
    if let Some(dir) = &args.wal {
        // Multi-process deployments need per-append kernel flushes: the
        // install ack travels to a remote coordinator that commits on the
        // strength of it, so a SIGKILL must not eat acked installs still
        // sitting in a userspace buffer.
        node_config =
            node_config.with_durable_log(DurableLogSpec::new(dir).with_flush_appends(true));
    }
    let mut builder = Node::builder(node_config);
    ycsb::install_aloha_node(&mut builder);
    let net: Arc<dyn Transport<ServerMsg>> = Arc::clone(&tcp) as _;
    let node = Arc::new(builder.start(net).map_err(|e| format!("start node: {e}"))?);
    ycsb::load_aloha_node(&node, &cfg);
    println!("READY");

    // Phase 3: command loop. `run` executes on a worker thread so the loop
    // stays responsive — a `peers` rebroadcast must be applied *while* the
    // workload runs, or a killed-and-respawned peer would stay unreachable
    // exactly when retransmission needs its new address.
    let mut worker: Option<std::thread::JoinHandle<()>> = None;
    loop {
        let line = next()?;
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("run") => {
                let txns: u64 = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or("run needs a txn count")?;
                let seed: u64 = parts.next().and_then(|p| p.parse().ok()).unwrap_or(0);
                let node = Arc::clone(&node);
                let cfg = cfg.clone();
                worker = Some(std::thread::spawn(move || {
                    let (committed, aborted) = drive(&node, &cfg, txns, seed);
                    println!("DONE {committed} {aborted}");
                }));
            }
            Some("dump-history") => {
                let path = PathBuf::from(parts.next().ok_or("dump-history needs a path")?);
                let records = node.history().map(|h| h.snapshot()).unwrap_or_default();
                write_history(&path, &records).map_err(|e| e.to_string())?;
                println!("DUMPED {}", records.len());
            }
            Some("read-finals") => {
                let path = PathBuf::from(parts.next().ok_or("read-finals needs a path")?);
                let keys = ycsb::all_keys(&cfg);
                let values = node
                    .read_latest(&keys)
                    .map_err(|e| format!("final read: {e}"))?;
                write_finals(&path, &keys, &values).map_err(|e| e.to_string())?;
                println!("READ {}", keys.len());
            }
            Some("peers") => {
                // Rebroadcast after a peer respawned on a new port;
                // `add_peer` overwrites, redirecting future sends.
                apply_peers(&tcp, &args, parts)?;
            }
            Some("exit") | None => {
                if let Some(worker) = worker.take() {
                    let _ = worker.join();
                }
                if let Ok(node) = Arc::try_unwrap(node) {
                    node.shutdown();
                }
                return Ok(());
            }
            Some(other) => return Err(format!("unknown command '{other}'")),
        }
    }
}

/// Applies a `peers <addr0> ...` line to this child's transport. Runs both
/// at startup and when the launcher rebroadcasts after a respawn.
fn apply_peers(
    tcp: &TcpTransport<ServerMsg>,
    args: &ChildArgs,
    parts: std::str::SplitWhitespace<'_>,
) -> std::result::Result<(), String> {
    let peers: Vec<SocketAddr> = parts
        .map(|p| p.parse().map_err(|e| format!("bad peer '{p}': {e}")))
        .collect::<std::result::Result<_, String>>()?;
    if peers.len() != args.servers as usize {
        return Err(format!(
            "peer map has {} entries for {} servers",
            peers.len(),
            args.servers
        ));
    }
    for (j, at) in peers.iter().enumerate() {
        if j as u16 != args.id {
            tcp.add_peer(Addr::Server(ServerId(j as u16)), *at);
        }
    }
    if args.id != 0 {
        tcp.add_peer(Addr::EpochManager, peers[0]);
    }
    Ok(())
}

/// Submits `txns` YCSB transactions through this node's FE with a bounded
/// in-flight window, waiting each batch out. Single-threaded: deployment
/// parallelism comes from several driver processes.
fn drive(node: &Node, cfg: &YcsbConfig, txns: u64, seed: u64) -> (u64, u64) {
    const WINDOW: usize = 32;
    let mut rng = SmallRng::seed_from_u64(seed);
    let (mut committed, mut aborted) = (0u64, 0u64);
    let mut inflight = Vec::with_capacity(WINDOW);
    let mut submitted = 0u64;
    while submitted < txns || !inflight.is_empty() {
        while submitted < txns && inflight.len() < WINDOW {
            // Bias the first key toward this node so coordination stays
            // mostly local, as each driver fronts its own clients.
            let mut keys = ycsb::gen_txn_keys(&mut rng, cfg);
            if rng.gen_bool(0.5) {
                let n = keys.len();
                keys.rotate_left(rng.gen_range(0..n));
            }
            if let Ok(handle) = node.execute(ycsb::YCSB_ALOHA, ycsb::encode_txn_args(&keys)) {
                inflight.push(handle);
            } else {
                aborted += 1;
            }
            submitted += 1;
        }
        for handle in inflight.drain(..) {
            match handle.wait_processed() {
                Ok(TxnOutcome::Committed) => committed += 1,
                _ => aborted += 1,
            }
        }
    }
    (committed, aborted)
}

// ---------------------------------------------------------------------------
// History / finals dump codecs (launcher-internal files)
// ---------------------------------------------------------------------------

fn write_history(path: &Path, records: &[CommitRecord]) -> std::io::Result<()> {
    let mut w = Writer::new();
    w.put_u32(records.len() as u32);
    for record in records {
        w.put_u64(record.ts.raw());
        w.put_u8(u8::from(record.aborted_at_install));
        w.put_u32(record.writes.len() as u32);
        for (key, functor) in &record.writes {
            w.put_bytes(key.as_bytes());
            encode_functor(&mut w, functor);
        }
    }
    std::fs::write(path, w.into_bytes())
}

fn read_history(path: &Path) -> std::io::Result<Vec<CommitRecord>> {
    let bytes = std::fs::read(path)?;
    let invalid = |e: String| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
    let mut r = Reader::new(&bytes);
    let n = r.get_u32().map_err(|e| invalid(e.to_string()))?;
    let mut records = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let ts = Timestamp::from_raw(r.get_u64().map_err(|e| invalid(e.to_string()))?);
        let aborted_at_install = r.get_u8().map_err(|e| invalid(e.to_string()))? != 0;
        let writes_len = r.get_u32().map_err(|e| invalid(e.to_string()))?;
        let mut writes = Vec::with_capacity(writes_len as usize);
        for _ in 0..writes_len {
            let key = Key::from(r.get_bytes().map_err(|e| invalid(e.to_string()))?.to_vec());
            let functor = decode_functor(&mut r).map_err(|e| invalid(e.to_string()))?;
            writes.push((key, functor));
        }
        records.push(CommitRecord {
            ts,
            writes,
            reads: Vec::new(),
            aborted_at_install,
        });
    }
    Ok(records)
}

fn write_finals(path: &Path, keys: &[Key], values: &[Option<Value>]) -> std::io::Result<()> {
    let mut w = Writer::new();
    w.put_u32(keys.len() as u32);
    for (key, value) in keys.iter().zip(values) {
        w.put_bytes(key.as_bytes());
        match value {
            Some(v) => {
                w.put_u8(1).put_bytes(v.as_bytes());
            }
            None => {
                w.put_u8(0);
            }
        }
    }
    std::fs::write(path, w.into_bytes())
}

fn read_finals(path: &Path) -> std::io::Result<HashMap<Key, Option<Value>>> {
    let bytes = std::fs::read(path)?;
    let invalid = |e: String| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
    let mut r = Reader::new(&bytes);
    let n = r.get_u32().map_err(|e| invalid(e.to_string()))?;
    let mut map = HashMap::with_capacity(n as usize);
    for _ in 0..n {
        let key = Key::from(r.get_bytes().map_err(|e| invalid(e.to_string()))?.to_vec());
        let value = match r.get_u8().map_err(|e| invalid(e.to_string()))? {
            0 => None,
            _ => Some(Value::from(
                r.get_bytes().map_err(|e| invalid(e.to_string()))?.to_vec(),
            )),
        };
        map.insert(key, value);
    }
    Ok(map)
}
