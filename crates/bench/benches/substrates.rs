//! Criterion microbenchmarks for the substrates underlying the evaluation:
//! multi-version storage, functor computing, decentralized timestamps, the
//! row codec and Calvin's lock manager. These quantify the constants behind
//! the figure-level results (e.g. how cheap a functor install is compared to
//! acquiring a lock).

use std::sync::Arc;

use aloha_common::{Key, PartitionId, ServerId, Timestamp, Value};
use aloha_epoch::TimestampOracle;
use aloha_functor::{builtin, Functor, HandlerRegistry};
use aloha_storage::{LocalOnlyEnv, Partition, VersionChain};
use aloha_workloads::tpcc::{StockRow, TpccConfig};
use calvin::{LockManager, LockMode};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn ts(v: u64) -> Timestamp {
    Timestamp::from_raw(v)
}

fn bench_version_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("version_chain");
    group.bench_function("insert_ascending", |b| {
        b.iter_batched(
            VersionChain::new,
            |chain| {
                for v in 1..=256u64 {
                    chain.insert(ts(v), Functor::value_i64(v as i64));
                }
                chain
            },
            criterion::BatchSize::SmallInput,
        );
    });
    let chain = VersionChain::new();
    for v in 1..=1024u64 {
        chain.insert(ts(v), Functor::value_i64(v as i64));
    }
    group.bench_function("lookup_floor_1024", |b| {
        b.iter(|| chain.floor(black_box(ts(512))));
    });
    // Same lookup after the chain is fully packed: the settled path is a
    // binary search over plain (version, value) pairs, no `Arc` bumps.
    let packed = VersionChain::new();
    for v in 1..=1024u64 {
        packed.insert(ts(v), Functor::value_i64(v as i64));
    }
    packed.advance_watermark(ts(1024));
    packed.compact(Timestamp::ZERO, usize::MAX);
    group.bench_function("lookup_floor_1024_packed", |b| {
        b.iter(|| packed.floor(black_box(ts(512))));
    });
    group.bench_function("watermark_advance", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            chain.advance_watermark(ts(v));
        });
    });
    group.finish();
}

fn bench_functor_compute(c: &mut Criterion) {
    let mut group = c.benchmark_group("functor");
    group.bench_function("apply_numeric_add", |b| {
        let prev = Value::from_i64(100);
        b.iter(|| builtin::apply_numeric(black_box(&Functor::Add(7)), Some(&prev)));
    });
    group.bench_function("resolve_add_chain_64", |b| {
        b.iter_batched(
            || {
                let p = Partition::new(PartitionId(0), 1, Arc::new(HandlerRegistry::new()));
                let k = Key::from("hot");
                p.install(&k, ts(1), Functor::value_i64(0)).unwrap();
                for v in 2..=65u64 {
                    p.install(&k, ts(v), Functor::add(1)).unwrap();
                }
                (p, k)
            },
            |(p, k)| p.get(&k, ts(1000), &LocalOnlyEnv).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("get_settled_history", |b| {
        let p = Partition::new(PartitionId(0), 1, Arc::new(HandlerRegistry::new()));
        let k = Key::from("settled");
        p.install(&k, ts(1), Functor::value_i64(0)).unwrap();
        for v in 2..=128u64 {
            p.install(&k, ts(v), Functor::add(1)).unwrap();
        }
        p.get(&k, ts(1000), &LocalOnlyEnv).unwrap(); // settle everything
        b.iter(|| p.get(&k, black_box(ts(64)), &LocalOnlyEnv).unwrap());
    });
    group.finish();
}

fn bench_timestamps(c: &mut Criterion) {
    c.bench_function("timestamp_oracle_issue", |b| {
        let mut oracle = TimestampOracle::new(ServerId(3));
        let mut now = 1u64;
        b.iter(|| {
            now += 1;
            oracle.issue(now, 0, u64::MAX / 2).unwrap()
        });
    });
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let stock = StockRow {
        i_id: 7,
        w_id: 3,
        quantity: 91,
        ytd: 1000,
        order_cnt: 17,
    };
    group.bench_function("stock_row_encode", |b| {
        b.iter(|| black_box(&stock).encode());
    });
    let encoded = stock.encode();
    group.bench_function("stock_row_decode", |b| {
        b.iter(|| StockRow::decode(black_box(&encoded)).unwrap());
    });
    let cfg = TpccConfig::by_warehouse(8, 1);
    group.bench_function("tpcc_key_build", |b| {
        b.iter(|| cfg.orderline_key(black_box(3), 7, 3001, 5));
    });
    group.finish();
}

fn bench_lock_manager(c: &mut Criterion) {
    let mut group = c.benchmark_group("calvin_locks");
    group.bench_function("acquire_release_uncontended", |b| {
        let mut lm = LockManager::new();
        let key = Key::from("k");
        let mut txn = 0u64;
        b.iter(|| {
            txn += 1;
            lm.acquire(txn, &key, LockMode::Write);
            lm.release(txn, &key);
        });
    });
    group.bench_function("hot_key_queue_depth_64", |b| {
        b.iter_batched(
            || {
                let mut lm = LockManager::new();
                let key = Key::from("hot");
                for txn in 0..64u64 {
                    lm.acquire(txn, &key, LockMode::Write);
                }
                (lm, key)
            },
            |(mut lm, key)| {
                for txn in 0..64u64 {
                    lm.release(txn, &key);
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_version_chain,
    bench_functor_compute,
    bench_timestamps,
    bench_codec,
    bench_lock_manager
);
criterion_main!(benches);
