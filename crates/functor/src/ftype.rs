//! The f-type / f-argument representation of functors (Table I).

use std::fmt;

use aloha_common::{Key, Value};
use bytes::Bytes;

/// Identifier of a registered user-defined functor handler.
///
/// The f-type of a user-defined functor "indicates which handler to call for
/// computing the functor" (§IV-B); this id is that indication.
///
/// # Examples
///
/// ```
/// use aloha_functor::HandlerId;
/// assert_eq!(HandlerId(3).0, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HandlerId(pub u32);

impl fmt::Display for HandlerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A user-defined functor: handler id, functor read set, argument blob and
/// recipient set (§IV-B).
///
/// * `read_set` — the keys whose latest values *below the functor's version*
///   the handler needs; the computing phase gathers them (locally or
///   remotely) before invoking the handler.
/// * `args` — an opaque argument blob interpreted by the handler.
/// * `recipient_set` — keys whose functors (of the same transaction) read
///   *this* functor's key: the proactive remote-read push optimization. Empty
///   when the optimization is off; never required for correctness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserFunctor {
    /// Which registered handler computes this functor.
    pub handler: HandlerId,
    /// Keys read by the handler (at versions strictly below the functor's).
    pub read_set: Vec<Key>,
    /// Opaque argument blob for the handler.
    pub args: Bytes,
    /// Keys to proactively push this key's pre-version value to.
    pub recipient_set: Vec<Key>,
}

impl UserFunctor {
    /// Creates a user functor with no recipient set.
    pub fn new(handler: HandlerId, read_set: Vec<Key>, args: impl Into<Bytes>) -> UserFunctor {
        UserFunctor {
            handler,
            read_set,
            args: args.into(),
            recipient_set: Vec::new(),
        }
    }

    /// Adds a recipient set (proactive push optimization).
    pub fn with_recipients(mut self, recipients: Vec<Key>) -> UserFunctor {
        self.recipient_set = recipients;
        self
    }
}

/// A functor: a placeholder for the value of one key at one version.
///
/// The first three variants are *final* — they need no computing phase and
/// can never change again. The numeric variants read only the previous
/// version of their own key ("the read set comprises only the key to which
/// the functor was written", §IV-B). `User` functors call a registered
/// [`crate::Handler`].
///
/// # Examples
///
/// ```
/// use aloha_common::Value;
/// use aloha_functor::Functor;
///
/// assert!(Functor::Value(Value::from_i64(1)).is_final());
/// assert!(Functor::Aborted.is_final());
/// assert!(!Functor::add(5).is_final());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Functor {
    /// `VALUE` — the f-argument *is* the value; no computing needed.
    Value(Value),
    /// `ABORTED` — this version is aborted; reads skip it (Alg 1 line 22).
    Aborted,
    /// `DELETED` — tombstone: the key is deleted as of this version.
    Deleted,
    /// `ADD` — increment previous numeric value by the argument.
    Add(i64),
    /// `SUBTR` — decrement previous numeric value by the argument.
    Subtr(i64),
    /// `MAX` — replace previous value if the argument is larger.
    Max(i64),
    /// `MIN` — replace previous value if the argument is smaller.
    Min(i64),
    /// User-defined f-type dispatched through the handler registry.
    User(UserFunctor),
}

impl Functor {
    /// Shorthand for an `ADD` functor.
    pub fn add(delta: i64) -> Functor {
        Functor::Add(delta)
    }

    /// Shorthand for a `SUBTR` functor.
    pub fn subtr(delta: i64) -> Functor {
        Functor::Subtr(delta)
    }

    /// Shorthand for a `VALUE` functor holding an i64.
    pub fn value_i64(v: i64) -> Functor {
        Functor::Value(Value::from_i64(v))
    }

    /// Whether this functor is already in final form (`VALUE`, `ABORTED` or
    /// `DELETED`) and therefore needs no computing phase.
    pub fn is_final(&self) -> bool {
        matches!(
            self,
            Functor::Value(_) | Functor::Aborted | Functor::Deleted
        )
    }

    /// Whether this functor requires the computing phase.
    pub fn needs_compute(&self) -> bool {
        !self.is_final()
    }

    /// The read set of this functor *excluding* the implicit self-read of the
    /// numeric f-types. Numeric functors return an empty slice because "the
    /// read set comprises only the key to which the functor was written, in
    /// which case the read set is omitted" (§IV-B).
    pub fn external_read_set(&self) -> &[Key] {
        match self {
            Functor::User(u) => &u.read_set,
            _ => &[],
        }
    }

    /// The recipient set for the proactive-push optimization (empty unless
    /// this is a user functor configured with one).
    pub fn recipient_set(&self) -> &[Key] {
        match self {
            Functor::User(u) => &u.recipient_set,
            _ => &[],
        }
    }

    /// Rough payload bytes held by this functor (memory accounting; ignores
    /// enum discriminant and inline numeric deltas, counts heap payloads).
    pub fn approx_bytes(&self) -> usize {
        match self {
            Functor::Value(v) => v.len(),
            Functor::User(u) => {
                u.args.len()
                    + u.read_set.iter().map(|k| k.as_bytes().len()).sum::<usize>()
                    + u.recipient_set
                        .iter()
                        .map(|k| k.as_bytes().len())
                        .sum::<usize>()
            }
            _ => 0,
        }
    }

    /// Human-readable f-type name, as in Table I.
    pub fn ftype_name(&self) -> &'static str {
        match self {
            Functor::Value(_) => "VALUE",
            Functor::Aborted => "ABORTED",
            Functor::Deleted => "DELETED",
            Functor::Add(_) => "ADD",
            Functor::Subtr(_) => "SUBTR",
            Functor::Max(_) => "MAX",
            Functor::Min(_) => "MIN",
            Functor::User(_) => "user-defined",
        }
    }
}

impl fmt::Display for Functor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Functor::Value(v) => write!(f, "VALUE({v:?})"),
            Functor::Aborted => write!(f, "ABORTED"),
            Functor::Deleted => write!(f, "DELETED"),
            Functor::Add(d) => write!(f, "ADD({d})"),
            Functor::Subtr(d) => write!(f, "SUBTR({d})"),
            Functor::Max(d) => write!(f, "MAX({d})"),
            Functor::Min(d) => write!(f, "MIN({d})"),
            Functor::User(u) => {
                write!(
                    f,
                    "USER({}, reads={}, args={}B)",
                    u.handler,
                    u.read_set.len(),
                    u.args.len()
                )
            }
        }
    }
}

impl From<Value> for Functor {
    fn from(v: Value) -> Functor {
        Functor::Value(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finality_matches_table_one() {
        assert!(Functor::Value(Value::from_i64(0)).is_final());
        assert!(Functor::Aborted.is_final());
        assert!(Functor::Deleted.is_final());
        for f in [
            Functor::Add(1),
            Functor::Subtr(1),
            Functor::Max(1),
            Functor::Min(1),
        ] {
            assert!(f.needs_compute(), "{f} must need compute");
        }
        let user = Functor::User(UserFunctor::new(HandlerId(1), vec![], Bytes::new()));
        assert!(user.needs_compute());
    }

    #[test]
    fn numeric_read_set_is_implicit() {
        assert!(Functor::Add(1).external_read_set().is_empty());
        assert!(Functor::Max(9).external_read_set().is_empty());
    }

    #[test]
    fn user_read_and_recipient_sets_round_trip() {
        let k1 = Key::from("a");
        let k2 = Key::from("b");
        let u = UserFunctor::new(HandlerId(7), vec![k1.clone()], Bytes::from_static(b"x"))
            .with_recipients(vec![k2.clone()]);
        let f = Functor::User(u);
        assert_eq!(f.external_read_set(), &[k1]);
        assert_eq!(f.recipient_set(), &[k2]);
    }

    #[test]
    fn ftype_names_match_paper() {
        assert_eq!(Functor::Value(Value::default()).ftype_name(), "VALUE");
        assert_eq!(Functor::Aborted.ftype_name(), "ABORTED");
        assert_eq!(Functor::Deleted.ftype_name(), "DELETED");
        assert_eq!(Functor::Add(0).ftype_name(), "ADD");
        assert_eq!(Functor::Subtr(0).ftype_name(), "SUBTR");
        assert_eq!(Functor::Max(0).ftype_name(), "MAX");
        assert_eq!(Functor::Min(0).ftype_name(), "MIN");
    }

    #[test]
    fn display_is_informative() {
        let s = Functor::add(42).to_string();
        assert!(s.contains("ADD") && s.contains("42"));
    }

    #[test]
    fn value_conversion() {
        let f: Functor = Value::from_i64(3).into();
        assert!(matches!(f, Functor::Value(v) if v.as_i64() == Some(3)));
    }
}
