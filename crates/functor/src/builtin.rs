//! Computation of the built-in f-types and the OCC validation handler.

use aloha_common::codec::{Reader, Writer};
use aloha_common::{Error, Key, Result, Timestamp, Value};

use crate::ftype::Functor;
use crate::handler::{ComputeInput, Handler, HandlerOutput};

/// Applies a numeric f-type (`ADD`/`SUBTR`/`MAX`/`MIN`) to the previous value
/// of its own key.
///
/// Missing previous values are treated as the identity for the operation: 0
/// for `ADD`/`SUBTR`, and the argument itself for `MAX`/`MIN` — i.e. the
/// first write through a `MAX` functor establishes the value.
///
/// # Errors
///
/// Returns [`Error::Codec`] if the previous value exists but is not an i64,
/// or if the functor is not a numeric f-type. Callers map such logic errors
/// to a transaction abort (§IV-C "arbitrary abort").
///
/// # Examples
///
/// ```
/// use aloha_common::Value;
/// use aloha_functor::{builtin, Functor};
///
/// let v = builtin::apply_numeric(&Functor::Max(10), Some(&Value::from_i64(3))).unwrap();
/// assert_eq!(v.as_i64(), Some(10));
/// let first = builtin::apply_numeric(&Functor::Min(7), None).unwrap();
/// assert_eq!(first.as_i64(), Some(7));
/// ```
pub fn apply_numeric(functor: &Functor, prev: Option<&Value>) -> Result<Value> {
    let prev_num = match prev {
        Some(v) => Some(
            v.as_i64()
                .ok_or_else(|| Error::Codec("numeric functor over non-i64 value".into()))?,
        ),
        None => None,
    };
    let out = match (functor, prev_num) {
        (Functor::Add(d), p) => p.unwrap_or(0).wrapping_add(*d),
        (Functor::Subtr(d), p) => p.unwrap_or(0).wrapping_sub(*d),
        (Functor::Max(d), Some(p)) => p.max(*d),
        (Functor::Max(d), None) => *d,
        (Functor::Min(d), Some(p)) => p.min(*d),
        (Functor::Min(d), None) => *d,
        (other, _) => {
            return Err(Error::Codec(format!(
                "apply_numeric called on non-numeric f-type {}",
                other.ftype_name()
            )))
        }
    };
    Ok(Value::from_i64(out))
}

/// The optimistic method for dependent transactions (§IV-E, Hyder-style).
///
/// The front-end executes a dependent transaction against a snapshot at
/// `tsr`, records the version of every read, pre-computes the write value,
/// and installs an `OccValidate` functor at `tsw`. Computing the functor
/// re-reads the read set at versions `< tsw` and aborts iff any read-set key
/// changed after `tsr` — i.e. its latest version differs from the recorded
/// snapshot version. Unlike Hyder's central log melding, each functor
/// validates independently and in parallel.
///
/// The argument blob is produced by [`OccValidateHandler::encode_args`].
#[derive(Debug, Default, Clone, Copy)]
pub struct OccValidateHandler;

impl OccValidateHandler {
    /// Encodes the OCC argument blob: the snapshot versions of the read set
    /// and the pre-computed value to commit on successful validation.
    pub fn encode_args(snapshot: &[(Key, Timestamp)], value: &Value) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(snapshot.len() as u32);
        for (key, version) in snapshot {
            w.put_bytes(key.as_bytes());
            w.put_u64(version.raw());
        }
        w.put_bytes(value.as_bytes());
        w.into_bytes()
    }

    fn decode_and_validate(&self, input: &ComputeInput<'_>) -> Result<HandlerOutput> {
        let mut r = Reader::new(input.args);
        let n = r.get_u32()?;
        for _ in 0..n {
            let key = Key::from(r.get_bytes()?);
            let recorded = Timestamp::from_raw(r.get_u64()?);
            let current = input
                .reads
                .get(&key)
                .map(|vr| vr.version)
                .unwrap_or(Timestamp::ZERO);
            if current != recorded {
                return Ok(HandlerOutput::abort());
            }
        }
        let value = Value::from(r.get_bytes()?.to_vec());
        Ok(HandlerOutput::commit(value))
    }
}

impl Handler for OccValidateHandler {
    fn compute(&self, input: &ComputeInput<'_>) -> HandlerOutput {
        // A malformed argument blob is a logic error: abort the transaction
        // rather than wedge the processor.
        self.decode_and_validate(input)
            .unwrap_or_else(|_| HandlerOutput::abort())
    }

    fn name(&self) -> &str {
        "occ-validate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::{Reads, VersionedRead};

    #[test]
    fn add_and_subtr_treat_missing_as_zero() {
        assert_eq!(
            apply_numeric(&Functor::Add(5), None).unwrap().as_i64(),
            Some(5)
        );
        assert_eq!(
            apply_numeric(&Functor::Subtr(5), None).unwrap().as_i64(),
            Some(-5)
        );
    }

    #[test]
    fn add_subtr_compose_with_previous() {
        let prev = Value::from_i64(100);
        assert_eq!(
            apply_numeric(&Functor::Add(50), Some(&prev))
                .unwrap()
                .as_i64(),
            Some(150)
        );
        assert_eq!(
            apply_numeric(&Functor::Subtr(30), Some(&prev))
                .unwrap()
                .as_i64(),
            Some(70)
        );
    }

    #[test]
    fn max_min_clamp() {
        let prev = Value::from_i64(10);
        assert_eq!(
            apply_numeric(&Functor::Max(3), Some(&prev))
                .unwrap()
                .as_i64(),
            Some(10)
        );
        assert_eq!(
            apply_numeric(&Functor::Max(30), Some(&prev))
                .unwrap()
                .as_i64(),
            Some(30)
        );
        assert_eq!(
            apply_numeric(&Functor::Min(3), Some(&prev))
                .unwrap()
                .as_i64(),
            Some(3)
        );
        assert_eq!(
            apply_numeric(&Functor::Min(30), Some(&prev))
                .unwrap()
                .as_i64(),
            Some(10)
        );
    }

    #[test]
    fn add_wraps_rather_than_panicking() {
        let prev = Value::from_i64(i64::MAX);
        let v = apply_numeric(&Functor::Add(1), Some(&prev)).unwrap();
        assert_eq!(v.as_i64(), Some(i64::MIN));
    }

    #[test]
    fn non_numeric_previous_value_is_an_error() {
        let prev = Value::new(vec![1, 2, 3]);
        assert!(apply_numeric(&Functor::Add(1), Some(&prev)).is_err());
    }

    #[test]
    fn non_numeric_ftype_is_an_error() {
        assert!(apply_numeric(&Functor::Aborted, None).is_err());
    }

    fn occ_input_parts(
        key: &Key,
        snapshot_version: Timestamp,
        current_version: Timestamp,
    ) -> (Vec<u8>, Reads) {
        let args = OccValidateHandler::encode_args(
            &[(key.clone(), snapshot_version)],
            &Value::from_i64(99),
        );
        let mut reads = Reads::new();
        reads.insert(
            key.clone(),
            VersionedRead::found(current_version, Value::from_i64(1)),
        );
        (args, reads)
    }

    #[test]
    fn occ_commits_when_versions_unchanged() {
        let key = Key::from("a");
        let ts = Timestamp::from_raw(10);
        let (args, reads) = occ_input_parts(&key, ts, ts);
        let input = ComputeInput {
            key: &key,
            version: Timestamp::from_raw(20),
            reads: &reads,
            args: &args,
        };
        let out = OccValidateHandler.compute(&input);
        assert_eq!(out, HandlerOutput::commit(Value::from_i64(99)));
    }

    #[test]
    fn occ_aborts_when_read_set_changed() {
        let key = Key::from("a");
        let (args, reads) = occ_input_parts(&key, Timestamp::from_raw(10), Timestamp::from_raw(15));
        let input = ComputeInput {
            key: &key,
            version: Timestamp::from_raw(20),
            reads: &reads,
            args: &args,
        };
        let out = OccValidateHandler.compute(&input);
        assert_eq!(out, HandlerOutput::abort());
    }

    #[test]
    fn occ_aborts_when_snapshot_key_vanished() {
        let key = Key::from("a");
        let args = OccValidateHandler::encode_args(
            &[(key.clone(), Timestamp::from_raw(10))],
            &Value::from_i64(1),
        );
        let reads = Reads::new(); // key not gathered at all
        let input = ComputeInput {
            key: &key,
            version: Timestamp::from_raw(20),
            reads: &reads,
            args: &args,
        };
        assert_eq!(OccValidateHandler.compute(&input), HandlerOutput::abort());
    }

    #[test]
    fn occ_malformed_args_abort() {
        let key = Key::from("a");
        let reads = Reads::new();
        let input = ComputeInput {
            key: &key,
            version: Timestamp::from_raw(1),
            reads: &reads,
            args: &[1],
        };
        assert_eq!(OccValidateHandler.compute(&input), HandlerOutput::abort());
    }
}
