//! Handlers: the stored-procedure side of user-defined f-types.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use aloha_common::{Error, Key, Result, Timestamp, Value};

use crate::ftype::{Functor, HandlerId};

/// One gathered read: the version at which a value was found and the value
/// itself (`None` when the key was deleted or never written).
///
/// The version is reported so that validation-style handlers (e.g. the OCC
/// method for dependent transactions, §IV-E) can detect that a read-set key
/// changed between two timestamps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedRead {
    /// Version the value was found at ([`Timestamp::ZERO`] when none).
    pub version: Timestamp,
    /// The value, or `None` for deleted/never-written keys.
    pub value: Option<Value>,
}

impl VersionedRead {
    /// A read that found nothing.
    pub fn missing() -> VersionedRead {
        VersionedRead {
            version: Timestamp::ZERO,
            value: None,
        }
    }

    /// A read that found `value` at `version`.
    pub fn found(version: Timestamp, value: Value) -> VersionedRead {
        VersionedRead {
            version,
            value: Some(value),
        }
    }
}

/// The gathered read-set values passed to a handler.
///
/// # Examples
///
/// ```
/// use aloha_common::{Key, Timestamp, Value};
/// use aloha_functor::{Reads, VersionedRead};
///
/// let mut reads = Reads::new();
/// reads.insert(Key::from("a"), VersionedRead::found(Timestamp::from_raw(1), Value::from_i64(5)));
/// assert_eq!(reads.value(&Key::from("a")).unwrap().as_i64(), Some(5));
/// assert!(reads.value(&Key::from("b")).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Reads {
    entries: HashMap<Key, VersionedRead>,
}

impl Reads {
    /// Creates an empty read set.
    pub fn new() -> Reads {
        Reads::default()
    }

    /// Records the read for `key`.
    pub fn insert(&mut self, key: Key, read: VersionedRead) {
        self.entries.insert(key, read);
    }

    /// The full read entry for `key`, if it was gathered.
    pub fn get(&self, key: &Key) -> Option<&VersionedRead> {
        self.entries.get(key)
    }

    /// Just the value for `key` (`None` if missing, deleted, or not gathered).
    pub fn value(&self, key: &Key) -> Option<&Value> {
        self.entries.get(key).and_then(|r| r.value.as_ref())
    }

    /// The i64 decoding of the value for `key`.
    pub fn i64(&self, key: &Key) -> Option<i64> {
        self.value(key).and_then(Value::as_i64)
    }

    /// Number of gathered reads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no reads were gathered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over (key, read) pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &VersionedRead)> {
        self.entries.iter()
    }
}

/// Everything a handler may inspect while computing one functor.
#[derive(Debug)]
pub struct ComputeInput<'a> {
    /// The key the functor was written to.
    pub key: &'a Key,
    /// The functor's version (the transaction's timestamp).
    pub version: Timestamp,
    /// Values of the functor read set at versions `< version`.
    pub reads: &'a Reads,
    /// The f-argument blob.
    pub args: &'a [u8],
}

/// The committed outcome of computing a functor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The key takes this value at the functor's version.
    Commit(Value),
    /// The transaction aborts; every functor of the transaction must reach
    /// this same decision (§IV-C "arbitrary abort").
    Abort,
    /// The key is deleted at the functor's version.
    Delete,
}

impl Outcome {
    /// Converts the outcome into the final-form functor stored in its place.
    pub fn into_functor(self) -> Functor {
        match self {
            Outcome::Commit(v) => Functor::Value(v),
            Outcome::Abort => Functor::Aborted,
            Outcome::Delete => Functor::Deleted,
        }
    }
}

/// A handler's full result: the outcome for the functor's own key plus any
/// deferred writes to *dependent keys* (§IV-E key-dependency method).
///
/// Deferred writes are installed at the same version as the determinate
/// functor that produced them, "because all the writes belong to the same
/// transaction".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandlerOutput {
    /// Outcome for the functor's own key.
    pub outcome: Outcome,
    /// Writes to dependent keys discovered during computation.
    pub deferred_writes: Vec<(Key, Functor)>,
}

impl HandlerOutput {
    /// A plain commit with no deferred writes.
    pub fn commit(value: Value) -> HandlerOutput {
        HandlerOutput {
            outcome: Outcome::Commit(value),
            deferred_writes: Vec::new(),
        }
    }

    /// An abort decision.
    pub fn abort() -> HandlerOutput {
        HandlerOutput {
            outcome: Outcome::Abort,
            deferred_writes: Vec::new(),
        }
    }

    /// A delete decision.
    pub fn delete() -> HandlerOutput {
        HandlerOutput {
            outcome: Outcome::Delete,
            deferred_writes: Vec::new(),
        }
    }

    /// Attaches deferred writes to this output.
    pub fn with_deferred(mut self, writes: Vec<(Key, Functor)>) -> HandlerOutput {
        self.deferred_writes = writes;
        self
    }
}

/// A user-defined functor computing procedure.
///
/// Handlers must be deterministic functions of their [`ComputeInput`]: a
/// functor may be computed speculatively by more than one thread, and all
/// computations must agree. Handlers must not perform side effects other than
/// returning deferred writes.
pub trait Handler: Send + Sync {
    /// Computes the functor's outcome from its gathered reads and argument.
    fn compute(&self, input: &ComputeInput<'_>) -> HandlerOutput;

    /// Short name for diagnostics.
    fn name(&self) -> &str {
        "anonymous"
    }
}

impl<F> Handler for F
where
    F: Fn(&ComputeInput<'_>) -> HandlerOutput + Send + Sync,
{
    fn compute(&self, input: &ComputeInput<'_>) -> HandlerOutput {
        self(input)
    }

    fn name(&self) -> &str {
        "closure"
    }
}

/// Registry mapping [`HandlerId`]s to handlers.
///
/// The registry is immutable after construction (handlers are registered at
/// cluster start, like stored procedures), so lookups need no lock.
///
/// # Examples
///
/// ```
/// use aloha_functor::{ComputeInput, HandlerId, HandlerOutput, HandlerRegistry};
/// use aloha_common::Value;
///
/// let mut reg = HandlerRegistry::new();
/// reg.register(HandlerId(1), |_input: &ComputeInput<'_>| {
///     HandlerOutput::commit(Value::from_i64(7))
/// });
/// assert!(reg.get(HandlerId(1)).is_ok());
/// assert!(reg.get(HandlerId(2)).is_err());
/// ```
#[derive(Default)]
pub struct HandlerRegistry {
    handlers: HashMap<HandlerId, Arc<dyn Handler>>,
}

impl HandlerRegistry {
    /// Creates an empty registry.
    pub fn new() -> HandlerRegistry {
        HandlerRegistry::default()
    }

    /// Registers `handler` under `id`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate ids — handler wiring is static configuration, so a
    /// collision is a programming error.
    pub fn register(&mut self, id: HandlerId, handler: impl Handler + 'static) {
        let prev = self.handlers.insert(id, Arc::new(handler));
        assert!(prev.is_none(), "duplicate handler registration for {id}");
    }

    /// Registers an already-shared handler under `id`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate ids.
    pub fn register_arc(&mut self, id: HandlerId, handler: Arc<dyn Handler>) {
        let prev = self.handlers.insert(id, handler);
        assert!(prev.is_none(), "duplicate handler registration for {id}");
    }

    /// Looks up the handler for `id`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownHandler`] if no handler is registered.
    pub fn get(&self, id: HandlerId) -> Result<&Arc<dyn Handler>> {
        self.handlers.get(&id).ok_or(Error::UnknownHandler(id.0))
    }

    /// Number of registered handlers.
    pub fn len(&self) -> usize {
        self.handlers.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.handlers.is_empty()
    }
}

impl fmt::Debug for HandlerRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut ids: Vec<_> = self.handlers.keys().collect();
        ids.sort();
        f.debug_struct("HandlerRegistry")
            .field("ids", &ids)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_handler(v: i64) -> impl Handler {
        move |_input: &ComputeInput<'_>| HandlerOutput::commit(Value::from_i64(v))
    }

    #[test]
    fn registry_dispatches() {
        let mut reg = HandlerRegistry::new();
        reg.register(HandlerId(1), constant_handler(5));
        let reads = Reads::new();
        let key = Key::from("k");
        let input = ComputeInput {
            key: &key,
            version: Timestamp::from_raw(9),
            reads: &reads,
            args: &[],
        };
        let out = reg.get(HandlerId(1)).unwrap().compute(&input);
        assert_eq!(out.outcome, Outcome::Commit(Value::from_i64(5)));
    }

    #[test]
    fn unknown_handler_is_error() {
        let reg = HandlerRegistry::new();
        assert!(matches!(
            reg.get(HandlerId(9)),
            Err(Error::UnknownHandler(9))
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate handler")]
    fn duplicate_registration_panics() {
        let mut reg = HandlerRegistry::new();
        reg.register(HandlerId(1), constant_handler(1));
        reg.register(HandlerId(1), constant_handler(2));
    }

    #[test]
    fn outcome_to_functor_mapping() {
        assert_eq!(
            Outcome::Commit(Value::from_i64(1)).into_functor(),
            Functor::Value(Value::from_i64(1))
        );
        assert_eq!(Outcome::Abort.into_functor(), Functor::Aborted);
        assert_eq!(Outcome::Delete.into_functor(), Functor::Deleted);
    }

    #[test]
    fn reads_lookup_and_missing() {
        let mut reads = Reads::new();
        let k = Key::from("x");
        reads.insert(
            k.clone(),
            VersionedRead::found(Timestamp::from_raw(4), Value::from_i64(2)),
        );
        assert_eq!(reads.i64(&k), Some(2));
        assert_eq!(reads.get(&k).unwrap().version, Timestamp::from_raw(4));
        assert!(reads.value(&Key::from("y")).is_none());
        assert_eq!(reads.len(), 1);
    }

    #[test]
    fn deferred_writes_attach() {
        let out = HandlerOutput::commit(Value::from_i64(1))
            .with_deferred(vec![(Key::from("dep"), Functor::value_i64(2))]);
        assert_eq!(out.deferred_writes.len(), 1);
    }

    #[test]
    fn missing_read_has_zero_version() {
        let m = VersionedRead::missing();
        assert_eq!(m.version, Timestamp::ZERO);
        assert!(m.value.is_none());
    }
}
