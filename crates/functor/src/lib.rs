//! Functors: typed placeholders for the future value of a key.
//!
//! A *functor* (§IV of the paper) is written into the multi-version store in
//! place of a concrete value during a write epoch, and is *computed* — turned
//! into its immutable final form — asynchronously after the epoch, or on
//! demand when a read encounters it. Functor computing only reads historical
//! versions, so it needs no locks; this is what lets ECC support serializable
//! read-write transactions without aborting on conflicts.
//!
//! The crate provides:
//!
//! * [`Functor`] — the f-type/f-argument representation of Table I:
//!   `VALUE`, `ABORTED`, `DELETED`, the numeric self-referential types
//!   `ADD`/`SUBTR`/`MAX`/`MIN`, and user-defined functors carrying a read set,
//!   argument blob and recipient set.
//! * [`Handler`] and [`HandlerRegistry`] — the stored-procedure side of
//!   user-defined f-types.
//! * [`builtin`] — computation of the numeric f-types and the
//!   [`builtin::OccValidateHandler`] used by the optimistic method for
//!   dependent transactions (§IV-E).
//!
//! # Examples
//!
//! ```
//! use aloha_common::Value;
//! use aloha_functor::{builtin, Functor};
//!
//! // An ADD functor applied to a previous balance of 150 yields 250.
//! let functor = Functor::add(100);
//! let out = builtin::apply_numeric(&functor, Some(&Value::from_i64(150))).unwrap();
//! assert_eq!(out.as_i64(), Some(250));
//! ```

pub mod builtin;
pub mod ftype;
pub mod handler;

pub use ftype::{Functor, HandlerId, UserFunctor};
pub use handler::{
    ComputeInput, Handler, HandlerOutput, HandlerRegistry, Outcome, Reads, VersionedRead,
};
