//! Partial replication: hot-partition standbys fed by WAL log shipping,
//! promoted at an epoch boundary when their primary dies.
//!
//! The engine-independent pieces (ship buffer, standby applier, hotness
//! policy, availability accounting) live in [`aloha_replica`]; this module
//! wires them to the cluster's [`Transport`] and [`crate::server::Server`]s:
//!
//! * **Shipping.** While a partition has a standby attached, its server's
//!   [`aloha_replica::ShipFeed`] buffers every encoded WAL frame the durable
//!   log accepts. `Server::commit_wal` — the epoch group commit that runs
//!   just before the `RevokedAck` — drains the buffer and sends it as one
//!   [`ServerMsg::ShipBatch`] on the transport's reliable lane to
//!   [`Addr::Replica`]. A settled epoch therefore implies its frames
//!   reached the standby's queue, the invariant promotion rests on.
//! * **Standby.** Each attached partition gets a dedicated applier thread
//!   ([`run_standby`]) draining `Addr::Replica(id)`: it replays the frames
//!   through the same idempotent WAL codec recovery uses and acks the
//!   replicated watermark back to the primary's feed.
//! * **Attach/detach.** The hotness controller (or a test) attaches and
//!   detaches standbys online. Attach activates the feed *first*, then
//!   bootstraps the standby from a checkpoint plus a full WAL snapshot, so
//!   every record is covered by at least one of {checkpoint, WAL snapshot,
//!   shipped frames}; all three apply idempotently (first-write-wins).
//! * **Promotion.** [`ReplicaSet::promote_take`] runs after the victim's
//!   threads are joined: a flush barrier (an empty `ShipBatch`, FIFO behind
//!   every real batch) waits out the standby's queue, the victim's leftover
//!   feed buffer is applied directly, and the caught-up standby partition is
//!   handed back to the cluster to build the promoted server over.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aloha_common::{Error, PartitionId, Result, ServerId, Timestamp};
use aloha_net::{reply_pair, Addr, Endpoint, Transport};
use aloha_replica::{HotnessPolicy, Standby};
use aloha_storage::Partition;
use parking_lot::Mutex;

use aloha_common::metrics::Counter;
use aloha_common::stats::StatsSnapshot;

use crate::msg::ServerMsg;
use crate::server::Server;

/// Partial-replication knobs (see
/// [`crate::ClusterConfig::with_partial_replication`]).
///
/// # Examples
///
/// ```
/// use aloha_core::PartialReplicationSpec;
///
/// let spec = PartialReplicationSpec::new(2).with_pinned(vec![0]);
/// assert_eq!(spec.budget, 2);
/// ```
#[derive(Debug, Clone)]
pub struct PartialReplicationSpec {
    /// Maximum number of partitions with a standby at any time.
    pub budget: usize,
    /// How often the hotness controller re-ranks partitions and rebalances
    /// standby attachments.
    pub rebalance_interval: Duration,
    /// Hysteresis margin (percent) a challenger must beat the weakest
    /// incumbent by before the controller swaps standbys (see
    /// [`HotnessPolicy::with_margin_pct`]).
    pub margin_pct: u64,
    /// Partitions that always hold a standby (attached at start, never
    /// detached by the controller). Each pin consumes one budget slot.
    pub pinned: Vec<u16>,
}

impl PartialReplicationSpec {
    /// A spec with the given standby budget: 50 ms rebalance cadence, 20 %
    /// swap hysteresis, nothing pinned.
    pub fn new(budget: usize) -> PartialReplicationSpec {
        PartialReplicationSpec {
            budget,
            rebalance_interval: Duration::from_millis(50),
            margin_pct: 20,
            pinned: Vec::new(),
        }
    }

    /// Overrides the controller's rebalance cadence.
    #[must_use]
    pub fn with_rebalance_interval(mut self, interval: Duration) -> PartialReplicationSpec {
        self.rebalance_interval = interval;
        self
    }

    /// Overrides the swap hysteresis margin.
    #[must_use]
    pub fn with_margin_pct(mut self, pct: u64) -> PartialReplicationSpec {
        self.margin_pct = pct;
        self
    }

    /// Pins partitions that must always be replicated.
    #[must_use]
    pub fn with_pinned(mut self, pinned: Vec<u16>) -> PartialReplicationSpec {
        self.pinned = pinned;
        self
    }
}

/// One attached standby: the applier state plus its runner thread.
struct StandbyEntry {
    standby: Arc<Standby>,
    runner: std::thread::JoinHandle<()>,
}

/// The live standby set for one cluster: attach/detach/promote operations
/// plus the counters the `replication` stats subtree exports.
///
/// All operations serialize on the internal map lock; they are rare (the
/// controller's cadence) and each one must see the previous one's endpoint
/// registration state.
pub(crate) struct ReplicaSet {
    net: Arc<dyn Transport<ServerMsg>>,
    spec: PartialReplicationSpec,
    /// Builds a fresh partition for a standby (same handlers and dependency
    /// rules as the primaries).
    partition_factory: Box<dyn Fn(u16) -> Arc<Partition> + Send + Sync>,
    /// The cluster's epoch duration, used to size attach-time barriers.
    epoch_duration: Duration,
    standbys: Mutex<BTreeMap<u16, StandbyEntry>>,
    attaches: Counter,
    detaches: Counter,
    promotions: Counter,
    /// Shipped bytes/records applied by standbys that have since been
    /// consumed (promoted or detached) — their own counters die with them,
    /// so the cumulative bandwidth totals live here.
    retired_bytes: Counter,
    retired_records: Counter,
}

impl ReplicaSet {
    pub(crate) fn new(
        net: Arc<dyn Transport<ServerMsg>>,
        spec: PartialReplicationSpec,
        partition_factory: Box<dyn Fn(u16) -> Arc<Partition> + Send + Sync>,
        epoch_duration: Duration,
    ) -> ReplicaSet {
        ReplicaSet {
            net,
            spec,
            partition_factory,
            epoch_duration,
            standbys: Mutex::new(BTreeMap::new()),
            attaches: Counter::new(),
            detaches: Counter::new(),
            promotions: Counter::new(),
            retired_bytes: Counter::new(),
            retired_records: Counter::new(),
        }
    }

    fn retire(&self, standby: &Standby) {
        self.retired_bytes.add(standby.applied_bytes());
        self.retired_records.add(standby.applied_records());
    }

    /// The hotness policy the controller ranks with: pinned partitions
    /// consume budget slots up front.
    pub(crate) fn policy(&self) -> HotnessPolicy {
        let free = self.spec.budget.saturating_sub(self.spec.pinned.len());
        HotnessPolicy::new(free).with_margin_pct(self.spec.margin_pct)
    }

    pub(crate) fn attached_ids(&self) -> BTreeSet<u16> {
        self.standbys.lock().keys().copied().collect()
    }

    pub(crate) fn watermark(&self, id: u16) -> Option<Timestamp> {
        self.standbys.lock().get(&id).map(|e| e.standby.watermark())
    }

    /// Attaches a standby to `server`'s partition online. Returns `false`
    /// when one is already attached (idempotent).
    ///
    /// Ordering is what makes the catch-up airtight: the feed activates
    /// *before* the checkpoint and WAL snapshot are taken, so a record
    /// logged at any moment is inside the checkpoint (≤ its cut), inside
    /// the WAL snapshot (logged before the snapshot), or buffered in the
    /// feed (logged after activation) — and every path applies
    /// idempotently.
    pub(crate) fn attach(&self, server: &Arc<Server>) -> Result<bool> {
        let mut standbys = self.standbys.lock();
        let id = server.id();
        if standbys.contains_key(&id.0) {
            return Ok(false);
        }
        if server.is_shutdown() {
            return Err(Error::Config(format!(
                "cannot attach a standby to down server {}",
                id.0
            )));
        }
        let endpoint = self.net.register(Addr::Replica(id));
        let partition = (self.partition_factory)(id.0);
        let standby = Arc::new(Standby::new(partition));
        let runner_standby = Arc::clone(&standby);
        let runner = std::thread::Builder::new()
            .name(format!("standby-s{}", id.0))
            .spawn(move || run_standby(runner_standby, endpoint))
            .expect("spawn standby runner");
        server.ship_feed().activate();
        let catch_up = || -> Result<()> {
            // Cosmetic epoch-boundary alignment: let the current epoch
            // settle so the checkpoint cut lands on a boundary. Correctness
            // does not depend on the wait succeeding.
            let bound0 = server.epoch().visible_bound();
            let deadline =
                Instant::now() + (self.epoch_duration * 4).max(Duration::from_millis(20));
            let _ = server.epoch().wait_visible(bound0.succ(), Some(deadline));
            let at = server.epoch().visible_bound();
            let blob = server.write_checkpoint(at)?;
            let wal = server.wal_snapshot();
            standby.bootstrap(&blob)?;
            standby.apply_wal_snapshot(at, &wal)?;
            Ok(())
        };
        if let Err(e) = catch_up() {
            server.ship_feed().deactivate();
            let _ = self
                .net
                .send_reliable(Addr::Replica(id), ServerMsg::Shutdown);
            self.net.deregister(Addr::Replica(id));
            let _ = runner.join();
            return Err(e);
        }
        standbys.insert(id.0, StandbyEntry { standby, runner });
        self.attaches.incr();
        Ok(true)
    }

    /// Detaches `server`'s standby and discards its state. Returns `false`
    /// when none was attached.
    pub(crate) fn detach(&self, server: &Arc<Server>) -> bool {
        let mut standbys = self.standbys.lock();
        let id = server.id();
        let Some(entry) = standbys.remove(&id.0) else {
            return false;
        };
        server.ship_feed().deactivate();
        self.stop_runner(id, entry.runner);
        self.retire(&entry.standby);
        self.detaches.incr();
        true
    }

    /// Takes the standby of a just-killed primary for promotion, caught up
    /// to everything the victim ever logged. Must run after the victim's
    /// dispatcher, processors and executor have stopped (nothing pushes into
    /// the feed anymore). Returns `None` when the partition had no standby
    /// (the restart-from-WAL fallback applies).
    pub(crate) fn promote_take(&self, victim: &Arc<Server>) -> Option<Arc<Standby>> {
        let mut standbys = self.standbys.lock();
        let id = victim.id();
        let entry = standbys.remove(&id.0)?;
        // Flush barrier: an empty ShipBatch queued behind every real batch
        // (the endpoint is FIFO); its reply means the standby applied all
        // frames shipped before the kill.
        let (reply, handle) = reply_pair::<Timestamp>();
        let feed = victim.ship_feed();
        let barrier = ServerMsg::ShipBatch {
            from: PartitionId(id.0),
            watermark: feed.shipped_watermark(),
            frames: Arc::new(Vec::new()),
            reply,
        };
        if self.net.send_reliable(Addr::Replica(id), barrier).is_ok() {
            let _ = handle.wait_timeout((self.epoch_duration * 8).max(Duration::from_secs(1)));
        }
        // Frames the victim logged but never drained (its final epoch never
        // group-committed) — or drained and had refused by the transport —
        // are still in the feed buffer. Apply them directly: together with
        // the barrier this covers every frame the victim ever logged.
        if let Some(batch) = feed.drain() {
            let _ = entry.standby.apply_batch(batch.watermark, &batch.frames);
        }
        feed.deactivate();
        self.stop_runner(id, entry.runner);
        self.retire(&entry.standby);
        self.promotions.incr();
        Some(entry.standby)
    }

    /// Stops every standby runner (cluster shutdown).
    pub(crate) fn shutdown_all(&self) {
        let mut standbys = self.standbys.lock();
        let entries: Vec<(u16, StandbyEntry)> =
            std::mem::take(&mut *standbys).into_iter().collect();
        for (id, entry) in entries {
            self.stop_runner(ServerId(id), entry.runner);
        }
    }

    fn stop_runner(&self, id: ServerId, runner: std::thread::JoinHandle<()>) {
        // The shutdown message must go out while the endpoint is still
        // registered (same dance as a server kill); deregistering also
        // disconnects the endpoint, so the runner exits either way.
        let _ = self
            .net
            .send_reliable(Addr::Replica(id), ServerMsg::Shutdown);
        self.net.deregister(Addr::Replica(id));
        let _ = runner.join();
    }

    /// The `replication` node of the cluster stats tree.
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        let mut node = StatsSnapshot::new("replication");
        node.set_gauge("budget", self.spec.budget as u64);
        node.set_gauge("attached", self.standbys.lock().len() as u64);
        node.set_counter("attaches", self.attaches.get());
        node.set_counter("detaches", self.detaches.get());
        node.set_counter("promotions", self.promotions.get());
        // Lifetime bandwidth totals: live standbys plus everything consumed
        // standbys applied before promotion/detach retired them.
        let (mut bytes, mut records) = (self.retired_bytes.get(), self.retired_records.get());
        for entry in self.standbys.lock().values() {
            bytes += entry.standby.applied_bytes();
            records += entry.standby.applied_records();
        }
        node.set_counter("applied_bytes_total", bytes);
        node.set_counter("applied_records_total", records);
        for (id, entry) in self.standbys.lock().iter() {
            node.push_child(entry.standby.snapshot(format!("standby_s{id}")));
        }
        node
    }
}

impl std::fmt::Debug for ReplicaSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaSet")
            .field("budget", &self.spec.budget)
            .field("attached", &self.standbys.lock().len())
            .finish()
    }
}

/// The standby applier loop: drains `Addr::Replica(id)`, applies each
/// shipped batch through the idempotent WAL replay path and acks the
/// standby's post-apply watermark back to the primary's feed.
fn run_standby(standby: Arc<Standby>, endpoint: Endpoint<ServerMsg>) {
    loop {
        let msg = match endpoint.recv() {
            Ok(msg) => msg,
            Err(_) => break, // endpoint deregistered
        };
        match msg {
            ServerMsg::ShipBatch {
                watermark,
                frames,
                reply,
                ..
            } => {
                // Malformed frames abort the whole batch without advancing
                // the watermark: the ack honestly reports how far the
                // standby actually covers.
                let _ = standby.apply_batch(watermark, &frames);
                reply.send(standby.watermark());
            }
            ServerMsg::Shutdown => break,
            // Stray traffic (e.g. a fault-layer duplicate routed oddly) is
            // dropped; the standby only speaks the shipping protocol.
            _ => {}
        }
    }
}
