//! Serializability history checker for the simulated cluster.
//!
//! Under fault injection the cluster must still produce outcomes equivalent
//! to *some* serial execution. ALOHA-DB's serial order is fixed by design —
//! transaction timestamps are the serialization order (§III-B) — so the
//! check is direct: record every coordinated transaction into a cluster-wide
//! [`History`], replay the log **sequentially in timestamp order** against a
//! single-threaded model store, and diff the model's final state against the
//! cluster's. Any divergence means a committed functor observed or produced
//! a value it could not have seen in the serial order — lost writes,
//! resurrected aborts, duplicated applications, and reordered
//! non-commutative writes all surface this way.
//!
//! The replay evaluates functors with the same building blocks the cluster
//! uses ([`builtin::apply_numeric`] and the shared [`HandlerRegistry`]), so
//! expected values come from the workload's own logic, not a parallel
//! re-implementation.

use std::collections::HashMap;

use aloha_common::{HistoryLog, Key, Result, Timestamp, Value};
use aloha_functor::{
    builtin, ComputeInput, Functor, HandlerRegistry, Outcome, Reads, VersionedRead,
};

/// One coordinated transaction, as recorded by its coordinating front-end
/// when the write-only phase resolves.
#[derive(Debug, Clone)]
pub struct CommitRecord {
    /// The transaction's timestamp — its position in the serial order.
    pub ts: Timestamp,
    /// The installed (key, functor) pairs.
    pub writes: Vec<(Key, Functor)>,
    /// Versions the front-end transform observed from its settled snapshot
    /// (diagnostic: transform reads are *not* part of the serializable read
    /// set, which the functor read-sets define).
    pub reads: Vec<(Key, Timestamp)>,
    /// Whether the write-only phase aborted the transaction (failed check or
    /// unreachable participant); aborted transactions must leave no effects.
    pub aborted_at_install: bool,
}

/// Cluster-wide commit history: one shared log appended by every coordinator.
pub type History = HistoryLog<CommitRecord>;

/// One key whose final cluster state differs from the serial replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The diverging key.
    pub key: Key,
    /// Value the serial replay expects (`None` = absent/deleted).
    pub expected: Option<Value>,
    /// Value the cluster actually holds (`None` = absent/deleted).
    pub actual: Option<Value>,
}

/// Replays a commit history sequentially in timestamp order and returns the
/// model's final state.
///
/// Each transaction's functors are all evaluated against the state *before*
/// the transaction (functor read-sets see versions strictly below the
/// functor's own version), and — matching the cluster's all-or-nothing
/// abort rule (§IV-C) — if **any** functor of the transaction aborts, the
/// whole transaction contributes nothing. Deferred writes of determinate
/// functors (§IV-E) land at the same version, also atomically.
///
/// # Errors
///
/// Fails on histories referencing unregistered handlers or applying numeric
/// functors over non-numeric values — both indicate a corrupted record, not
/// a serializability violation.
pub fn replay_history(
    records: &[CommitRecord],
    handlers: &HandlerRegistry,
) -> Result<HashMap<Key, Value>> {
    let mut sorted: Vec<&CommitRecord> = records.iter().collect();
    sorted.sort_by_key(|r| r.ts);
    let mut model: HashMap<Key, (Timestamp, Value)> = HashMap::new();
    for record in sorted {
        if record.aborted_at_install {
            continue;
        }
        if let Some(effects) = eval_txn(record, &model, handlers)? {
            for (key, value) in effects {
                match value {
                    Some(v) => {
                        model.insert(key, (record.ts, v));
                    }
                    None => {
                        model.remove(&key);
                    }
                }
            }
        }
    }
    Ok(model.into_iter().map(|(k, (_, v))| (k, v)).collect())
}

/// Evaluates every functor of one transaction against the pre-transaction
/// model. Returns `None` when the transaction aborts (any functor decides
/// abort), otherwise the atomic effect set: `Some(value)` sets the key,
/// `None` deletes it.
/// The atomic effect set of one transaction: `Some(value)` sets the key,
/// `None` deletes it.
type TxnEffects = Vec<(Key, Option<Value>)>;

fn eval_txn(
    record: &CommitRecord,
    model: &HashMap<Key, (Timestamp, Value)>,
    handlers: &HandlerRegistry,
) -> Result<Option<TxnEffects>> {
    let mut effects = Vec::with_capacity(record.writes.len());
    for (key, functor) in &record.writes {
        match functor {
            Functor::Value(v) => effects.push((key.clone(), Some(v.clone()))),
            Functor::Deleted | Functor::Aborted => effects.push((key.clone(), None)),
            Functor::Add(_) | Functor::Subtr(_) | Functor::Max(_) | Functor::Min(_) => {
                let prev = model.get(key).map(|(_, v)| v);
                match builtin::apply_numeric(functor, prev) {
                    Ok(v) => effects.push((key.clone(), Some(v))),
                    // The cluster aborts the transaction when a functor's
                    // computation errors; mirror that.
                    Err(_) => return Ok(None),
                }
            }
            Functor::User(user) => {
                let handler = handlers.get(user.handler)?;
                let mut reads = Reads::new();
                for rk in &user.read_set {
                    let read = match model.get(rk) {
                        Some((ver, val)) => VersionedRead::found(*ver, val.clone()),
                        None => VersionedRead::missing(),
                    };
                    reads.insert(rk.clone(), read);
                }
                let input = ComputeInput {
                    key,
                    version: record.ts,
                    reads: &reads,
                    args: &user.args,
                };
                let output = handler.compute(&input);
                match output.outcome {
                    Outcome::Abort => return Ok(None),
                    Outcome::Commit(v) => effects.push((key.clone(), Some(v))),
                    Outcome::Delete => effects.push((key.clone(), None)),
                }
                for (dk, df) in output.deferred_writes {
                    let dv = match df {
                        Functor::Value(v) => Some(v),
                        Functor::Deleted => None,
                        other => {
                            let prev = model.get(&dk).map(|(_, v)| v);
                            Some(builtin::apply_numeric(&other, prev)?)
                        }
                    };
                    effects.push((dk, dv));
                }
            }
        }
    }
    Ok(Some(effects))
}

/// Diffs the serial replay's final state against the cluster's, returning
/// every key whose value differs. `actual` maps keys to the cluster's final
/// committed value (`None` = the key is absent or deleted); only keys
/// present in either map are compared.
pub fn diff_states(
    expected: &HashMap<Key, Value>,
    actual: &HashMap<Key, Option<Value>>,
) -> Vec<Divergence> {
    let mut divergences = Vec::new();
    let mut keys: Vec<&Key> = expected.keys().chain(actual.keys()).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        let want = expected.get(key);
        let got = actual.get(key).and_then(Option::as_ref);
        if want != got {
            divergences.push(Divergence {
                key: key.clone(),
                expected: want.cloned(),
                actual: got.cloned(),
            });
        }
    }
    divergences
}

#[cfg(test)]
mod tests {
    use super::*;
    use aloha_common::ServerId;

    fn ts(micros: u64) -> Timestamp {
        Timestamp::from_parts(micros, ServerId(0), 0)
    }

    fn committed(at: u64, writes: Vec<(Key, Functor)>) -> CommitRecord {
        CommitRecord {
            ts: ts(at),
            writes,
            reads: Vec::new(),
            aborted_at_install: false,
        }
    }

    fn actual_of(pairs: &[(&Key, i64)]) -> HashMap<Key, Option<Value>> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).clone(), Some(Value::from_i64(*v))))
            .collect()
    }

    /// A correct interleaving of blind and numeric writes replays clean.
    #[test]
    fn serializable_history_has_no_divergence() {
        let handlers = HandlerRegistry::new();
        let k = Key::from("acct");
        let records = vec![
            committed(10, vec![(k.clone(), Functor::value_i64(100))]),
            committed(20, vec![(k.clone(), Functor::add(5))]),
            committed(30, vec![(k.clone(), Functor::subtr(2))]),
        ];
        let expected = replay_history(&records, &handlers).unwrap();
        assert_eq!(expected.get(&k), Some(&Value::from_i64(103)));
        let divergences = diff_states(&expected, &actual_of(&[(&k, 103)]));
        assert!(
            divergences.is_empty(),
            "clean history flagged: {divergences:?}"
        );
    }

    /// A lost intermediate version (an ADD that the cluster dropped) shows
    /// up as exactly one diverging key.
    #[test]
    fn lost_intermediate_version_is_flagged() {
        let handlers = HandlerRegistry::new();
        let k = Key::from("acct");
        let records = vec![
            committed(10, vec![(k.clone(), Functor::value_i64(100))]),
            committed(20, vec![(k.clone(), Functor::add(5))]),
            committed(30, vec![(k.clone(), Functor::add(7))]),
        ];
        let expected = replay_history(&records, &handlers).unwrap();
        // The cluster lost the ts-20 increment: final state is 107, not 112.
        let divergences = diff_states(&expected, &actual_of(&[(&k, 107)]));
        assert_eq!(divergences.len(), 1);
        assert_eq!(divergences[0].key, k);
        assert_eq!(divergences[0].expected, Some(Value::from_i64(112)));
        assert_eq!(divergences[0].actual, Some(Value::from_i64(107)));
    }

    /// Two non-commutative blind writes applied in the wrong order leave the
    /// earlier value on top — flagged, while an untouched key stays clean.
    #[test]
    fn reordered_non_commutative_writes_are_flagged() {
        let handlers = HandlerRegistry::new();
        let k = Key::from("config");
        let quiet = Key::from("quiet");
        let records = vec![
            committed(10, vec![(quiet.clone(), Functor::value_i64(1))]),
            committed(20, vec![(k.clone(), Functor::value_i64(20))]),
            committed(30, vec![(k.clone(), Functor::value_i64(30))]),
        ];
        let expected = replay_history(&records, &handlers).unwrap();
        // The cluster applied ts-30 before ts-20: 20 won.
        let divergences = diff_states(&expected, &actual_of(&[(&k, 20), (&quiet, 1)]));
        assert_eq!(divergences.len(), 1);
        assert_eq!(divergences[0].key, k);
        assert_eq!(divergences[0].expected, Some(Value::from_i64(30)));
        assert_eq!(divergences[0].actual, Some(Value::from_i64(20)));
    }

    /// Install-aborted transactions contribute nothing; a cluster where the
    /// abort leaked its write diverges.
    #[test]
    fn aborted_transactions_leave_no_effects() {
        let handlers = HandlerRegistry::new();
        let k = Key::from("acct");
        let records = vec![
            committed(10, vec![(k.clone(), Functor::value_i64(1))]),
            CommitRecord {
                ts: ts(20),
                writes: vec![(k.clone(), Functor::value_i64(999))],
                reads: Vec::new(),
                aborted_at_install: true,
            },
        ];
        let expected = replay_history(&records, &handlers).unwrap();
        assert_eq!(expected.get(&k), Some(&Value::from_i64(1)));
        let divergences = diff_states(&expected, &actual_of(&[(&k, 999)]));
        assert_eq!(divergences.len(), 1);
    }

    /// Replay is order-insensitive on input: records arriving in any append
    /// order replay identically because the checker sorts by timestamp.
    #[test]
    fn replay_sorts_by_timestamp() {
        let handlers = HandlerRegistry::new();
        let k = Key::from("k");
        let shuffled = vec![
            committed(30, vec![(k.clone(), Functor::value_i64(30))]),
            committed(10, vec![(k.clone(), Functor::value_i64(10))]),
            committed(20, vec![(k.clone(), Functor::value_i64(20))]),
        ];
        let expected = replay_history(&shuffled, &handlers).unwrap();
        assert_eq!(expected.get(&k), Some(&Value::from_i64(30)));
    }

    /// Deletes remove the key from the model; a missing key and an absent
    /// actual entry agree.
    #[test]
    fn deletes_remove_keys() {
        let handlers = HandlerRegistry::new();
        let k = Key::from("gone");
        let records = vec![
            committed(10, vec![(k.clone(), Functor::value_i64(5))]),
            committed(20, vec![(k.clone(), Functor::Deleted)]),
        ];
        let expected = replay_history(&records, &handlers).unwrap();
        assert!(!expected.contains_key(&k));
        assert!(diff_states(&expected, &HashMap::new()).is_empty());
    }
}
