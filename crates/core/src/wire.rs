//! Binary wire codec for [`ServerMsg`], used by process-boundary transports.
//!
//! The in-process [`aloha_net::Bus`] moves `ServerMsg` values by ownership and
//! never serializes them. A real transport ([`aloha_net::TcpTransport`]) needs
//! a byte representation, and — because `ServerMsg` embeds live
//! [`ReplySlot`]s — a reply-correlation protocol. [`ServerMsgCodec`]
//! implements both sides of [`WireCodec`]:
//!
//! * `encode` walks the message, registers every embedded [`ReplySlot`] with
//!   the sending node's [`PendingReplies`] table and writes the issued
//!   correlation id in the slot's place;
//! * `decode` rebuilds each slot as a [`ReplySlot::from_fn`] closure that
//!   encodes the reply value and routes `(corr, payload)` back through the
//!   transport's [`RemoteReplier`].
//!
//! Framing, checksums and retransmission live in the transport; this module
//! is a pure value codec. Layout is big-endian throughout (the repo's
//! [`Writer`]/[`Reader`] convention, shared with the WAL record format).

use std::sync::Arc;
use std::time::Duration;

use aloha_common::codec::{Reader, Writer};
use aloha_common::{
    Bytes, EpochId, Error, Key, PartitionId, Result, ServerId, Timestamp, TxnId, Value,
};
use aloha_epoch::{Authorization, Grant, RevokedAck};
use aloha_functor::VersionedRead;
use aloha_net::{PendingReplies, RemoteReplier, ReplySlot, WireCodec};
use aloha_storage::wal::{decode_functor, encode_functor};

use crate::msg::{InstallOutcome, ServerMsg, VersionState};
use crate::program::{Check, Write};

/// [`WireCodec`] implementation for the ALOHA engine's [`ServerMsg`].
///
/// Stateless; the correlation state lives in the transport's
/// [`PendingReplies`] table passed into each call.
#[derive(Debug, Default, Clone, Copy)]
pub struct ServerMsgCodec;

// Variant tags. Stable on the wire: append new variants, never renumber.
const TAG_GRANT: u8 = 0;
const TAG_REVOKE: u8 = 1;
const TAG_REVOKED_ACK: u8 = 2;
const TAG_INSTALL: u8 = 3;
const TAG_ABORT_VERSION: u8 = 4;
const TAG_REMOTE_GET: u8 = 5;
const TAG_REMOTE_GET_BATCH: u8 = 6;
const TAG_INSTALL_DEFERRED: u8 = 7;
const TAG_RESOLVE_VERSION: u8 = 8;
const TAG_PUSH_VALUE: u8 = 9;
const TAG_REPLICATE: u8 = 10;
const TAG_BATCH: u8 = 11;
const TAG_SHUTDOWN: u8 = 12;
const TAG_SNAPSHOT_READ: u8 = 13;
const TAG_SNAPSHOT_READ_BATCH: u8 = 14;
const TAG_SHIP_BATCH: u8 = 15;

impl WireCodec<ServerMsg> for ServerMsgCodec {
    fn encode(&self, msg: &ServerMsg, pending: &PendingReplies, out: &mut Vec<u8>) -> Result<()> {
        let mut w = Writer::with_capacity(msg.approx_bytes() + 16);
        encode_msg(msg, pending, &mut w)?;
        out.extend_from_slice(&w.into_bytes());
        Ok(())
    }

    fn decode(&self, bytes: &Bytes, replier: &RemoteReplier) -> Result<ServerMsg> {
        let mut r = Reader::shared(bytes);
        let msg = decode_msg(&mut r, replier)?;
        if !r.is_empty() {
            return Err(Error::Codec(format!(
                "trailing bytes after ServerMsg: {} left",
                r.remaining()
            )));
        }
        Ok(msg)
    }
}

fn encode_msg(msg: &ServerMsg, pending: &PendingReplies, w: &mut Writer) -> Result<()> {
    match msg {
        ServerMsg::Grant(g) => {
            w.put_u8(TAG_GRANT)
                .put_u64(g.auth.epoch().0)
                .put_u64(g.auth.start_micros())
                .put_u64(g.auth.end_micros())
                .put_u64(g.settled.raw())
                .put_u64(g.epoch_duration_micros)
                .put_u64(g.frontier.raw());
        }
        ServerMsg::Revoke(epoch) => {
            w.put_u8(TAG_REVOKE).put_u64(epoch.0);
        }
        ServerMsg::RevokedAck(ack) => {
            w.put_u8(TAG_REVOKED_ACK)
                .put_u16(ack.server.0)
                .put_u64(ack.epoch.0)
                .put_u64(ack.frontier.raw());
        }
        ServerMsg::Install {
            version,
            writes,
            reply,
        } => {
            w.put_u8(TAG_INSTALL).put_u64(version.raw());
            put_len(w, writes.len())?;
            for write in writes.iter() {
                encode_write(write, w);
            }
            w.put_u64(register_reply(pending, reply, decode_install_outcome));
        }
        ServerMsg::AbortVersion { keys, reply } => {
            w.put_u8(TAG_ABORT_VERSION);
            put_len(w, keys.len())?;
            for (key, version) in keys.iter() {
                w.put_bytes(key.as_bytes()).put_u64(version.raw());
            }
            w.put_u64(register_reply(pending, reply, decode_unit));
        }
        ServerMsg::RemoteGet { key, bound, reply } => {
            w.put_u8(TAG_REMOTE_GET)
                .put_bytes(key.as_bytes())
                .put_u64(bound.raw())
                .put_u64(register_reply(pending, reply, |r| {
                    decode_result(r, decode_versioned_read)
                }));
        }
        ServerMsg::RemoteGetBatch { keys, bound, reply } => {
            w.put_u8(TAG_REMOTE_GET_BATCH);
            put_len(w, keys.len())?;
            for key in keys.iter() {
                w.put_bytes(key.as_bytes());
            }
            w.put_u64(bound.raw())
                .put_u64(register_reply(pending, reply, |r| {
                    decode_result(r, decode_read_vec)
                }));
        }
        ServerMsg::SnapshotRead { key, bound, reply } => {
            w.put_u8(TAG_SNAPSHOT_READ)
                .put_bytes(key.as_bytes())
                .put_u64(bound.raw())
                .put_u64(register_reply(pending, reply, |r| {
                    decode_result(r, decode_versioned_read)
                }));
        }
        ServerMsg::SnapshotReadBatch { keys, bound, reply } => {
            w.put_u8(TAG_SNAPSHOT_READ_BATCH);
            put_len(w, keys.len())?;
            for key in keys.iter() {
                w.put_bytes(key.as_bytes());
            }
            w.put_u64(bound.raw())
                .put_u64(register_reply(pending, reply, |r| {
                    decode_result(r, decode_read_vec)
                }));
        }
        ServerMsg::InstallDeferred {
            key,
            version,
            functor,
            reply,
        } => {
            w.put_u8(TAG_INSTALL_DEFERRED)
                .put_bytes(key.as_bytes())
                .put_u64(version.raw());
            encode_functor(w, functor);
            w.put_u64(register_reply(pending, reply, decode_unit));
        }
        ServerMsg::ResolveVersion {
            key,
            version,
            reply,
        } => {
            w.put_u8(TAG_RESOLVE_VERSION)
                .put_bytes(key.as_bytes())
                .put_u64(version.raw())
                .put_u64(register_reply(pending, reply, |r| {
                    decode_result(r, decode_version_state)
                }));
        }
        ServerMsg::PushValue {
            version,
            source,
            read,
        } => {
            w.put_u8(TAG_PUSH_VALUE)
                .put_u64(version.raw())
                .put_bytes(source.as_bytes());
            encode_versioned_read(read, w);
        }
        ServerMsg::Replicate {
            from,
            records,
            reply,
        } => {
            w.put_u8(TAG_REPLICATE).put_u16(from.0);
            put_len(w, records.len())?;
            for (key, version, functor) in records {
                w.put_bytes(key.as_bytes()).put_u64(version.raw());
                encode_functor(w, functor);
            }
            w.put_u64(register_reply(pending, reply, decode_unit));
        }
        ServerMsg::ShipBatch {
            from,
            watermark,
            frames,
            reply,
        } => {
            w.put_u8(TAG_SHIP_BATCH)
                .put_u16(from.0)
                .put_u64(watermark.raw());
            put_len(w, frames.len())?;
            for (version, frame) in frames.iter() {
                w.put_u64(*version).put_bytes(frame);
            }
            w.put_u64(register_reply(pending, reply, decode_timestamp));
        }
        ServerMsg::Batch(msgs) => {
            w.put_u8(TAG_BATCH);
            put_len(w, msgs.len())?;
            for inner in msgs {
                let mut iw = Writer::with_capacity(inner.approx_bytes() + 16);
                encode_msg(inner, pending, &mut iw)?;
                w.put_bytes(&iw.into_bytes());
            }
        }
        ServerMsg::Shutdown => {
            w.put_u8(TAG_SHUTDOWN);
        }
    }
    Ok(())
}

fn decode_msg(r: &mut Reader<'_>, replier: &RemoteReplier) -> Result<ServerMsg> {
    let tag = r.get_u8()?;
    Ok(match tag {
        TAG_GRANT => {
            let epoch = EpochId(r.get_u64()?);
            let start = r.get_u64()?;
            let end = r.get_u64()?;
            let settled = Timestamp::from_raw(r.get_u64()?);
            let epoch_duration_micros = r.get_u64()?;
            let frontier = Timestamp::from_raw(r.get_u64()?);
            if start > end {
                return Err(Error::Codec(format!(
                    "Grant with empty authorization window [{start}, {end}]"
                )));
            }
            ServerMsg::Grant(Grant {
                auth: Authorization::new(epoch, start, end),
                settled,
                epoch_duration_micros,
                frontier,
            })
        }
        TAG_REVOKE => ServerMsg::Revoke(EpochId(r.get_u64()?)),
        TAG_REVOKED_ACK => ServerMsg::RevokedAck(RevokedAck {
            server: ServerId(r.get_u16()?),
            epoch: EpochId(r.get_u64()?),
            frontier: Timestamp::from_raw(r.get_u64()?),
        }),
        TAG_INSTALL => {
            let version = Timestamp::from_raw(r.get_u64()?);
            let count = r.get_u32()?;
            let mut writes = Vec::with_capacity(count as usize);
            for _ in 0..count {
                writes.push(decode_write(r)?);
            }
            let corr = r.get_u64()?;
            ServerMsg::Install {
                version,
                writes: Arc::new(writes),
                reply: remote_slot(replier, corr, encode_install_outcome),
            }
        }
        TAG_ABORT_VERSION => {
            let count = r.get_u32()?;
            let mut keys = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let key = Key::from(r.get_bytes_shared()?);
                let version = Timestamp::from_raw(r.get_u64()?);
                keys.push((key, version));
            }
            let corr = r.get_u64()?;
            ServerMsg::AbortVersion {
                keys: Arc::new(keys),
                reply: remote_slot(replier, corr, encode_unit),
            }
        }
        TAG_REMOTE_GET => {
            let key = Key::from(r.get_bytes_shared()?);
            let bound = Timestamp::from_raw(r.get_u64()?);
            let corr = r.get_u64()?;
            ServerMsg::RemoteGet {
                key,
                bound,
                reply: remote_slot(replier, corr, |v, w| {
                    encode_result(v, w, encode_versioned_read);
                }),
            }
        }
        TAG_REMOTE_GET_BATCH => {
            let count = r.get_u32()?;
            let mut keys = Vec::with_capacity(count as usize);
            for _ in 0..count {
                keys.push(Key::from(r.get_bytes_shared()?));
            }
            let bound = Timestamp::from_raw(r.get_u64()?);
            let corr = r.get_u64()?;
            ServerMsg::RemoteGetBatch {
                keys: Arc::new(keys),
                bound,
                reply: remote_slot(replier, corr, |v, w| {
                    encode_result(v, w, encode_read_vec);
                }),
            }
        }
        TAG_SNAPSHOT_READ => {
            let key = Key::from(r.get_bytes_shared()?);
            let bound = Timestamp::from_raw(r.get_u64()?);
            let corr = r.get_u64()?;
            ServerMsg::SnapshotRead {
                key,
                bound,
                reply: remote_slot(replier, corr, |v, w| {
                    encode_result(v, w, encode_versioned_read);
                }),
            }
        }
        TAG_SNAPSHOT_READ_BATCH => {
            let count = r.get_u32()?;
            let mut keys = Vec::with_capacity(count as usize);
            for _ in 0..count {
                keys.push(Key::from(r.get_bytes_shared()?));
            }
            let bound = Timestamp::from_raw(r.get_u64()?);
            let corr = r.get_u64()?;
            ServerMsg::SnapshotReadBatch {
                keys: Arc::new(keys),
                bound,
                reply: remote_slot(replier, corr, |v, w| {
                    encode_result(v, w, encode_read_vec);
                }),
            }
        }
        TAG_INSTALL_DEFERRED => {
            let key = Key::from(r.get_bytes_shared()?);
            let version = Timestamp::from_raw(r.get_u64()?);
            let functor = decode_functor(r)?;
            let corr = r.get_u64()?;
            ServerMsg::InstallDeferred {
                key,
                version,
                functor,
                reply: remote_slot(replier, corr, encode_unit),
            }
        }
        TAG_RESOLVE_VERSION => {
            let key = Key::from(r.get_bytes_shared()?);
            let version = Timestamp::from_raw(r.get_u64()?);
            let corr = r.get_u64()?;
            ServerMsg::ResolveVersion {
                key,
                version,
                reply: remote_slot(replier, corr, |v, w| {
                    encode_result(v, w, encode_version_state);
                }),
            }
        }
        TAG_PUSH_VALUE => {
            let version = Timestamp::from_raw(r.get_u64()?);
            let source = Key::from(r.get_bytes_shared()?);
            let read = decode_versioned_read(r)?;
            ServerMsg::PushValue {
                version,
                source,
                read,
            }
        }
        TAG_REPLICATE => {
            let from = PartitionId(r.get_u16()?);
            let count = r.get_u32()?;
            let mut records = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let key = Key::from(r.get_bytes_shared()?);
                let version = Timestamp::from_raw(r.get_u64()?);
                let functor = decode_functor(r)?;
                records.push((key, version, functor));
            }
            let corr = r.get_u64()?;
            ServerMsg::Replicate {
                from,
                records,
                reply: remote_slot(replier, corr, encode_unit),
            }
        }
        TAG_SHIP_BATCH => {
            let from = PartitionId(r.get_u16()?);
            let watermark = Timestamp::from_raw(r.get_u64()?);
            let count = r.get_u32()?;
            let mut frames = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let version = r.get_u64()?;
                frames.push((version, r.get_bytes()?.to_vec()));
            }
            let corr = r.get_u64()?;
            ServerMsg::ShipBatch {
                from,
                watermark,
                frames: Arc::new(frames),
                reply: remote_slot(replier, corr, encode_timestamp),
            }
        }
        TAG_BATCH => {
            let count = r.get_u32()?;
            let mut msgs = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let bytes = r.get_bytes_shared()?;
                let mut ir = Reader::shared(&bytes);
                let inner = decode_msg(&mut ir, replier)?;
                if !ir.is_empty() {
                    return Err(Error::Codec(format!(
                        "trailing bytes after batched ServerMsg: {} left",
                        ir.remaining()
                    )));
                }
                msgs.push(inner);
            }
            ServerMsg::Batch(msgs)
        }
        TAG_SHUTDOWN => ServerMsg::Shutdown,
        other => return Err(Error::Codec(format!("unknown ServerMsg tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Reply correlation
// ---------------------------------------------------------------------------

/// Registers `slot` under a fresh correlation id: when the matching reply
/// frame arrives, its payload is decoded with `decode` and delivered into the
/// slot. An undecodable reply payload is dropped — the requester's retry
/// machinery treats it like a lost reply.
fn register_reply<T: Send + 'static>(
    pending: &PendingReplies,
    slot: &ReplySlot<T>,
    decode: impl Fn(&mut Reader<'_>) -> Result<T> + Send + 'static,
) -> u64 {
    let slot = slot.clone();
    pending.register(Box::new(move |payload: &[u8]| {
        let mut r = Reader::new(payload);
        if let Ok(value) = decode(&mut r) {
            slot.send(value);
        }
    }))
}

/// Rebuilds a reply slot on the receiving node: sending into it encodes the
/// value with `encode` and routes the payload back through the transport.
fn remote_slot<T: Send + 'static>(
    replier: &RemoteReplier,
    corr: u64,
    encode: impl Fn(&T, &mut Writer) + Send + Sync + 'static,
) -> ReplySlot<T> {
    let replier = replier.clone();
    ReplySlot::from_fn(move |value: T| {
        let mut w = Writer::new();
        encode(&value, &mut w);
        replier.reply(corr, w.into_bytes());
    })
}

// ---------------------------------------------------------------------------
// Component codecs
// ---------------------------------------------------------------------------

fn put_len(w: &mut Writer, len: usize) -> Result<()> {
    let len = u32::try_from(len)
        .map_err(|_| Error::Codec(format!("collection too large for wire: {len} items")))?;
    w.put_u32(len);
    Ok(())
}

fn encode_write(write: &Write, w: &mut Writer) {
    w.put_bytes(write.key.as_bytes());
    encode_functor(w, &write.functor);
    match &write.check {
        None => {
            w.put_u8(0);
        }
        Some(Check::KeyExists(key)) => {
            w.put_u8(1).put_bytes(key.as_bytes());
        }
    }
}

fn decode_write(r: &mut Reader<'_>) -> Result<Write> {
    let key = Key::from(r.get_bytes_shared()?);
    let functor = decode_functor(r)?;
    let check = match r.get_u8()? {
        0 => None,
        1 => Some(Check::KeyExists(Key::from(r.get_bytes_shared()?))),
        other => return Err(Error::Codec(format!("unknown Check tag {other}"))),
    };
    Ok(Write {
        key,
        functor,
        check,
    })
}

fn encode_unit(_: &(), _: &mut Writer) {}

fn encode_timestamp(ts: &Timestamp, w: &mut Writer) {
    w.put_u64(ts.raw());
}

fn decode_timestamp(r: &mut Reader<'_>) -> Result<Timestamp> {
    Ok(Timestamp::from_raw(r.get_u64()?))
}

fn decode_unit(_: &mut Reader<'_>) -> Result<()> {
    Ok(())
}

fn encode_install_outcome(outcome: &InstallOutcome, w: &mut Writer) {
    match outcome {
        InstallOutcome::Ok => {
            w.put_u8(0);
        }
        InstallOutcome::CheckFailed(reason) => {
            w.put_u8(1).put_str(reason);
        }
        InstallOutcome::OutsideEpoch => {
            w.put_u8(2);
        }
    }
}

fn decode_install_outcome(r: &mut Reader<'_>) -> Result<InstallOutcome> {
    Ok(match r.get_u8()? {
        0 => InstallOutcome::Ok,
        1 => InstallOutcome::CheckFailed(r.get_str()?.to_string()),
        2 => InstallOutcome::OutsideEpoch,
        other => return Err(Error::Codec(format!("unknown InstallOutcome tag {other}"))),
    })
}

fn encode_versioned_read(read: &VersionedRead, w: &mut Writer) {
    w.put_u64(read.version.raw());
    match &read.value {
        None => {
            w.put_u8(0);
        }
        Some(value) => {
            w.put_u8(1).put_bytes(value.as_bytes());
        }
    }
}

fn decode_versioned_read(r: &mut Reader<'_>) -> Result<VersionedRead> {
    let version = Timestamp::from_raw(r.get_u64()?);
    let value = match r.get_u8()? {
        0 => None,
        1 => Some(Value::from(r.get_bytes_shared()?)),
        other => {
            return Err(Error::Codec(format!(
                "unknown VersionedRead value flag {other}"
            )))
        }
    };
    Ok(VersionedRead { version, value })
}

fn encode_read_vec(reads: &Vec<VersionedRead>, w: &mut Writer) {
    // Reply payloads echo request-sized collections; a u32 length is already
    // enforced on the request side, so saturating here cannot trigger.
    w.put_u32(u32::try_from(reads.len()).unwrap_or(u32::MAX));
    for read in reads {
        encode_versioned_read(read, w);
    }
}

fn decode_read_vec(r: &mut Reader<'_>) -> Result<Vec<VersionedRead>> {
    let count = r.get_u32()?;
    let mut reads = Vec::with_capacity(count as usize);
    for _ in 0..count {
        reads.push(decode_versioned_read(r)?);
    }
    Ok(reads)
}

fn encode_version_state(state: &VersionState, w: &mut Writer) {
    match state {
        VersionState::Committed(value) => {
            w.put_u8(0).put_bytes(value.as_bytes());
        }
        VersionState::Aborted => {
            w.put_u8(1);
        }
        VersionState::Deleted => {
            w.put_u8(2);
        }
        VersionState::Missing => {
            w.put_u8(3);
        }
    }
}

fn decode_version_state(r: &mut Reader<'_>) -> Result<VersionState> {
    Ok(match r.get_u8()? {
        0 => VersionState::Committed(Value::from(r.get_bytes_shared()?)),
        1 => VersionState::Aborted,
        2 => VersionState::Deleted,
        3 => VersionState::Missing,
        other => return Err(Error::Codec(format!("unknown VersionState tag {other}"))),
    })
}

fn encode_result<T>(value: &Result<T>, w: &mut Writer, encode: impl Fn(&T, &mut Writer)) {
    match value {
        Ok(v) => {
            w.put_u8(0);
            encode(v, w);
        }
        Err(e) => {
            w.put_u8(1);
            encode_error(e, w);
        }
    }
}

fn decode_result<T>(
    r: &mut Reader<'_>,
    decode: impl Fn(&mut Reader<'_>) -> Result<T>,
) -> Result<Result<T>> {
    Ok(match r.get_u8()? {
        0 => Ok(decode(r)?),
        1 => Err(decode_error(r)?),
        other => return Err(Error::Codec(format!("unknown Result tag {other}"))),
    })
}

fn encode_error(e: &Error, w: &mut Writer) {
    match e {
        Error::Codec(s) => {
            w.put_u8(0).put_str(s);
        }
        Error::Disconnected(s) => {
            w.put_u8(1).put_str(s);
        }
        Error::NoSuchPartition(p) => {
            w.put_u8(2).put_u16(p.0);
        }
        Error::UnknownProgram(id) => {
            w.put_u8(3).put_u32(*id);
        }
        Error::UnknownHandler(id) => {
            w.put_u8(4).put_u32(*id);
        }
        Error::VersionOutsideEpoch {
            version,
            valid_from,
            valid_until,
        } => {
            w.put_u8(5)
                .put_u64(version.raw())
                .put_u64(valid_from.raw())
                .put_u64(valid_until.raw());
        }
        Error::KeyNotFound(key) => {
            w.put_u8(6).put_bytes(key.as_bytes());
        }
        Error::Rejected { txn, reason } => {
            w.put_u8(7).put_u64(txn.0).put_str(reason);
        }
        Error::Overloaded { retry_after } => {
            w.put_u8(8)
                .put_u64(u64::try_from(retry_after.as_micros()).unwrap_or(u64::MAX));
        }
        Error::Io(s) => {
            w.put_u8(9).put_str(s);
        }
        Error::ShuttingDown => {
            w.put_u8(10);
        }
        Error::Config(s) => {
            w.put_u8(11).put_str(s);
        }
        Error::Timeout(s) => {
            w.put_u8(12).put_str(s);
        }
        // `Error` is #[non_exhaustive]; future variants degrade to a Codec
        // error carrying their rendered form rather than failing to encode.
        other => {
            w.put_u8(0).put_str(&other.to_string());
        }
    }
}

fn decode_error(r: &mut Reader<'_>) -> Result<Error> {
    Ok(match r.get_u8()? {
        0 => Error::Codec(r.get_str()?.to_string()),
        1 => Error::Disconnected(r.get_str()?.to_string()),
        2 => Error::NoSuchPartition(PartitionId(r.get_u16()?)),
        3 => Error::UnknownProgram(r.get_u32()?),
        4 => Error::UnknownHandler(r.get_u32()?),
        5 => Error::VersionOutsideEpoch {
            version: Timestamp::from_raw(r.get_u64()?),
            valid_from: Timestamp::from_raw(r.get_u64()?),
            valid_until: Timestamp::from_raw(r.get_u64()?),
        },
        6 => Error::KeyNotFound(Key::from(r.get_bytes_shared()?)),
        7 => Error::Rejected {
            txn: TxnId(r.get_u64()?),
            reason: r.get_str()?.to_string(),
        },
        8 => Error::Overloaded {
            retry_after: Duration::from_micros(r.get_u64()?),
        },
        9 => Error::Io(r.get_str()?.to_string()),
        10 => Error::ShuttingDown,
        11 => Error::Config(r.get_str()?.to_string()),
        12 => Error::Timeout(r.get_str()?.to_string()),
        other => return Err(Error::Codec(format!("unknown Error tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aloha_functor::Functor;
    use aloha_net::reply_pair;

    /// A loopback correlation pair: replies sent through the returned
    /// [`RemoteReplier`] complete against the returned [`PendingReplies`],
    /// as if request and reply crossed a wire.
    fn loopback() -> (Arc<PendingReplies>, RemoteReplier) {
        let pending = Arc::new(PendingReplies::new());
        let completions = Arc::clone(&pending);
        let replier = RemoteReplier::new(move |corr, payload| {
            completions.complete(corr, &payload);
        });
        (pending, replier)
    }

    fn round_trip(msg: &ServerMsg) -> ServerMsg {
        let (pending, replier) = loopback();
        let mut bytes = Vec::new();
        ServerMsgCodec
            .encode(msg, &pending, &mut bytes)
            .expect("encode");
        ServerMsgCodec
            .decode(&Bytes::from(bytes), &replier)
            .expect("decode")
    }

    #[test]
    fn grant_revoke_ack_round_trip() {
        let grant = ServerMsg::Grant(Grant {
            auth: Authorization::new(EpochId(7), 1_000, 2_000),
            settled: Timestamp::from_raw(999),
            epoch_duration_micros: 1_000,
            frontier: Timestamp::from_raw(555),
        });
        match round_trip(&grant) {
            ServerMsg::Grant(g) => {
                assert_eq!(g.auth.epoch(), EpochId(7));
                assert_eq!(g.auth.start_micros(), 1_000);
                assert_eq!(g.auth.end_micros(), 2_000);
                assert_eq!(g.settled, Timestamp::from_raw(999));
                assert_eq!(g.epoch_duration_micros, 1_000);
                assert_eq!(g.frontier, Timestamp::from_raw(555));
            }
            other => panic!("wrong variant: {other:?}"),
        }

        match round_trip(&ServerMsg::Revoke(EpochId(9))) {
            ServerMsg::Revoke(e) => assert_eq!(e, EpochId(9)),
            other => panic!("wrong variant: {other:?}"),
        }

        match round_trip(&ServerMsg::RevokedAck(RevokedAck {
            server: ServerId(3),
            epoch: EpochId(9),
            frontier: Timestamp::from_raw(123),
        })) {
            ServerMsg::RevokedAck(a) => {
                assert_eq!(a.server, ServerId(3));
                assert_eq!(a.epoch, EpochId(9));
                assert_eq!(a.frontier, Timestamp::from_raw(123));
            }
            other => panic!("wrong variant: {other:?}"),
        }

        assert!(matches!(
            round_trip(&ServerMsg::Shutdown),
            ServerMsg::Shutdown
        ));
    }

    #[test]
    fn install_round_trip_delivers_reply() {
        let (slot, handle) = reply_pair();
        let msg = ServerMsg::Install {
            version: Timestamp::from_raw(42),
            writes: Arc::new(vec![
                Write {
                    key: Key::from("a"),
                    functor: Functor::Value(Value::from_i64(5)),
                    check: None,
                },
                Write {
                    key: Key::from("b"),
                    functor: Functor::Value(Value::new(b"x".to_vec())),
                    check: Some(Check::KeyExists(Key::from("guard"))),
                },
            ]),
            reply: slot,
        };
        let decoded = round_trip(&msg);
        let ServerMsg::Install {
            version,
            writes,
            reply,
        } = decoded
        else {
            panic!("wrong variant");
        };
        assert_eq!(version, Timestamp::from_raw(42));
        assert_eq!(writes.len(), 2);
        assert_eq!(writes[0].key, Key::from("a"));
        assert!(writes[0].check.is_none());
        assert_eq!(writes[1].check, Some(Check::KeyExists(Key::from("guard"))));

        // The decoded slot routes back through the loopback replier into the
        // original handle.
        reply.send(InstallOutcome::CheckFailed("invalid item".into()));
        assert_eq!(
            handle.wait().expect("reply"),
            InstallOutcome::CheckFailed("invalid item".into())
        );
    }

    #[test]
    fn abort_version_round_trip_delivers_unit_ack() {
        let (slot, handle) = reply_pair();
        let msg = ServerMsg::AbortVersion {
            keys: Arc::new(vec![
                (Key::from("k1"), Timestamp::from_raw(10)),
                (Key::from("k2"), Timestamp::from_raw(10)),
            ]),
            reply: slot,
        };
        let ServerMsg::AbortVersion { keys, reply } = round_trip(&msg) else {
            panic!("wrong variant");
        };
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[1].0, Key::from("k2"));
        reply.send(());
        handle.wait().expect("ack");
    }

    #[test]
    fn remote_get_round_trip_delivers_ok_and_err() {
        // Ok(found) reply.
        let (slot, handle) = reply_pair();
        let msg = ServerMsg::RemoteGet {
            key: Key::from("k"),
            bound: Timestamp::from_raw(100),
            reply: slot,
        };
        let ServerMsg::RemoteGet { key, bound, reply } = round_trip(&msg) else {
            panic!("wrong variant");
        };
        assert_eq!(key, Key::from("k"));
        assert_eq!(bound, Timestamp::from_raw(100));
        reply.send(Ok(VersionedRead::found(
            Timestamp::from_raw(90),
            Value::from_i64(7),
        )));
        let read = handle.wait().expect("reply").expect("ok");
        assert_eq!(read.version, Timestamp::from_raw(90));
        assert_eq!(read.value, Some(Value::from_i64(7)));

        // Err reply survives the error codec.
        let (slot, handle) = reply_pair();
        let msg = ServerMsg::RemoteGet {
            key: Key::from("k"),
            bound: Timestamp::from_raw(100),
            reply: slot,
        };
        let ServerMsg::RemoteGet { reply, .. } = round_trip(&msg) else {
            panic!("wrong variant");
        };
        reply.send(Err(Error::KeyNotFound(Key::from("k"))));
        assert_eq!(
            handle.wait().expect("reply").expect_err("err"),
            Error::KeyNotFound(Key::from("k"))
        );
    }

    #[test]
    fn remote_get_batch_round_trip() {
        let (slot, handle) = reply_pair();
        let msg = ServerMsg::RemoteGetBatch {
            keys: Arc::new(vec![Key::from("a"), Key::from("b")]),
            bound: Timestamp::from_raw(50),
            reply: slot,
        };
        let ServerMsg::RemoteGetBatch { keys, bound, reply } = round_trip(&msg) else {
            panic!("wrong variant");
        };
        assert_eq!(keys.as_slice(), &[Key::from("a"), Key::from("b")]);
        assert_eq!(bound, Timestamp::from_raw(50));
        reply.send(Ok(vec![
            VersionedRead::found(Timestamp::from_raw(1), Value::from_i64(1)),
            VersionedRead::missing(),
        ]));
        let reads = handle.wait().expect("reply").expect("ok");
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].value, Some(Value::from_i64(1)));
        assert_eq!(reads[1].value, None);
    }

    #[test]
    fn snapshot_read_round_trip_delivers_ok_and_err() {
        let (slot, handle) = reply_pair();
        let msg = ServerMsg::SnapshotRead {
            key: Key::from("hot"),
            bound: Timestamp::from_raw(4_000),
            reply: slot,
        };
        let ServerMsg::SnapshotRead { key, bound, reply } = round_trip(&msg) else {
            panic!("wrong variant");
        };
        assert_eq!(key, Key::from("hot"));
        assert_eq!(bound, Timestamp::from_raw(4_000));
        reply.send(Ok(VersionedRead::found(
            Timestamp::from_raw(3_500),
            Value::from_i64(42),
        )));
        let read = handle.wait().expect("reply").expect("ok");
        assert_eq!(read.version, Timestamp::from_raw(3_500));
        assert_eq!(read.value, Some(Value::from_i64(42)));

        let (slot, handle) = reply_pair();
        let msg = ServerMsg::SnapshotRead {
            key: Key::from("hot"),
            bound: Timestamp::from_raw(4_000),
            reply: slot,
        };
        let ServerMsg::SnapshotRead { reply, .. } = round_trip(&msg) else {
            panic!("wrong variant");
        };
        reply.send(Err(Error::NoSuchPartition(PartitionId(9))));
        assert_eq!(
            handle.wait().expect("reply").expect_err("err"),
            Error::NoSuchPartition(PartitionId(9))
        );
    }

    #[test]
    fn snapshot_read_batch_round_trip() {
        let (slot, handle) = reply_pair();
        let msg = ServerMsg::SnapshotReadBatch {
            keys: Arc::new(vec![Key::from("x"), Key::from("y"), Key::from("z")]),
            bound: Timestamp::from_raw(900),
            reply: slot,
        };
        let ServerMsg::SnapshotReadBatch { keys, bound, reply } = round_trip(&msg) else {
            panic!("wrong variant");
        };
        assert_eq!(
            keys.as_slice(),
            &[Key::from("x"), Key::from("y"), Key::from("z")]
        );
        assert_eq!(bound, Timestamp::from_raw(900));
        reply.send(Ok(vec![
            VersionedRead::found(Timestamp::from_raw(880), Value::from_i64(-1)),
            VersionedRead::missing(),
            VersionedRead::found(Timestamp::from_raw(10), Value::new(b"blob".to_vec())),
        ]));
        let reads = handle.wait().expect("reply").expect("ok");
        assert_eq!(reads.len(), 3);
        assert_eq!(reads[0].value, Some(Value::from_i64(-1)));
        assert_eq!(reads[1].value, None);
        assert_eq!(reads[2].value, Some(Value::new(b"blob".to_vec())));
    }

    #[test]
    fn install_deferred_and_resolve_round_trip() {
        let (slot, handle) = reply_pair();
        let msg = ServerMsg::InstallDeferred {
            key: Key::from("dep"),
            version: Timestamp::from_raw(77),
            functor: Functor::Value(Value::from_i64(3)),
            reply: slot,
        };
        let ServerMsg::InstallDeferred {
            key,
            version,
            reply,
            ..
        } = round_trip(&msg)
        else {
            panic!("wrong variant");
        };
        assert_eq!(key, Key::from("dep"));
        assert_eq!(version, Timestamp::from_raw(77));
        reply.send(());
        handle.wait().expect("ack");

        let (slot, handle) = reply_pair();
        let msg = ServerMsg::ResolveVersion {
            key: Key::from("k"),
            version: Timestamp::from_raw(5),
            reply: slot,
        };
        let ServerMsg::ResolveVersion { reply, .. } = round_trip(&msg) else {
            panic!("wrong variant");
        };
        reply.send(Ok(VersionState::Committed(Value::from_i64(11))));
        assert_eq!(
            handle.wait().expect("reply").expect("ok"),
            VersionState::Committed(Value::from_i64(11))
        );
    }

    #[test]
    fn push_value_and_replicate_round_trip() {
        let msg = ServerMsg::PushValue {
            version: Timestamp::from_raw(8),
            source: Key::from("src"),
            read: VersionedRead::found(Timestamp::from_raw(6), Value::from_i64(2)),
        };
        let ServerMsg::PushValue {
            version,
            source,
            read,
        } = round_trip(&msg)
        else {
            panic!("wrong variant");
        };
        assert_eq!(version, Timestamp::from_raw(8));
        assert_eq!(source, Key::from("src"));
        assert_eq!(read.value, Some(Value::from_i64(2)));

        let (slot, handle) = reply_pair();
        let msg = ServerMsg::Replicate {
            from: PartitionId(2),
            records: vec![(
                Key::from("k"),
                Timestamp::from_raw(4),
                Functor::Value(Value::from_i64(9)),
            )],
            reply: slot,
        };
        let ServerMsg::Replicate {
            from,
            records,
            reply,
        } = round_trip(&msg)
        else {
            panic!("wrong variant");
        };
        assert_eq!(from, PartitionId(2));
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].0, Key::from("k"));
        reply.send(());
        handle.wait().expect("ack");
    }

    #[test]
    fn ship_batch_round_trip_delivers_watermark_ack() {
        let (slot, handle) = reply_pair();
        let msg = ServerMsg::ShipBatch {
            from: PartitionId(3),
            watermark: Timestamp::from_raw(77),
            frames: Arc::new(vec![(5, vec![0xa, 0xb]), (77, vec![0xc])]),
            reply: slot,
        };
        let ServerMsg::ShipBatch {
            from,
            watermark,
            frames,
            reply,
        } = round_trip(&msg)
        else {
            panic!("wrong variant");
        };
        assert_eq!(from, PartitionId(3));
        assert_eq!(watermark, Timestamp::from_raw(77));
        assert_eq!(*frames, vec![(5, vec![0xa, 0xb]), (77, vec![0xc])]);

        // The standby's watermark ack routes back through the correlation
        // table into the primary's handle.
        reply.send(Timestamp::from_raw(77));
        assert_eq!(handle.wait().expect("ack"), Timestamp::from_raw(77));
    }

    #[test]
    fn ship_batch_flush_barrier_round_trips_empty() {
        let (slot, _handle) = reply_pair();
        let msg = ServerMsg::ShipBatch {
            from: PartitionId(0),
            watermark: Timestamp::ZERO,
            frames: Arc::new(Vec::new()),
            reply: slot,
        };
        let ServerMsg::ShipBatch { frames, .. } = round_trip(&msg) else {
            panic!("wrong variant");
        };
        assert!(frames.is_empty());
    }

    #[test]
    fn batch_round_trip_preserves_order_and_replies() {
        let (slot, handle) = reply_pair();
        let msg = ServerMsg::Batch(vec![
            ServerMsg::Revoke(EpochId(1)),
            ServerMsg::RemoteGet {
                key: Key::from("k"),
                bound: Timestamp::from_raw(3),
                reply: slot,
            },
            ServerMsg::Shutdown,
        ]);
        let ServerMsg::Batch(msgs) = round_trip(&msg) else {
            panic!("wrong variant");
        };
        assert_eq!(msgs.len(), 3);
        assert!(matches!(msgs[0], ServerMsg::Revoke(EpochId(1))));
        assert!(matches!(msgs[2], ServerMsg::Shutdown));
        let ServerMsg::RemoteGet { reply, .. } = msgs.into_iter().nth(1).unwrap() else {
            panic!("wrong inner variant");
        };
        reply.send(Ok(VersionedRead::missing()));
        assert!(handle.wait().expect("reply").expect("ok").value.is_none());
    }

    #[test]
    fn error_codec_round_trips_every_variant() {
        let errors = vec![
            Error::Codec("bad".into()),
            Error::Disconnected("gone".into()),
            Error::NoSuchPartition(PartitionId(4)),
            Error::UnknownProgram(11),
            Error::UnknownHandler(12),
            Error::VersionOutsideEpoch {
                version: Timestamp::from_raw(5),
                valid_from: Timestamp::from_raw(1),
                valid_until: Timestamp::from_raw(4),
            },
            Error::KeyNotFound(Key::from("missing")),
            Error::Rejected {
                txn: TxnId(99),
                reason: "malformed".into(),
            },
            Error::Overloaded {
                retry_after: Duration::from_micros(1_500),
            },
            Error::Io("disk".into()),
            Error::ShuttingDown,
            Error::Config("bad knob".into()),
            Error::Timeout("slow".into()),
        ];
        for e in errors {
            let mut w = Writer::new();
            encode_error(&e, &mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(decode_error(&mut r).expect("decode"), e, "variant {e:?}");
            assert!(r.is_empty());
        }
    }

    #[test]
    fn rejects_garbage() {
        let (_pending, replier) = loopback();
        // Unknown tag.
        assert!(ServerMsgCodec
            .decode(&Bytes::from_static(&[0xEE]), &replier)
            .is_err());
        // Truncated Grant.
        assert!(ServerMsgCodec
            .decode(&Bytes::from_static(&[TAG_GRANT, 0, 0]), &replier)
            .is_err());
        // Trailing bytes.
        assert!(ServerMsgCodec
            .decode(&Bytes::from_static(&[TAG_SHUTDOWN, 0xFF]), &replier)
            .is_err());
        // Empty input.
        assert!(ServerMsgCodec.decode(&Bytes::new(), &replier).is_err());
    }

    /// The zero-copy contract: keys and values decoded out of a frame are
    /// windows of the frame's allocation, not per-field copies.
    #[test]
    fn decoded_keys_and_values_borrow_the_frame() {
        let (pending, replier) = loopback();
        let msg = ServerMsg::PushValue {
            version: Timestamp::from_raw(8),
            source: Key::from("a-key-long-enough-to-matter"),
            read: VersionedRead::found(
                Timestamp::from_raw(6),
                Value::new(b"payload bytes worth not copying".to_vec()),
            ),
        };
        let mut bytes = Vec::new();
        ServerMsgCodec.encode(&msg, &pending, &mut bytes).unwrap();
        let frame = Bytes::from(bytes);
        let ServerMsg::PushValue { source, read, .. } =
            ServerMsgCodec.decode(&frame, &replier).unwrap()
        else {
            panic!("wrong variant");
        };
        let base = frame.as_ref().as_ptr() as usize;
        let end = base + frame.len();
        let key_ptr = source.as_bytes().as_ptr() as usize;
        assert!(
            key_ptr >= base && key_ptr + source.len() <= end,
            "decoded key must point into the frame"
        );
        let value = read.value.expect("found");
        let val_ptr = value.as_bytes().as_ptr() as usize;
        assert!(
            val_ptr >= base && val_ptr + value.len() <= end,
            "decoded value must point into the frame"
        );
    }

    #[test]
    fn duplicate_reply_is_ignored() {
        let (pending, replier) = loopback();
        let (slot, handle) = reply_pair();
        let msg = ServerMsg::AbortVersion {
            keys: Arc::new(vec![(Key::from("k"), Timestamp::from_raw(1))]),
            reply: slot,
        };
        let mut bytes = Vec::new();
        ServerMsgCodec.encode(&msg, &pending, &mut bytes).unwrap();
        let bytes = Bytes::from(bytes);
        let ServerMsg::AbortVersion { reply, .. } =
            ServerMsgCodec.decode(&bytes, &replier).unwrap()
        else {
            panic!("wrong variant");
        };
        // A fault-layer duplicate decodes to a second slot with the same
        // correlation id; only the first completion lands.
        let ServerMsg::AbortVersion { reply: dup, .. } =
            ServerMsgCodec.decode(&bytes, &replier).unwrap()
        else {
            panic!("wrong variant");
        };
        reply.send(());
        dup.send(());
        handle.wait().expect("first ack");
        assert_eq!(pending.outstanding(), 0);
    }
}
