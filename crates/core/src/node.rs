//! Single-server node runtime for real multi-process deployments.
//!
//! [`Cluster`](crate::Cluster) hosts every FE/BE pair inside one process —
//! the configuration the simulated bus serves. A real deployment of the
//! paper runs each server as its own OS process on its own machine, talking
//! over the network. [`Node`] is that unit: **one** [`Server`] (an FE/BE
//! pair) plus, on node 0, the co-hosted epoch manager, all riding a
//! caller-supplied [`Transport`] — in practice an
//! [`aloha_net::TcpTransport`] wired with [`crate::wire::ServerMsgCodec`].
//!
//! Differences from the in-process cluster, all deployment-driven:
//!
//! * **Clock:** processes cannot share a [`ClockBase`](
//!   aloha_common::clock::ClockBase) (it wraps a process-local `Instant`),
//!   so nodes measure time with [`UnixClock`] against a Unix-epoch origin
//!   the launcher picks once and passes to every process — the paper's
//!   NTP-synchronized-clocks model (§V-A3).
//! * **No fault injection, no batching, no replication:** those layers are
//!   exercised by the in-process suites; a node is the minimal deployable
//!   server. Durable logging is available, since crash-recovery of a real
//!   process is exactly what multi-process tests kill and restart.
//! * **Shutdown is local:** a node stops its own server and (on node 0) the
//!   epoch manager; the launcher orchestrates deployment-wide shutdown
//!   order.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aloha_common::clock::UnixClock;
use aloha_common::stats::StatsSnapshot;
use aloha_common::{Error, Key, ReadMode, Result, ServerId, Timestamp, Value};
use aloha_epoch::{EpochClient, EpochConfig, EpochManager};
use aloha_functor::{Functor, Handler, HandlerId, HandlerRegistry};
use aloha_net::{Addr, Executor, Transport};
use aloha_storage::{DurableLog, DurableLogConfig, Partition, RecoveredLog};

use crate::checker::History;
use crate::cluster::{CompactionConfig, DurableLogSpec, NetEpochTransport};
use crate::msg::ServerMsg;
use crate::program::{ProgramId, ProgramRegistry, TxnProgram};
use crate::server::{Server, TxnHandle, WalSink};

/// Configuration for one node of a multi-process deployment.
///
/// Every node of a deployment must agree on `servers`, `epoch_duration` and
/// `clock_origin_unix_micros`; `id` is the one per-process field.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This process's server id (node 0 co-hosts the epoch manager).
    pub id: ServerId,
    /// Total number of servers in the deployment.
    pub servers: u16,
    /// Unified epoch duration (must match on every node).
    pub epoch_duration: Duration,
    /// Functor processor threads for this backend.
    pub processors: usize,
    /// Enable the §III-C straggler optimization.
    pub allow_noauth: bool,
    /// Per-attempt internal RPC timeout. Over a real network with process
    /// restarts in play, keep this a few times the expected recovery time.
    pub rpc_timeout: Duration,
    /// Record coordinated transactions into a [`History`] for the
    /// serializability checker (merged across nodes by the launcher).
    pub record_history: bool,
    /// The deployment's shared clock origin, microseconds since the Unix
    /// epoch. Chosen once by the launcher (see
    /// [`UnixClock::unix_now_micros`]) and passed to every node.
    pub clock_origin_unix_micros: u64,
    /// Optional crash-durable WAL for this node's partition; uses the same
    /// `dir/server-<i>` layout as the in-process cluster, so a respawned
    /// process over the same directory recovers its partition.
    pub durable_log: Option<DurableLogSpec>,
    /// Optional background watermark-driven chain compaction for this
    /// node's partition (same semantics as
    /// [`ClusterConfig::with_compaction`](crate::ClusterConfig::with_compaction)).
    pub compaction: Option<CompactionConfig>,
    /// How [`Node::read_latest`] serves reads: the snapshot-read fast path
    /// at the cluster compute frontier (the default), or the §III-B
    /// delay-to-next-epoch baseline.
    pub read_mode: ReadMode,
}

impl NodeConfig {
    /// A default node configuration: 25 ms epochs, two processors,
    /// stragglers allowed, 30 s RPC timeout, no durability.
    pub fn new(id: ServerId, servers: u16, clock_origin_unix_micros: u64) -> NodeConfig {
        NodeConfig {
            id,
            servers,
            epoch_duration: Duration::from_millis(25),
            processors: 2,
            allow_noauth: true,
            rpc_timeout: Duration::from_secs(30),
            record_history: false,
            clock_origin_unix_micros,
            durable_log: None,
            compaction: None,
            read_mode: ReadMode::default(),
        }
    }

    /// Overrides the epoch duration (must match on every node).
    pub fn with_epoch_duration(mut self, duration: Duration) -> NodeConfig {
        self.epoch_duration = duration;
        self
    }

    /// Overrides the processor pool size.
    pub fn with_processors(mut self, processors: usize) -> NodeConfig {
        self.processors = processors;
        self
    }

    /// Overrides the per-attempt internal RPC timeout.
    pub fn with_rpc_timeout(mut self, timeout: Duration) -> NodeConfig {
        self.rpc_timeout = timeout;
        self
    }

    /// Enables commit-history recording for the serializability checker.
    pub fn with_history(mut self) -> NodeConfig {
        self.record_history = true;
        self
    }

    /// Enables crash-durable on-disk write-ahead logging.
    pub fn with_durable_log(mut self, spec: DurableLogSpec) -> NodeConfig {
        self.durable_log = Some(spec);
        self
    }

    /// Enables the background watermark-driven compaction sweeper, keeping
    /// the newest `keep_versions` committed versions per chain.
    pub fn with_compaction(mut self, interval: Duration, keep_versions: usize) -> NodeConfig {
        self.compaction = Some(CompactionConfig {
            interval,
            keep_versions,
        });
        self
    }

    /// Overrides how latest-version reads are served (see [`ReadMode`]).
    pub fn with_read_mode(mut self, mode: ReadMode) -> NodeConfig {
        self.read_mode = mode;
        self
    }
}

/// Builds a [`Node`]: registers handlers and programs, then starts the
/// server over a transport.
pub struct NodeBuilder {
    config: NodeConfig,
    handlers: HandlerRegistry,
    programs: ProgramRegistry,
}

impl std::fmt::Debug for NodeBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeBuilder")
            .field("config", &self.config)
            .finish()
    }
}

impl NodeBuilder {
    /// Registers a functor handler on this backend. Every node of a
    /// deployment must register the same handlers.
    pub fn register_handler(
        &mut self,
        id: HandlerId,
        handler: impl Handler + 'static,
    ) -> &mut Self {
        self.handlers.register(id, handler);
        self
    }

    /// Registers a transaction program on this front-end.
    pub fn register_program(
        &mut self,
        id: ProgramId,
        program: impl TxnProgram + 'static,
    ) -> &mut Self {
        self.programs.register(id, program);
        self
    }

    /// Starts the node over `net`: registers this server's endpoint, spawns
    /// its dispatcher and processors, and — on node 0 — the epoch manager.
    /// With a durable log over a non-empty directory, the partition is first
    /// recovered from checkpoint + WAL suffix.
    ///
    /// The node takes ownership of the transport's lifecycle:
    /// [`Node::shutdown`] shuts it down.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for invalid configurations, [`Error::Io`]
    /// when the durable log cannot be opened or is damaged beyond a torn
    /// tail.
    pub fn start(self, net: Arc<dyn Transport<ServerMsg>>) -> Result<Node> {
        let config = self.config;
        if config.servers == 0 {
            return Err(Error::Config("deployment needs at least one server".into()));
        }
        if config.id.0 >= config.servers {
            return Err(Error::Config(format!(
                "node id {} out of range for {} servers",
                config.id.0, config.servers
            )));
        }
        if config.processors == 0 {
            return Err(Error::Config("need at least one processor".into()));
        }

        let clock = Arc::new(UnixClock::new(config.clock_origin_unix_micros));
        let partition = Arc::new(Partition::new(
            aloha_common::PartitionId(config.id.0),
            config.servers,
            Arc::new(self.handlers),
        ));
        let (wal, recovered) = open_wal(&config)?;
        if let Some(recovered) = &recovered {
            recover(&partition, recovered)?;
        }
        let epoch = Arc::new(EpochClient::new(
            config.id,
            clock.clone(),
            config.allow_noauth,
        ));
        let exec = Executor::new(
            format!("exec-n{}", config.id.0),
            aloha_net::ExecConfig::default(),
        );
        let history = config.record_history.then(|| Arc::new(History::new()));
        let (server, queue_rx) = Server::new(
            config.id,
            config.servers,
            partition,
            epoch,
            Arc::clone(&net),
            None,
            exec,
            Arc::new(self.programs),
            wal,
            false,
            config.rpc_timeout,
            history.clone(),
        );
        let endpoint = net.register(Addr::Server(config.id));
        let threads =
            crate::cluster::spawn_server_threads(&server, endpoint, queue_rx, config.processors);

        let aux_stop = Arc::new(AtomicBool::new(false));
        let mut aux_threads = Vec::new();
        if let Some(comp) = config.compaction {
            let sweep_server = Arc::clone(&server);
            let stop = Arc::clone(&aux_stop);
            aux_threads.push(
                std::thread::Builder::new()
                    .name("compaction-sweeper".into())
                    .spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            std::thread::sleep(comp.interval);
                            if sweep_server.is_shutdown() {
                                continue;
                            }
                            // The cluster-wide compute frontier (distributed
                            // through the epoch grants) caps folding: every
                            // functor below it is computed everywhere, so no
                            // read — local or remote — still floors beneath
                            // what the fold keeps. The visible bound would be
                            // unsound: a settled-but-uncomputed functor reads
                            // at its own (lower) version. Snapshot reads
                            // being served right now pin the horizon further.
                            let mut horizon = sweep_server.epoch().frontier();
                            if let Some(floor) = sweep_server.min_inflight_read() {
                                horizon = horizon.min(floor);
                            }
                            sweep_server
                                .partition()
                                .store()
                                .compact(horizon, comp.keep_versions);
                        }
                    })
                    .expect("spawn compaction sweeper"),
            );
        }

        // Node 0 co-hosts the epoch manager: the EM's grants and revokes ride
        // the same transport as everything else, so remote FEs receive them
        // exactly as the in-process cluster's do.
        let em = (config.id.0 == 0).then(|| {
            let em_endpoint = net.register(Addr::EpochManager);
            let em_config = EpochConfig {
                epoch_duration: config.epoch_duration,
                servers: (0..config.servers).map(ServerId).collect(),
                poll_interval: Duration::from_micros(200),
                revoke_resend_interval: (config.epoch_duration / 4).max(Duration::from_millis(2)),
            };
            EpochManager::spawn(
                em_config,
                clock,
                NetEpochTransport {
                    net: Arc::clone(&net),
                    endpoint: em_endpoint,
                },
            )
        });

        Ok(Node {
            server,
            em,
            net,
            threads,
            aux_stop,
            aux_threads,
            history,
            total: config.servers,
            read_mode: config.read_mode,
            session: AtomicU64::new(0),
        })
    }
}

/// One running server of a multi-process deployment (see the module docs).
pub struct Node {
    server: Arc<Server>,
    em: Option<EpochManager>,
    net: Arc<dyn Transport<ServerMsg>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    aux_stop: Arc<AtomicBool>,
    aux_threads: Vec<std::thread::JoinHandle<()>>,
    history: Option<Arc<History>>,
    total: u16,
    read_mode: ReadMode,
    /// Highest timestamp this node's clients have observed (read bounds and
    /// this node's own commit timestamps, raw). Snapshot reads floor here,
    /// giving monotone reads and read-your-writes per node handle. Unlike
    /// [`Database`](crate::Database)'s split session atomics, one floor
    /// suffices: a node gates no writes on it, only reads.
    session: AtomicU64,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.server.id())
            .field("servers", &self.total)
            .finish()
    }
}

impl Node {
    /// Starts building a node with the given configuration.
    pub fn builder(config: NodeConfig) -> NodeBuilder {
        NodeBuilder {
            config,
            handlers: HandlerRegistry::new(),
            programs: ProgramRegistry::new(),
        }
    }

    /// This node's server (its FE for coordination, its BE for storage).
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Whether this node's partition owns `key`.
    pub fn owns(&self, key: &Key) -> bool {
        key.partition(self.total).0 == self.server.id().0
    }

    /// Loads an initial row into this node's partition if it owns the key;
    /// returns whether it did. Workload loaders call this with every row on
    /// every node — each row lands exactly once, on its owner.
    pub fn load(&self, key: Key, value: Value) -> bool {
        self.load_functor(key, Functor::Value(value))
    }

    /// Loads an initial functor into this node's partition if it owns the key.
    pub fn load_functor(&self, key: Key, functor: Functor) -> bool {
        if !self.owns(&key) {
            return false;
        }
        self.server.partition().load(&key, functor);
        true
    }

    /// Executes a one-shot transaction with this node's FE as coordinator;
    /// returns after the write-only phase.
    ///
    /// # Errors
    ///
    /// Fails on shutdown, unknown programs, transform rejections and
    /// transport errors.
    pub fn execute(&self, program: ProgramId, args: impl Into<Vec<u8>>) -> Result<TxnHandle> {
        let handle = self.server.coordinate(program, &args.into())?;
        self.session
            .fetch_max(handle.timestamp().raw(), Ordering::Relaxed);
        Ok(handle)
    }

    /// Latest-version read-only transaction via this node's FE. Under
    /// [`ReadMode::Snapshot`] (the default) it is served from the
    /// snapshot-read fast path at the cluster compute frontier, floored at
    /// this node's session; under [`ReadMode::DelayToEpoch`] it is the
    /// §III-B wait-out-the-epoch baseline.
    ///
    /// # Errors
    ///
    /// Fails on shutdown or transport errors.
    pub fn read_latest(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        match self.read_mode {
            ReadMode::Snapshot => {
                let floor = Timestamp::from_raw(self.session.load(Ordering::Relaxed));
                let (served, reads) = self.server.snapshot_read_latest(keys, floor)?;
                self.session.fetch_max(served.raw(), Ordering::Relaxed);
                Ok(reads.into_iter().map(|read| read.value).collect())
            }
            ReadMode::DelayToEpoch => {
                let values = self.server.read_latest(keys)?;
                self.session
                    .fetch_max(self.server.epoch().visible_bound().raw(), Ordering::Relaxed);
                Ok(values)
            }
        }
    }

    /// Folds an externally-observed timestamp into this node's session
    /// floor: subsequent [`ReadMode::Snapshot`] reads will not serve below
    /// it. This is the causality token for cross-process clients — a client
    /// that commits through one node and reads through another passes the
    /// commit handle's timestamp along (the delay-to-epoch baseline gets the
    /// same guarantee implicitly from its epoch wait).
    pub fn note_observed(&self, ts: Timestamp) {
        self.session.fetch_max(ts.raw(), Ordering::Relaxed);
    }

    /// This node's commit history (present when
    /// [`NodeConfig::record_history`] was set). The launcher merges the
    /// per-node histories by timestamp before checking serializability.
    pub fn history(&self) -> Option<&Arc<History>> {
        self.history.as_ref()
    }

    /// A statistics snapshot: this server's node plus the transport's, with
    /// a process-RSS gauge so deployment dashboards see this process's
    /// resident set next to its live-record counts.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut root = self.server.snapshot();
        root.set_gauge(
            "process_rss_bytes",
            aloha_common::stats::process_rss_bytes(),
        );
        root.push_child(self.net.snapshot());
        root
    }

    /// Stops this node: shuts the co-hosted epoch manager (node 0), the
    /// server's threads, its executor and durable log, then the transport.
    ///
    /// Deployment-wide order matters and belongs to the launcher: stop
    /// workload on every node first, then shut nodes down (node 0 last keeps
    /// epochs advancing while others drain, though any order is safe —
    /// remote sends to dead peers fail like dropped messages and
    /// retransmission gives up at shutdown).
    pub fn shutdown(mut self) {
        if let Some(em) = self.em.take() {
            em.close();
        }
        self.aux_stop.store(true, Ordering::SeqCst);
        self.server.mark_shutdown();
        let _ = self
            .net
            .send_reliable(Addr::Server(self.server.id()), ServerMsg::Shutdown);
        self.net.deregister(Addr::Server(self.server.id()));
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        for t in self.aux_threads.drain(..) {
            let _ = t.join();
        }
        self.server.exec().shutdown();
        if let Some(log) = self.server.durable_log() {
            log.close();
        }
        self.net.shutdown();
    }
}

/// Opens this node's WAL per the configuration, returning any state a
/// previous incarnation left behind.
fn open_wal(config: &NodeConfig) -> Result<(Option<WalSink>, Option<RecoveredLog>)> {
    let Some(spec) = &config.durable_log else {
        return Ok((None, None));
    };
    let cfg = DurableLogConfig::new(spec.dir.join(format!("server-{}", config.id.0)))
        .with_fsync(spec.fsync)
        .with_segment_bytes(spec.segment_bytes)
        .with_flush_appends(spec.flush_appends);
    let (log, recovered) = DurableLog::open(cfg)?;
    Ok((Some(WalSink::Disk(Arc::new(log))), Some(recovered)))
}

/// Applies a recovered durable log onto the fresh partition (checkpoint +
/// WAL suffix; a torn tail is tolerated, interior corruption refuses).
fn recover(partition: &Partition, recovered: &RecoveredLog) -> Result<()> {
    if let Some(damage @ aloha_storage::LogDamage::Corrupt { .. }) = &recovered.damage {
        return Err(Error::Io(format!("wal recovery refused: {damage}")));
    }
    let mut checkpoint = aloha_common::Timestamp::ZERO;
    if let Some((_, blob)) = &recovered.checkpoint {
        checkpoint = aloha_storage::restore_checkpoint(partition, blob)?;
    }
    aloha_storage::replay_records(partition, &recovered.records, checkpoint)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::fn_program;
    use crate::TxnPlan;
    use aloha_net::{Bus, NetConfig};

    /// Two nodes over one shared in-process bus: the node runtime is
    /// transport-agnostic, so the simulated bus exercises the same assembly
    /// the TCP deployment uses.
    #[test]
    fn two_nodes_on_shared_bus_commit_and_read() {
        let bus: Arc<dyn Transport<ServerMsg>> =
            Arc::new(Bus::<ServerMsg>::new(NetConfig::instant()));
        let origin = UnixClock::unix_now_micros();
        let program = ProgramId(1);
        let mut nodes = Vec::new();
        for id in 0..2u16 {
            let mut b = Node::builder(
                NodeConfig::new(ServerId(id), 2, origin)
                    .with_epoch_duration(Duration::from_millis(2)),
            );
            b.register_program(
                program,
                fn_program(|ctx| {
                    Ok(TxnPlan::new().write(
                        Key::from(ctx.args.to_vec()),
                        Functor::Value(Value::from_i64(1)),
                    ))
                }),
            );
            nodes.push(b.start(Arc::clone(&bus)).expect("node start"));
        }
        let keys = [Key::from("alpha"), Key::from("bravo"), Key::from("carol")];
        for key in &keys {
            assert_eq!(
                nodes.iter().filter(|n| n.owns(key)).count(),
                1,
                "exactly one owner per key"
            );
        }
        for (i, key) in keys.iter().enumerate() {
            let handle = nodes[i % 2]
                .execute(program, key.as_bytes().to_vec())
                .expect("execute");
            assert_eq!(
                handle.wait_processed().expect("processed"),
                crate::TxnOutcome::Committed
            );
            // A client hopping nodes carries its causality token: commits
            // made through node 0 must floor node 1's snapshot reads.
            nodes[1].note_observed(handle.timestamp());
        }
        let values = nodes[1].read_latest(&keys).expect("read");
        assert!(values.iter().all(|v| v.is_some()));
        // Shared-bus special case: the first shutdown closes the bus for
        // everyone (each real deployment process owns its own transport);
        // the second node's threads exit on the disconnect.
        for node in nodes {
            node.shutdown();
        }
    }
}
