//! The ALOHA-DB engine: a scalable multi-version in-memory transaction
//! processing system with serializable distributed read-write transactions.
//!
//! This crate assembles the substrates into the system of §III:
//!
//! * every simulated host runs a [`server::Server`] — an FE/BE pair: the FE
//!   coordinates transactions (timestamps, functor transform, installation,
//!   two-round abort) and the BE stores one partition and computes functors
//!   with a thread-pool *processor*;
//! * a central epoch manager drives unified write epochs (§III-B);
//! * transactions are expressed as one-shot [`TxnProgram`]s that transform a
//!   request into key-functor pairs (§IV-A/B);
//! * reads are always historical; latest-version read-only transactions are
//!   delayed to the next epoch (§III-B).
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use aloha_core::{Cluster, ClusterConfig, ProgramId, TxnOutcome};
//! use aloha_common::{Key, Value};
//! use aloha_functor::Functor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut builder = Cluster::builder(
//!     ClusterConfig::new(2).with_epoch_duration(Duration::from_millis(2)),
//! );
//! builder.register_program(ProgramId(1), aloha_core::program::fn_program(|ctx| {
//!     // A write-only transaction: set key "greeting" to the argument bytes.
//!     Ok(aloha_core::TxnPlan::new()
//!         .write(Key::from("greeting"), Functor::Value(Value::new(ctx.args.to_vec()))))
//! }));
//! let cluster = builder.start()?;
//! let db = cluster.database();
//! let handle = db.execute(ProgramId(1), b"hello".to_vec())?;
//! assert_eq!(handle.wait_processed()?, TxnOutcome::Committed);
//! let values = db.read_latest(&[Key::from("greeting")])?;
//! assert_eq!(values[0].as_ref().unwrap().as_bytes(), b"hello");
//! cluster.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod checker;
pub mod cluster;
pub mod msg;
pub mod node;
pub mod program;
pub mod replication;
pub mod server;
pub mod wire;

pub use aloha_net::BatchConfig;
pub use aloha_storage::Fsync;
pub use checker::{diff_states, replay_history, CommitRecord, Divergence, History};
pub use cluster::{
    Cluster, ClusterBuilder, ClusterConfig, CompactionConfig, Database, DurableLogSpec, GcConfig,
    RecoveryReport, TransportSpec,
};
pub use msg::{InstallOutcome, ServerMsg, VersionState};
pub use node::{Node, NodeBuilder, NodeConfig};
pub use program::{
    fn_program, Check, ProgramId, ProgramRegistry, SnapshotReader, TransformCtx, TxnPlan,
    TxnProgram, Write,
};
pub use replication::PartialReplicationSpec;
pub use server::{Server, ServerStats, TxnHandle, TxnOutcome};
pub use wire::ServerMsgCodec;
