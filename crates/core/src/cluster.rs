//! Cluster assembly: servers + epoch manager + bus, and the client-facing
//! [`Database`] handle.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aloha_common::clock::{Clock, ClockBase, SkewedClock, SystemClock};
use aloha_common::metrics::{HistogramSnapshot, Stage, STAGE_COUNT};
use aloha_common::stats::{StageStats, StatsSnapshot};
use aloha_common::{EpochId, PartitionId};
use aloha_common::{Error, Key, Result, ServerId, Timestamp, Value};
use aloha_control::{
    AccessKind, AdaptivePacer, AdmissionGate, ControlConfig, PacerGauges, PacerSample, Permit,
};
use aloha_epoch::{EpochConfig, EpochManager, EpochTransport, Grant, RevokedAck};
use aloha_functor::{Functor, Handler, HandlerId, HandlerRegistry};
use aloha_net::{Addr, BatchConfig, Batcher, Bus, Endpoint, ExecConfig, Executor, NetConfig};
use aloha_storage::Partition;

use crate::checker::History;
use crate::msg::ServerMsg;
use crate::program::{ProgramId, ProgramRegistry, TxnProgram};
use crate::server::{run_dispatcher, run_processor, Server, TxnHandle, TxnOutcome};

/// Cluster-wide configuration.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use aloha_core::ClusterConfig;
///
/// let config = ClusterConfig::new(4)
///     .with_epoch_duration(Duration::from_millis(25))
///     .with_processors(2);
/// assert_eq!(config.servers, 4);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated servers (each hosting one partition).
    pub servers: u16,
    /// Unified epoch duration (paper default: 25 ms).
    pub epoch_duration: Duration,
    /// Simulated network behavior.
    pub net: NetConfig,
    /// Functor processor threads per backend.
    pub processors_per_server: usize,
    /// Enable the §III-C straggler optimization (transactions without
    /// authorization during epoch switches).
    pub allow_noauth: bool,
    /// Per-server clock skew in microseconds (empty = perfectly synced).
    pub clock_skew_micros: Vec<i64>,
    /// Offset added to every clock, in microseconds. A cluster recovering
    /// from a checkpoint must start its timestamp domain *beyond* the
    /// checkpoint timestamp (pass `at.micros() + 1`), exactly as a real
    /// deployment resumes clocks past the recovery point.
    pub clock_offset_micros: u64,
    /// Optional background garbage collection: settled versions older than
    /// `keep` behind the visibility bound are truncated every `interval`.
    /// `None` (the default) keeps all history, as the paper's multi-version
    /// store does during experiments.
    pub gc: Option<GcConfig>,
    /// Log every install/rollback of the write-only phase to a per-server
    /// write-ahead log (§III-A). Off by default, matching the paper's
    /// fault-tolerance-disabled evaluation configuration.
    pub durable: bool,
    /// Mirror every install to the next server in the ring before
    /// acknowledging it (§III-A replication, tolerating a single crash).
    /// Off by default, as in the paper's experiments.
    pub replicated: bool,
    /// How long one attempt of an internal RPC waits before the requester
    /// retransmits (idempotent requests) or gives up. Keep well above the
    /// simulated network latency; lower it (e.g. to a few ms) under fault
    /// injection so retransmissions recover dropped requests quickly.
    pub rpc_timeout: Duration,
    /// Record every coordinated transaction into a cluster-wide commit
    /// [`History`] for the serializability checker (test builds only; adds
    /// one mutex append per transaction).
    pub record_history: bool,
    /// Destination-batched messaging: coalesce bus messages per destination
    /// with these thresholds, flushing at epoch close. `None` (the default)
    /// sends every message individually.
    pub batch: Option<BatchConfig>,
    /// Pool sizes for each server's bounded message executor (sharded lane
    /// for per-key work, blocking lane for cross-partition recursion).
    /// [`aloha_net::ExecConfig::spawn_per_message`] restores the pre-pool
    /// thread-per-message behavior (the ablation baseline).
    pub exec: ExecConfig,
    /// Closed-loop control plane: adaptive epoch pacing and/or per-FE
    /// admission gating. `None` (the default) runs fixed epochs at
    /// [`ClusterConfig::epoch_duration`] with ungated front-ends — the
    /// pre-control-plane behavior. When set, the pacer's `initial` duration
    /// overrides `epoch_duration`.
    pub control: Option<ControlConfig>,
}

/// Background garbage-collection knobs (see [`ClusterConfig::with_gc`]).
#[derive(Debug, Clone, Copy)]
pub struct GcConfig {
    /// How often the sweeper runs.
    pub interval: Duration,
    /// How much settled history (in microseconds of timestamp space) to
    /// retain behind the visibility bound for historical readers.
    pub keep_micros: u64,
}

impl ClusterConfig {
    /// A default configuration for `servers` hosts: 25 ms epochs, instant
    /// network, two processors per server, straggler optimization on.
    pub fn new(servers: u16) -> ClusterConfig {
        ClusterConfig {
            servers,
            epoch_duration: Duration::from_millis(25),
            net: NetConfig::instant(),
            processors_per_server: 2,
            allow_noauth: true,
            clock_skew_micros: Vec::new(),
            clock_offset_micros: 0,
            gc: None,
            durable: false,
            replicated: false,
            rpc_timeout: Duration::from_secs(30),
            record_history: false,
            batch: None,
            exec: ExecConfig::default(),
            control: None,
        }
    }

    /// Overrides the epoch duration.
    pub fn with_epoch_duration(mut self, duration: Duration) -> ClusterConfig {
        self.epoch_duration = duration;
        self
    }

    /// Overrides the network behavior.
    pub fn with_net(mut self, net: NetConfig) -> ClusterConfig {
        self.net = net;
        self
    }

    /// Overrides the processor pool size.
    pub fn with_processors(mut self, processors: usize) -> ClusterConfig {
        self.processors_per_server = processors;
        self
    }

    /// Enables or disables the straggler (no-authorization) optimization.
    pub fn with_noauth(mut self, allow: bool) -> ClusterConfig {
        self.allow_noauth = allow;
        self
    }

    /// Sets per-server clock skew for synchronization experiments.
    pub fn with_clock_skew(mut self, skew_micros: Vec<i64>) -> ClusterConfig {
        self.clock_skew_micros = skew_micros;
        self
    }

    /// Starts every clock at the given microsecond offset (recovery).
    pub fn with_clock_offset(mut self, offset_micros: u64) -> ClusterConfig {
        self.clock_offset_micros = offset_micros;
        self
    }

    /// Enables the background history sweeper.
    pub fn with_gc(mut self, interval: Duration, keep_micros: u64) -> ClusterConfig {
        self.gc = Some(GcConfig {
            interval,
            keep_micros,
        });
        self
    }

    /// Enables write-ahead logging of the write-only phase.
    pub fn with_durability(mut self, durable: bool) -> ClusterConfig {
        self.durable = durable;
        self
    }

    /// Enables synchronous primary-backup replication of installs.
    pub fn with_replication(mut self, replicated: bool) -> ClusterConfig {
        self.replicated = replicated;
        self
    }

    /// Overrides the per-attempt internal RPC timeout.
    pub fn with_rpc_timeout(mut self, timeout: Duration) -> ClusterConfig {
        self.rpc_timeout = timeout;
        self
    }

    /// Enables commit-history recording for the serializability checker.
    pub fn with_history(mut self) -> ClusterConfig {
        self.record_history = true;
        self
    }

    /// Enables destination-batched messaging with the given thresholds.
    pub fn with_batching(mut self, batch: BatchConfig) -> ClusterConfig {
        self.batch = Some(batch);
        self
    }

    /// Overrides the per-server message-executor pool sizes.
    pub fn with_exec(mut self, exec: ExecConfig) -> ClusterConfig {
        self.exec = exec;
        self
    }

    /// Enables the closed-loop control plane (adaptive epoch pacing and/or
    /// FE admission gating).
    ///
    /// # Examples
    ///
    /// ```
    /// use std::time::Duration;
    /// use aloha_control::ControlConfig;
    /// use aloha_core::ClusterConfig;
    ///
    /// let config = ClusterConfig::new(4)
    ///     .with_control(ControlConfig::adaptive(Duration::from_millis(25)));
    /// assert!(config.control.is_some());
    /// ```
    pub fn with_control(mut self, control: ControlConfig) -> ClusterConfig {
        self.control = Some(control);
        self
    }
}

type DependencyRule = Arc<dyn Fn(&Key) -> Option<Key> + Send + Sync>;

/// Configures handlers, programs and dependency rules before starting a
/// [`Cluster`].
pub struct ClusterBuilder {
    config: ClusterConfig,
    handlers: HandlerRegistry,
    programs: ProgramRegistry,
    dependency_rules: Vec<DependencyRule>,
}

impl std::fmt::Debug for ClusterBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBuilder")
            .field("config", &self.config)
            .finish()
    }
}

impl ClusterBuilder {
    /// Registers a functor handler (available on every backend).
    pub fn register_handler(
        &mut self,
        id: HandlerId,
        handler: impl Handler + 'static,
    ) -> &mut Self {
        self.handlers.register(id, handler);
        self
    }

    /// Registers a transaction program (available on every front-end).
    pub fn register_program(
        &mut self,
        id: ProgramId,
        program: impl TxnProgram + 'static,
    ) -> &mut Self {
        self.programs.register(id, program);
        self
    }

    /// Registers a dependent-key rule (§IV-E) on every partition.
    pub fn add_dependency_rule(
        &mut self,
        rule: impl Fn(&Key) -> Option<Key> + Send + Sync + 'static,
    ) -> &mut Self {
        self.dependency_rules.push(Arc::new(rule));
        self
    }

    /// Starts the cluster: spawns servers, processors and the epoch manager.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for invalid configurations.
    pub fn start(self) -> Result<Cluster> {
        let n = self.config.servers;
        if n == 0 {
            return Err(Error::Config("cluster needs at least one server".into()));
        }
        if n as u32 > (1 << aloha_common::ServerId::BITS) {
            return Err(Error::Config(format!(
                "at most 256 servers supported, got {n}"
            )));
        }
        if !self.config.clock_skew_micros.is_empty()
            && self.config.clock_skew_micros.len() != n as usize
        {
            return Err(Error::Config(
                "clock_skew_micros must have one entry per server".into(),
            ));
        }
        if self.config.processors_per_server == 0 {
            return Err(Error::Config(
                "need at least one processor per server".into(),
            ));
        }
        if let Some(control) = &self.config.control {
            control.validate()?;
        }

        let base = ClockBase::new();
        let bus: Bus<ServerMsg> = Bus::new(self.config.net.clone());
        // One batcher for the whole cluster: traffic from different servers
        // toward the same destination coalesces into shared envelopes, and
        // the metrics land on the single `net` node where they belong.
        let batcher =
            self.config.batch.clone().map(|cfg| {
                Batcher::new(bus.clone(), cfg, ServerMsg::Batch, ServerMsg::approx_bytes)
            });
        let em_endpoint = bus.register(Addr::EpochManager);
        let handlers = Arc::new(self.handlers);
        let programs = Arc::new(self.programs);

        let history = self.config.record_history.then(|| Arc::new(History::new()));
        let mut servers = Vec::with_capacity(n as usize);
        let mut threads = Vec::new();
        for i in 0..n {
            let skew = self
                .config
                .clock_skew_micros
                .get(i as usize)
                .copied()
                .unwrap_or(0)
                + self.config.clock_offset_micros as i64;
            let clock: Arc<dyn Clock> = if skew != 0 {
                Arc::new(SkewedClock::new(SystemClock::new(base.clone()), skew))
            } else {
                Arc::new(SystemClock::new(base.clone()))
            };
            let partition = Arc::new(Partition::new(PartitionId(i), n, Arc::clone(&handlers)));
            for rule in &self.dependency_rules {
                let rule = Arc::clone(rule);
                partition.add_dependency_rule(move |k| rule(k));
            }
            let epoch = Arc::new(aloha_epoch::EpochClient::new(
                ServerId(i),
                clock,
                self.config.allow_noauth,
            ));
            let endpoint = bus.register(Addr::Server(ServerId(i)));
            let exec = Executor::new(format!("exec-s{i}"), self.config.exec.clone());
            let (server, queue_rx) = Server::new(
                ServerId(i),
                n,
                partition,
                epoch,
                bus.clone(),
                batcher.clone(),
                exec,
                Arc::clone(&programs),
                self.config.durable,
                self.config.replicated,
                self.config.rpc_timeout,
                history.clone(),
            );
            let dispatcher_server = Arc::clone(&server);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("dispatch-s{i}"))
                    .spawn(move || run_dispatcher(dispatcher_server, endpoint))
                    .expect("spawn dispatcher"),
            );
            for p in 0..self.config.processors_per_server {
                let processor_server = Arc::clone(&server);
                let rx = queue_rx.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("proc-s{i}-{p}"))
                        .spawn(move || run_processor(processor_server, rx))
                        .expect("spawn processor"),
                );
            }
            servers.push(server);
        }

        let em_clock: Arc<dyn Clock> = if self.config.clock_offset_micros != 0 {
            Arc::new(SkewedClock::new(
                SystemClock::new(base),
                self.config.clock_offset_micros as i64,
            ))
        } else {
            Arc::new(SystemClock::new(base))
        };
        // With a control plane configured, the pacer's initial duration is
        // authoritative (`ControlConfig::fixed(d)` ≡ `with_epoch_duration(d)`).
        let epoch_duration = self
            .config
            .control
            .as_ref()
            .map(|c| c.pacing.initial)
            .unwrap_or(self.config.epoch_duration);
        let em_config = EpochConfig {
            epoch_duration,
            servers: (0..n).map(ServerId).collect(),
            poll_interval: Duration::from_micros(200),
            // Retransmit unacked revokes fast enough to ride out dropped
            // Revoke/ack messages without stretching epochs noticeably.
            revoke_resend_interval: (epoch_duration / 4).max(Duration::from_millis(2)),
        };
        let transport = BusTransport {
            bus: bus.clone(),
            endpoint: em_endpoint,
        };
        let mut pacer_gauges = None;
        let em = match &self.config.control {
            Some(control) => {
                let gauges = Arc::new(PacerGauges::default());
                // The pacer samples live cluster pressure right before each
                // authorization: executor lane depths, install/compute
                // backlogs, and whatever is coalescing in the batcher. In
                // `Fixed` mode the closure is never called.
                let sample_servers = servers.clone();
                let sample_batcher = batcher.clone();
                let source = move || PacerSample {
                    exec_queue: sample_servers.iter().map(|s| s.exec().queued_now()).sum(),
                    backlog: sample_servers.iter().map(|s| s.backlog_len()).sum(),
                    batch_occupancy: sample_batcher.as_ref().map(|b| b.queued_now()).unwrap_or(0),
                };
                let pacer =
                    AdaptivePacer::new(control.pacing.clone(), source, Arc::clone(&gauges))?;
                pacer_gauges = Some(gauges);
                EpochManager::spawn_with_pacer(em_config, em_clock, transport, Box::new(pacer))
            }
            None => EpochManager::spawn(em_config, em_clock, transport),
        };
        let gates = self
            .config
            .control
            .as_ref()
            .and_then(|c| c.gate.as_ref())
            .map(|gate_cfg| {
                let gates = (0..n)
                    .map(|_| AdmissionGate::new(gate_cfg.clone()).map(Arc::new))
                    .collect::<Result<Vec<_>>>()?;
                Ok::<_, Error>(Arc::new(gates))
            })
            .transpose()?;

        let gc_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        if let Some(gc) = self.config.gc {
            let sweep_servers = servers.clone();
            let stop = Arc::clone(&gc_stop);
            threads.push(
                std::thread::Builder::new()
                    .name("gc-sweeper".into())
                    .spawn(move || {
                        while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                            std::thread::sleep(gc.interval);
                            for server in &sweep_servers {
                                let settled = server.epoch().visible_bound();
                                let bound = Timestamp::floor_of_micros(
                                    settled.micros().saturating_sub(gc.keep_micros),
                                );
                                server.partition().store().truncate_below(bound);
                            }
                        }
                    })
                    .expect("spawn gc sweeper"),
            );
        }

        Ok(Cluster {
            servers,
            em: Some(em),
            bus,
            batcher,
            threads,
            total: n,
            gc_stop,
            history,
            gates,
            pacer_gauges,
        })
    }
}

/// EM transport over the cluster bus.
struct BusTransport {
    bus: Bus<ServerMsg>,
    endpoint: Endpoint<ServerMsg>,
}

impl EpochTransport for BusTransport {
    fn send_grant(&self, to: ServerId, grant: Grant) {
        let _ = self.bus.send(Addr::Server(to), ServerMsg::Grant(grant));
    }

    fn send_revoke(&self, to: ServerId, epoch: EpochId) {
        let _ = self.bus.send(Addr::Server(to), ServerMsg::Revoke(epoch));
    }

    fn recv_ack(&self, timeout: Duration) -> Option<RevokedAck> {
        loop {
            match self.endpoint.recv_timeout(timeout) {
                Ok(ServerMsg::RevokedAck(ack)) => return Some(ack),
                Ok(_) => continue, // stray message; EM only consumes acks
                Err(_) => return None,
            }
        }
    }
}

/// A running ALOHA-DB cluster.
///
/// Dropping the cluster shuts it down; prefer calling [`Cluster::shutdown`]
/// explicitly.
pub struct Cluster {
    servers: Vec<Arc<Server>>,
    em: Option<EpochManager>,
    bus: Bus<ServerMsg>,
    batcher: Option<Batcher<ServerMsg>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    total: u16,
    gc_stop: Arc<std::sync::atomic::AtomicBool>,
    history: Option<Arc<History>>,
    /// Per-FE admission gates (index-aligned with `servers`); `None` when
    /// the control plane is off or gating is disabled.
    gates: Option<Arc<Vec<Arc<AdmissionGate>>>>,
    /// Live pacer state exported on the `control` snapshot node (`Some`
    /// exactly when a control plane is configured).
    pacer_gauges: Option<Arc<PacerGauges>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("servers", &self.total)
            .finish()
    }
}

impl Cluster {
    /// Starts building a cluster with the given configuration.
    pub fn builder(config: ClusterConfig) -> ClusterBuilder {
        ClusterBuilder {
            config,
            handlers: HandlerRegistry::new(),
            programs: ProgramRegistry::new(),
            dependency_rules: Vec::new(),
        }
    }

    /// The servers, indexed by [`ServerId`].
    pub fn servers(&self) -> &[Arc<Server>] {
        &self.servers
    }

    /// One server by index.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn server(&self, id: ServerId) -> &Arc<Server> {
        &self.servers[id.index()]
    }

    /// Number of servers/partitions.
    pub fn size(&self) -> u16 {
        self.total
    }

    /// The cluster-wide commit history (present when the configuration
    /// enabled [`ClusterConfig::with_history`]).
    pub fn history(&self) -> Option<&Arc<History>> {
        self.history.as_ref()
    }

    /// The active fault plan, if the network configuration injects faults.
    pub fn fault_plan(&self) -> Option<&aloha_net::FaultPlan> {
        self.bus.fault_plan()
    }

    /// Bus traffic counters, including injected fault counts.
    pub fn net_stats(&self) -> &aloha_net::NetStats {
        self.bus.stats()
    }

    /// A cheap client handle.
    pub fn database(&self) -> Database {
        Database {
            servers: Arc::new(self.servers.clone()),
            next_fe: Arc::new(AtomicUsize::new(0)),
            session: Arc::new(AtomicU64::new(0)),
            gates: self.gates.clone(),
        }
    }

    /// Loads an initial row directly into the owning partition (version 1,
    /// below every transaction timestamp). Used by workload loaders before
    /// opening the database for transactions.
    pub fn load(&self, key: Key, value: Value) {
        self.load_functor(key, Functor::Value(value));
    }

    /// Loads an initial functor directly into the owning partition.
    pub fn load_functor(&self, key: Key, functor: Functor) {
        let owner = key.partition(self.total);
        self.servers[owner.index()].partition().load(&key, functor);
    }

    /// One composable snapshot of the whole cluster: summed transaction
    /// counters and cluster-wide per-stage percentiles at the root (raw
    /// histogram buckets are merged across servers before quantiles are
    /// taken), with per-server, epoch-manager and network subtrees as
    /// children.
    ///
    /// The root carries all six lifecycle stages plus an `e2e` entry for
    /// end-to-end latency. Export with [`StatsSnapshot::to_json`] or the
    /// [`std::fmt::Display`] rendering.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut root = StatsSnapshot::new("cluster");
        let mut committed = 0;
        let mut aborted = 0;
        let mut installs = 0;
        let mut compute_errors = 0;
        let mut merged: [HistogramSnapshot; STAGE_COUNT + 1] = Default::default();
        for server in &self.servers {
            let stats = server.stats();
            committed += stats.committed();
            aborted += stats.aborted();
            installs += stats.installs();
            compute_errors += stats.compute_errors();
            for (acc, raw) in merged.iter_mut().zip(stats.raw_histograms()) {
                acc.merge(&raw);
            }
            root.push_child(server.snapshot());
        }
        root.set_counter("committed", committed);
        root.set_counter("aborted", aborted);
        root.set_counter("installs", installs);
        root.set_counter("compute_errors", compute_errors);
        for (stage, snap) in Stage::ALL.iter().zip(&merged[..STAGE_COUNT]) {
            root.set_stage(stage.name(), StageStats::from(snap));
        }
        root.set_stage("e2e", StageStats::from(&merged[STAGE_COUNT]));
        if let Some(em) = &self.em {
            root.push_child(em.stats().snapshot());
        }
        let mut net = self.bus.stats().snapshot();
        if let Some(batcher) = &self.batcher {
            batcher.stats().export(&mut net);
        }
        root.push_child(net);
        if let Some(control) = self.control_snapshot() {
            root.push_child(control);
        }
        root
    }

    /// The `control` node of the stats tree: pacer gauges at the top plus
    /// summed gate activity, with one child per front-end gate. `None` when
    /// no control plane is configured.
    fn control_snapshot(&self) -> Option<StatsSnapshot> {
        if self.pacer_gauges.is_none() && self.gates.is_none() {
            return None;
        }
        let mut node = StatsSnapshot::new("control");
        if let Some(g) = &self.pacer_gauges {
            node.set_gauge("epoch_duration_micros", g.epoch_duration_micros.get());
            node.set_gauge("pressure_millis", g.pressure_millis.get());
        }
        if let Some(gates) = &self.gates {
            let (mut admitted, mut shed, mut queued, mut in_use) = (0, 0, 0, 0);
            for (i, gate) in gates.iter().enumerate() {
                let stats = gate.stats();
                admitted += stats.admitted.get();
                shed += stats.shed.get();
                queued += stats.queued.get();
                in_use += stats.tokens_in_use.get();
                node.push_child(gate.snapshot(format!("gate_s{i}")));
            }
            node.set_counter("admitted", admitted);
            node.set_counter("shed", shed);
            node.set_counter("queued", queued);
            node.set_gauge("tokens_in_use", in_use);
        }
        Some(node)
    }

    /// The per-FE admission gates, when the control plane enables gating.
    pub fn gates(&self) -> Option<&[Arc<AdmissionGate>]> {
        self.gates.as_deref().map(Vec::as_slice)
    }

    /// Resets every server's statistics (benchmark warm-up boundary).
    pub fn reset_stats(&self) {
        for server in &self.servers {
            server.stats().reset();
            server.exec().stats().reset();
        }
        if let Some(batcher) = &self.batcher {
            batcher.stats().reset();
        }
        if let Some(gates) = &self.gates {
            for gate in gates.iter() {
                gate.reset_stats();
            }
        }
    }

    /// Takes a consistent checkpoint of every partition at the cluster-wide
    /// settled bound (the minimum visibility bound across servers), returning
    /// one blob per partition plus the snapshot timestamp. Implements the
    /// checkpointing half of the §III-A fault-tolerance strategy.
    ///
    /// # Errors
    ///
    /// Propagates transport failures from on-demand computing.
    pub fn checkpoint(&self) -> Result<(Timestamp, Vec<Vec<u8>>)> {
        let at = self
            .servers
            .iter()
            .map(|s| s.epoch().visible_bound())
            .min()
            .unwrap_or(Timestamp::ZERO);
        let blobs = self
            .servers
            .iter()
            .map(|s| s.write_checkpoint(at))
            .collect::<Result<Vec<_>>>()?;
        Ok((at, blobs))
    }

    /// Rebuilds partition `lost` from its backup's mirrored records: the
    /// §III-A single-crash recovery path. Installs every mirrored record
    /// into the target cluster's partition (ABORTED records re-apply the
    /// rollback).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if replication was not enabled.
    pub fn rebuild_from_replica(&self, source: &Cluster, lost: ServerId) -> Result<usize> {
        let backup = source.servers[lost.index()].backup_of(lost);
        let records = source.servers[backup.index()].replica_dump();
        if !source.servers[backup.index()].is_replicated() {
            return Err(Error::Config(
                "replication was not enabled on the source".into(),
            ));
        }
        let target = &self.servers[lost.index()];
        let mut applied = 0;
        for (key, version, functor) in records {
            if functor == aloha_functor::Functor::Aborted {
                target.partition().abort_version(&key, version);
            } else {
                target.partition().store().put(&key, version, functor);
            }
            applied += 1;
        }
        Ok(applied)
    }

    /// Snapshot of every server's write-ahead log (empty logs when
    /// durability is off).
    pub fn wal_snapshots(&self) -> Vec<Vec<u8>> {
        self.servers.iter().map(|s| s.wal_snapshot()).collect()
    }

    /// Replays per-partition write-ahead logs on top of a restored
    /// checkpoint taken at `checkpoint` (full recovery = `restore` +
    /// `replay_wals`). Returns total records applied.
    ///
    /// # Errors
    ///
    /// Fails on corrupt logs or a log-count mismatch.
    pub fn replay_wals(&self, logs: &[Vec<u8>], checkpoint: Timestamp) -> Result<usize> {
        if logs.len() != self.servers.len() {
            return Err(Error::Config(format!(
                "wal set has {} partitions, cluster has {}",
                logs.len(),
                self.servers.len()
            )));
        }
        let mut applied = 0;
        for (server, log) in self.servers.iter().zip(logs) {
            applied += server.replay_wal(log, checkpoint)?;
        }
        Ok(applied)
    }

    /// Restores per-partition checkpoint blobs (as produced by
    /// [`Cluster::checkpoint`]) into this cluster; intended for a freshly
    /// started cluster before it serves traffic.
    ///
    /// # Errors
    ///
    /// Fails on malformed blobs or a blob-count mismatch.
    pub fn restore(&self, blobs: &[Vec<u8>]) -> Result<()> {
        if blobs.len() != self.servers.len() {
            return Err(Error::Config(format!(
                "checkpoint has {} partitions, cluster has {}",
                blobs.len(),
                self.servers.len()
            )));
        }
        for (server, blob) in self.servers.iter().zip(blobs) {
            server.restore_checkpoint(blob)?;
        }
        Ok(())
    }

    /// Garbage-collects settled history below `bound` on every partition.
    /// Returns the number of version records dropped.
    pub fn gc(&self, bound: Timestamp) -> usize {
        self.servers
            .iter()
            .map(|s| s.partition().store().truncate_below(bound))
            .sum()
    }

    /// Stops the epoch manager, the servers and all their threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.gc_stop
            .store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(em) = self.em.take() {
            em.close();
        }
        // Flush and retire the batching layer first so nothing queued ends
        // up behind the Shutdown messages below (post-shutdown sends go
        // direct to the bus).
        if let Some(batcher) = &self.batcher {
            batcher.shutdown();
        }
        for server in &self.servers {
            server.mark_shutdown();
            let _ = self
                .bus
                .send_reliable(Addr::Server(server.id()), ServerMsg::Shutdown);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // With every dispatcher gone nothing submits anymore; drain the
        // executors' accepted work and join their pooled workers. Done
        // after the dispatcher joins so in-flight drains on one server can
        // still be answered by any other server's still-live workers.
        for server in &self.servers {
            server.exec().shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Client handle: submits transactions and reads, choosing front-ends
/// round-robin (override with the `_at` variants to pin a coordinator).
#[derive(Clone)]
pub struct Database {
    servers: Arc<Vec<Arc<Server>>>,
    next_fe: Arc<AtomicUsize>,
    /// Highest settled bound this handle has observed (raw timestamp).
    /// Front-ends learn the settled bound at different times (it rides on
    /// epoch grants), so round-robin dispatch alone would let a transaction
    /// transform against a snapshot older than a read this same handle
    /// already returned. Waiting for the picked FE to catch up restores
    /// monotone reads per handle.
    session: Arc<AtomicU64>,
    /// Per-FE admission gates, index-aligned with `servers` (`None` when the
    /// cluster runs ungated). Admission happens here, at the client edge,
    /// *before* the transform: a shed transaction never installs a functor.
    gates: Option<Arc<Vec<Arc<AdmissionGate>>>>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("servers", &self.servers.len())
            .finish()
    }
}

impl Database {
    fn pick_fe(&self) -> usize {
        self.next_fe.fetch_add(1, Ordering::Relaxed) % self.servers.len()
    }

    /// Acquires the FE's admission token (a no-op returning `None` on an
    /// ungated cluster).
    ///
    /// # Errors
    ///
    /// [`Error::Overloaded`] when front-end `fe` sheds the transaction.
    fn admit(&self, fe: usize, kind: AccessKind) -> Result<Option<Permit>> {
        match &self.gates {
            Some(gates) => gates[fe].admit(kind).map(Some),
            None => Ok(None),
        }
    }

    /// Records that this handle observed `bound` settled.
    fn note_session(&self, bound: Timestamp) {
        self.session.fetch_max(bound.raw(), Ordering::Relaxed);
    }

    /// Blocks (bounded) until `fe` has settled everything this handle has
    /// already observed, so per-handle reads and transforms are monotone.
    fn sync_session(&self, fe: &Arc<Server>) {
        let bound = Timestamp::from_raw(self.session.load(Ordering::Relaxed));
        if bound > fe.epoch().visible_bound() {
            let deadline = Instant::now() + Duration::from_secs(5);
            fe.epoch().wait_visible(bound, Some(deadline));
        }
    }

    /// Executes a one-shot transaction via a round-robin front-end; returns
    /// after the write-only phase. Args accept anything byte-like: arrays
    /// (`7i64.to_be_bytes()`), slices, `Vec<u8>`, or `&str`.
    ///
    /// # Errors
    ///
    /// Fails on shutdown, unknown programs, transform rejections and
    /// transport errors.
    pub fn execute(&self, program: ProgramId, args: impl Into<Vec<u8>>) -> Result<TxnHandle> {
        let i = self.pick_fe();
        // Admission precedes everything — a shed transaction costs the FE no
        // timestamp, no transform, no installed functor.
        let permit = self.admit(i, AccessKind::Write)?;
        let fe = &self.servers[i];
        self.sync_session(fe);
        let handle = fe.coordinate(program, &args.into())?;
        if let Some(permit) = permit {
            handle.attach_permit(permit);
        }
        Ok(handle)
    }

    /// Executes and blocks until the functor computing phase resolves:
    /// [`Database::execute`] followed by [`TxnHandle::wait_processed`].
    ///
    /// # Errors
    ///
    /// As [`Database::execute`], plus wait-side shutdown/transport errors.
    pub fn execute_wait(&self, program: ProgramId, args: impl Into<Vec<u8>>) -> Result<TxnOutcome> {
        self.execute(program, args)?.wait_processed()
    }

    /// Executes with a pinned coordinator (e.g. a server that owns part of
    /// the write set, which makes outcome resolution local).
    ///
    /// # Errors
    ///
    /// As [`Database::execute`]; additionally [`Error::NoSuchPartition`] for
    /// an out-of-range server.
    pub fn execute_at(
        &self,
        fe: ServerId,
        program: ProgramId,
        args: impl Into<Vec<u8>>,
    ) -> Result<TxnHandle> {
        let server = self
            .servers
            .get(fe.index())
            .ok_or(Error::NoSuchPartition(PartitionId(fe.0)))?;
        let permit = self.admit(fe.index(), AccessKind::Write)?;
        let handle = server.coordinate(program, &args.into())?;
        if let Some(permit) = permit {
            handle.attach_permit(permit);
        }
        Ok(handle)
    }

    /// Latest-version read-only transaction (§III-B): assigned a timestamp
    /// in the current epoch and processed as a historical read once the
    /// epoch completes.
    ///
    /// # Errors
    ///
    /// Fails on shutdown or transport errors.
    pub fn read_latest(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        let i = self.pick_fe();
        // Reads admit under `AccessKind::Read`, which may use the reserved
        // share of the window writes cannot touch; the token is held across
        // the synchronous read.
        let _permit = self.admit(i, AccessKind::Read)?;
        let fe = &self.servers[i];
        let values = fe.read_latest(keys)?;
        self.note_session(fe.epoch().visible_bound());
        Ok(values)
    }

    /// Latest-version read of a single key: [`Database::read_latest`] without
    /// the slice ceremony.
    ///
    /// # Errors
    ///
    /// Fails on shutdown or transport errors.
    pub fn read_one(&self, key: &Key) -> Result<Option<Value>> {
        Ok(self.read_latest(std::slice::from_ref(key))?.pop().flatten())
    }

    /// Historical read at an already-settled timestamp.
    ///
    /// # Errors
    ///
    /// Fails if `ts` is not settled yet, on shutdown, or on transport errors.
    pub fn read_at(&self, keys: &[Key], ts: Timestamp) -> Result<Vec<Option<Value>>> {
        let i = self.pick_fe();
        let _permit = self.admit(i, AccessKind::Read)?;
        let values = self.servers[i].read_at(keys, ts)?;
        self.note_session(ts);
        Ok(values)
    }

    /// The current settled visibility bound (any FE's view).
    pub fn visible_bound(&self) -> Timestamp {
        self.servers[0].epoch().visible_bound()
    }

    /// Number of servers.
    pub fn cluster_size(&self) -> usize {
        self.servers.len()
    }
}
