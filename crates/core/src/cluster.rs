//! Cluster assembly: servers + epoch manager + bus, and the client-facing
//! [`Database`] handle.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aloha_common::clock::{Clock, ClockBase, SkewedClock, SystemClock};
use aloha_common::metrics::{HistogramSnapshot, Stage, STAGE_COUNT};
use aloha_common::stats::{StageStats, StatsSnapshot};
use aloha_common::{EpochId, PartitionId};
use aloha_common::{Error, Key, ReadMode, Result, ServerId, Timestamp, Value};
use aloha_control::{
    AccessKind, AdaptivePacer, AdmissionGate, ControlConfig, PacerGauges, PacerSample, Permit,
};
use aloha_epoch::{EpochClient, EpochConfig, EpochManager, EpochTransport, Grant, RevokedAck};
use aloha_functor::{Functor, Handler, HandlerId, HandlerRegistry};
use aloha_net::{
    Addr, BatchConfig, Batcher, Bus, Endpoint, ExecConfig, Executor, NetConfig, Transport,
};
use aloha_storage::{DurableLog, DurableLogConfig, Fsync, LogDamage, Partition, RecoveredLog};
use crossbeam::channel::Receiver;
use parking_lot::{Mutex, RwLock};

use aloha_replica::{AvailabilityStats, HotnessPolicy, PartitionSignal};

use crate::checker::History;
use crate::msg::ServerMsg;
use crate::program::{ProgramId, ProgramRegistry, TxnProgram};
use crate::replication::{PartialReplicationSpec, ReplicaSet};
use crate::server::{
    run_dispatcher, run_processor, MemWal, QueueEntry, Server, TxnHandle, TxnOutcome, WalSink,
};

/// Cluster-wide configuration.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use aloha_core::ClusterConfig;
///
/// let config = ClusterConfig::new(4)
///     .with_epoch_duration(Duration::from_millis(25))
///     .with_processors(2);
/// assert_eq!(config.servers, 4);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated servers (each hosting one partition).
    pub servers: u16,
    /// Unified epoch duration (paper default: 25 ms).
    pub epoch_duration: Duration,
    /// Simulated network behavior.
    pub net: NetConfig,
    /// Functor processor threads per backend.
    pub processors_per_server: usize,
    /// Enable the §III-C straggler optimization (transactions without
    /// authorization during epoch switches).
    pub allow_noauth: bool,
    /// Per-server clock skew in microseconds (empty = perfectly synced).
    pub clock_skew_micros: Vec<i64>,
    /// Offset added to every clock, in microseconds. A cluster recovering
    /// from a checkpoint must start its timestamp domain *beyond* the
    /// checkpoint timestamp (pass `at.micros() + 1`), exactly as a real
    /// deployment resumes clocks past the recovery point.
    pub clock_offset_micros: u64,
    /// Optional background garbage collection: settled versions older than
    /// `keep` behind the visibility bound are truncated every `interval`.
    /// `None` (the default) keeps all history, as the paper's multi-version
    /// store does during experiments.
    pub gc: Option<GcConfig>,
    /// Optional watermark-driven chain compaction: settled records are
    /// periodically packed out of their `Arc`+lock cells and the dead
    /// committed prefix of every chain is folded into its materialized base
    /// (aborted records are retained for outcome probes). `None` (the
    /// default) keeps every version live, the pre-compaction behavior.
    pub compaction: Option<CompactionConfig>,
    /// Log every install/rollback of the write-only phase to a per-server
    /// in-memory write-ahead log (§III-A). Off by default, matching the
    /// paper's fault-tolerance-disabled evaluation configuration. For a
    /// crash-durable on-disk log see [`ClusterConfig::with_durable_log`],
    /// which supersedes this flag.
    pub durable: bool,
    /// Crash-durable write-ahead logging: per-server segment files with
    /// epoch group commit and checkpoint truncation. `None` (the default)
    /// keeps the WAL in memory (or off, per [`ClusterConfig::durable`]).
    pub durable_log: Option<DurableLogSpec>,
    /// Mirror every install to the next server in the ring before
    /// acknowledging it (§III-A replication, tolerating a single crash).
    /// Off by default, as in the paper's experiments.
    pub replicated: bool,
    /// Partial replication: keep log-shipped standbys for up to `budget`
    /// hot partitions and promote one at an epoch boundary when its primary
    /// is killed (see [`ClusterConfig::with_partial_replication`]). `None`
    /// (the default) leaves every partition on the restart-from-WAL path.
    pub partial_replication: Option<PartialReplicationSpec>,
    /// How long one attempt of an internal RPC waits before the requester
    /// retransmits (idempotent requests) or gives up. Keep well above the
    /// simulated network latency; lower it (e.g. to a few ms) under fault
    /// injection so retransmissions recover dropped requests quickly.
    pub rpc_timeout: Duration,
    /// Record every coordinated transaction into a cluster-wide commit
    /// [`History`] for the serializability checker (test builds only; adds
    /// one mutex append per transaction).
    pub record_history: bool,
    /// Destination-batched messaging: coalesce bus messages per destination
    /// with these thresholds, flushing at epoch close. `None` (the default)
    /// sends every message individually.
    pub batch: Option<BatchConfig>,
    /// Pool sizes for each server's bounded message executor (sharded lane
    /// for per-key work, blocking lane for cross-partition recursion).
    /// [`aloha_net::ExecConfig::spawn_per_message`] restores the pre-pool
    /// thread-per-message behavior (the ablation baseline).
    pub exec: ExecConfig,
    /// Closed-loop control plane: adaptive epoch pacing and/or per-FE
    /// admission gating. `None` (the default) runs fixed epochs at
    /// [`ClusterConfig::epoch_duration`] with ungated front-ends — the
    /// pre-control-plane behavior. When set, the pacer's `initial` duration
    /// overrides `epoch_duration`.
    pub control: Option<ControlConfig>,
    /// Which [`Transport`] carries cluster messages. The default simulated
    /// bus is built from [`ClusterConfig::net`]; a custom transport (e.g.
    /// [`aloha_net::TcpTransport`]) ignores `net` entirely.
    pub transport: TransportSpec,
    /// How [`Database`] handles serve latest-version reads: the snapshot-read
    /// fast path at the cluster compute frontier (the default), or the
    /// §III-B delay-to-next-epoch baseline.
    pub read_mode: ReadMode,
}

/// Which transport implementation a cluster runs on
/// (see [`ClusterConfig::with_transport`]).
#[derive(Clone, Default)]
pub enum TransportSpec {
    /// The in-process simulated [`Bus`], built from [`ClusterConfig::net`].
    /// This is the default and preserves the single-process behavior
    /// bit-for-bit, including fault injection and delay lines.
    #[default]
    Simulated,
    /// A caller-supplied transport. The cluster takes ownership of its
    /// lifecycle: [`Cluster::shutdown`] shuts the transport down.
    Custom(Arc<dyn Transport<ServerMsg>>),
}

impl std::fmt::Debug for TransportSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportSpec::Simulated => f.write_str("TransportSpec::Simulated"),
            TransportSpec::Custom(_) => f.write_str("TransportSpec::Custom(..)"),
        }
    }
}

/// Background garbage-collection knobs (see [`ClusterConfig::with_gc`]).
#[derive(Debug, Clone, Copy)]
pub struct GcConfig {
    /// How often the sweeper runs.
    pub interval: Duration,
    /// How much settled history (in microseconds of timestamp space) to
    /// retain behind the visibility bound for historical readers.
    pub keep_micros: u64,
}

/// Watermark-driven chain-compaction knobs (see
/// [`ClusterConfig::with_compaction`]).
///
/// The sweeper folds committed history below each key's value watermark,
/// keeping the newest `keep_versions` committed records per chain as the
/// materialized base. Aborted records below the watermark are packed but
/// never folded, so late outcome probes can still distinguish an aborted
/// version from folded committed history. Historical reads below the
/// retained window are best-effort, exactly as with [`GcConfig`].
#[derive(Debug, Clone, Copy)]
pub struct CompactionConfig {
    /// How often the sweeper runs.
    pub interval: Duration,
    /// Committed versions to retain per chain (clamped to at least 1 — the
    /// base record readers floor onto).
    pub keep_versions: usize,
}

/// Crash-durable WAL knobs (see [`ClusterConfig::with_durable_log`]).
///
/// Each server logs into its own subdirectory `dir/server-<i>`; reopening
/// the same directory recovers each partition from its newest checkpoint
/// plus the WAL suffix.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use aloha_core::{DurableLogSpec, Fsync};
///
/// let spec = DurableLogSpec::new("/tmp/aloha-wal")
///     .with_fsync(Fsync::EveryN(8))
///     .with_checkpoint_interval(Duration::from_millis(100));
/// assert!(spec.checkpoint_interval.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct DurableLogSpec {
    /// Root directory; one subdirectory per server is created inside.
    pub dir: PathBuf,
    /// Group-commit fsync policy (the machine-crash durability knob).
    pub fsync: Fsync,
    /// Periodic background checkpointing: every interval, each durable
    /// server snapshots its partition at the settled bound into the log
    /// directory and truncates dead segments. `None` (the default) leaves
    /// checkpointing to explicit [`Cluster::checkpoint_to_wal`] calls.
    pub checkpoint_interval: Option<Duration>,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Flush every append to the kernel before acknowledging it, making
    /// acked installs survive a process SIGKILL mid-epoch (see
    /// [`aloha_storage::DurableLogConfig::flush_appends`]). Required for
    /// multi-process deployments where a remote coordinator commits on the
    /// strength of an install ack.
    pub flush_appends: bool,
}

impl DurableLogSpec {
    /// A durable log rooted at `dir`: epoch-granular fsync, 256 KiB
    /// segments, no background checkpointing.
    pub fn new(dir: impl Into<PathBuf>) -> DurableLogSpec {
        DurableLogSpec {
            dir: dir.into(),
            fsync: Fsync::EveryEpoch,
            checkpoint_interval: None,
            segment_bytes: 256 * 1024,
            flush_appends: false,
        }
    }

    /// Overrides the fsync policy.
    #[must_use]
    pub fn with_fsync(mut self, fsync: Fsync) -> DurableLogSpec {
        self.fsync = fsync;
        self
    }

    /// Enables the background checkpointer at the given cadence.
    #[must_use]
    pub fn with_checkpoint_interval(mut self, interval: Duration) -> DurableLogSpec {
        self.checkpoint_interval = Some(interval);
        self
    }

    /// Overrides the segment rotation threshold.
    #[must_use]
    pub fn with_segment_bytes(mut self, bytes: u64) -> DurableLogSpec {
        self.segment_bytes = bytes;
        self
    }

    /// Enables per-append kernel flushes (process-crash durability for
    /// acknowledged installs).
    #[must_use]
    pub fn with_flush_appends(mut self, flush: bool) -> DurableLogSpec {
        self.flush_appends = flush;
        self
    }
}

impl ClusterConfig {
    /// A default configuration for `servers` hosts: 25 ms epochs, instant
    /// network, two processors per server, straggler optimization on.
    pub fn new(servers: u16) -> ClusterConfig {
        ClusterConfig {
            servers,
            epoch_duration: Duration::from_millis(25),
            net: NetConfig::instant(),
            processors_per_server: 2,
            allow_noauth: true,
            clock_skew_micros: Vec::new(),
            clock_offset_micros: 0,
            gc: None,
            compaction: None,
            durable: false,
            durable_log: None,
            replicated: false,
            partial_replication: None,
            rpc_timeout: Duration::from_secs(30),
            record_history: false,
            batch: None,
            exec: ExecConfig::default(),
            control: None,
            transport: TransportSpec::Simulated,
            read_mode: ReadMode::default(),
        }
    }

    /// Overrides the epoch duration.
    pub fn with_epoch_duration(mut self, duration: Duration) -> ClusterConfig {
        self.epoch_duration = duration;
        self
    }

    /// Overrides the network behavior.
    pub fn with_net(mut self, net: NetConfig) -> ClusterConfig {
        self.net = net;
        self
    }

    /// Overrides the processor pool size.
    pub fn with_processors(mut self, processors: usize) -> ClusterConfig {
        self.processors_per_server = processors;
        self
    }

    /// Enables or disables the straggler (no-authorization) optimization.
    pub fn with_noauth(mut self, allow: bool) -> ClusterConfig {
        self.allow_noauth = allow;
        self
    }

    /// Sets per-server clock skew for synchronization experiments.
    pub fn with_clock_skew(mut self, skew_micros: Vec<i64>) -> ClusterConfig {
        self.clock_skew_micros = skew_micros;
        self
    }

    /// Starts every clock at the given microsecond offset (recovery).
    pub fn with_clock_offset(mut self, offset_micros: u64) -> ClusterConfig {
        self.clock_offset_micros = offset_micros;
        self
    }

    /// Enables the background history sweeper.
    pub fn with_gc(mut self, interval: Duration, keep_micros: u64) -> ClusterConfig {
        self.gc = Some(GcConfig {
            interval,
            keep_micros,
        });
        self
    }

    /// Enables the background watermark-driven compaction sweeper, keeping
    /// the newest `keep_versions` committed versions per chain.
    pub fn with_compaction(mut self, interval: Duration, keep_versions: usize) -> ClusterConfig {
        self.compaction = Some(CompactionConfig {
            interval,
            keep_versions,
        });
        self
    }

    /// Overrides how latest-version reads are served (see [`ReadMode`]).
    pub fn with_read_mode(mut self, mode: ReadMode) -> ClusterConfig {
        self.read_mode = mode;
        self
    }

    /// Enables in-memory write-ahead logging of the write-only phase.
    #[deprecated(
        since = "0.7.0",
        note = "use the spec-style `with_memory_wal()` (or `with_durable_log(spec)` for the \
                crash-durable flavor) instead of the boolean toggle"
    )]
    pub fn with_durability(mut self, durable: bool) -> ClusterConfig {
        self.durable = durable;
        self
    }

    /// Enables in-memory write-ahead logging of the write-only phase
    /// (§III-A): every install/rollback is appended to a per-server WAL that
    /// lives in process memory. For crash durability across process death
    /// use [`ClusterConfig::with_durable_log`] instead.
    pub fn with_memory_wal(mut self) -> ClusterConfig {
        self.durable = true;
        self
    }

    /// Enables crash-durable on-disk write-ahead logging (the logging half
    /// of the §III-A fault-tolerance strategy). Each server's log lives in
    /// `spec.dir/server-<i>`; restarting a cluster (or one server, via
    /// [`Cluster::restart_server`]) over the same directory recovers the
    /// partitions from checkpoint + WAL suffix.
    pub fn with_durable_log(mut self, spec: DurableLogSpec) -> ClusterConfig {
        self.durable_log = Some(spec);
        self
    }

    /// Mirrors every install to the next server in the ring before
    /// acknowledging it (§III-A replication, tolerating a single crash).
    pub fn with_ring_replication(mut self) -> ClusterConfig {
        self.replicated = true;
        self
    }

    /// Enables partial replication with the given standby budget: the
    /// hotness controller keeps log-shipped standbys for up to `budget`
    /// partitions (ranked by PushCache hit rate and install backlog), and
    /// [`Cluster::kill_server`] promotes a replicated partition's standby
    /// at the next epoch boundary instead of leaving the slot down.
    /// Partitions without a standby keep the restart-from-WAL path.
    ///
    /// Shipping reuses the write-ahead log's frames, so a cluster with
    /// partial replication and no WAL configured gets the in-memory WAL
    /// enabled automatically at start.
    pub fn with_partial_replication(self, budget: usize) -> ClusterConfig {
        self.with_partial_replication_spec(PartialReplicationSpec::new(budget))
    }

    /// Enables partial replication with full control over the spec
    /// (rebalance cadence, hysteresis margin, pinned partitions).
    pub fn with_partial_replication_spec(mut self, spec: PartialReplicationSpec) -> ClusterConfig {
        self.partial_replication = Some(spec);
        self
    }

    /// Overrides the per-attempt internal RPC timeout.
    pub fn with_rpc_timeout(mut self, timeout: Duration) -> ClusterConfig {
        self.rpc_timeout = timeout;
        self
    }

    /// Enables commit-history recording for the serializability checker.
    pub fn with_history(mut self) -> ClusterConfig {
        self.record_history = true;
        self
    }

    /// Enables destination-batched messaging with the given thresholds.
    pub fn with_batching(mut self, batch: BatchConfig) -> ClusterConfig {
        self.batch = Some(batch);
        self
    }

    /// Overrides the per-server message-executor pool sizes.
    pub fn with_exec(mut self, exec: ExecConfig) -> ClusterConfig {
        self.exec = exec;
        self
    }

    /// Enables the closed-loop control plane (adaptive epoch pacing and/or
    /// FE admission gating).
    ///
    /// # Examples
    ///
    /// ```
    /// use std::time::Duration;
    /// use aloha_control::ControlConfig;
    /// use aloha_core::ClusterConfig;
    ///
    /// let config = ClusterConfig::new(4)
    ///     .with_control(ControlConfig::adaptive(Duration::from_millis(25)));
    /// assert!(config.control.is_some());
    /// ```
    pub fn with_control(mut self, control: ControlConfig) -> ClusterConfig {
        self.control = Some(control);
        self
    }

    /// Runs the cluster on a caller-supplied [`Transport`] instead of the
    /// default simulated bus. Every server endpoint, the epoch manager's
    /// grant/revoke traffic and the optional batcher all ride the given
    /// transport; [`ClusterConfig::net`] is ignored. The cluster owns the
    /// transport's lifecycle from here on — [`Cluster::shutdown`] shuts it
    /// down.
    pub fn with_transport(mut self, transport: Arc<dyn Transport<ServerMsg>>) -> ClusterConfig {
        self.transport = TransportSpec::Custom(transport);
        self
    }
}

type DependencyRule = Arc<dyn Fn(&Key) -> Option<Key> + Send + Sync>;

/// Configures handlers, programs and dependency rules before starting a
/// [`Cluster`].
pub struct ClusterBuilder {
    config: ClusterConfig,
    handlers: HandlerRegistry,
    programs: ProgramRegistry,
    dependency_rules: Vec<DependencyRule>,
}

impl std::fmt::Debug for ClusterBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBuilder")
            .field("config", &self.config)
            .finish()
    }
}

impl ClusterBuilder {
    /// Registers a functor handler (available on every backend).
    pub fn register_handler(
        &mut self,
        id: HandlerId,
        handler: impl Handler + 'static,
    ) -> &mut Self {
        self.handlers.register(id, handler);
        self
    }

    /// Registers a transaction program (available on every front-end).
    pub fn register_program(
        &mut self,
        id: ProgramId,
        program: impl TxnProgram + 'static,
    ) -> &mut Self {
        self.programs.register(id, program);
        self
    }

    /// Registers a dependent-key rule (§IV-E) on every partition.
    pub fn add_dependency_rule(
        &mut self,
        rule: impl Fn(&Key) -> Option<Key> + Send + Sync + 'static,
    ) -> &mut Self {
        self.dependency_rules.push(Arc::new(rule));
        self
    }

    /// Starts the cluster: spawns servers, processors and the epoch manager.
    /// With a durable log configured over a non-empty directory, every
    /// partition is first recovered from its newest checkpoint plus the WAL
    /// suffix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for invalid configurations, [`Error::Io`]
    /// when the durable log cannot be opened or is damaged beyond a torn
    /// tail.
    pub fn start(mut self) -> Result<Cluster> {
        // Log shipping rides the WAL's frames: partial replication without
        // any WAL configured silently gets the in-memory flavor.
        if self.config.partial_replication.is_some()
            && !self.config.durable
            && self.config.durable_log.is_none()
        {
            self.config.durable = true;
        }
        let n = self.config.servers;
        if n == 0 {
            return Err(Error::Config("cluster needs at least one server".into()));
        }
        if n as u32 > (1 << aloha_common::ServerId::BITS) {
            return Err(Error::Config(format!(
                "at most 256 servers supported, got {n}"
            )));
        }
        if !self.config.clock_skew_micros.is_empty()
            && self.config.clock_skew_micros.len() != n as usize
        {
            return Err(Error::Config(
                "clock_skew_micros must have one entry per server".into(),
            ));
        }
        if self.config.processors_per_server == 0 {
            return Err(Error::Config(
                "need at least one processor per server".into(),
            ));
        }
        if let Some(control) = &self.config.control {
            control.validate()?;
        }

        let base = ClockBase::new();
        let net: Arc<dyn Transport<ServerMsg>> = match self.config.transport.clone() {
            TransportSpec::Simulated => Arc::new(Bus::new(self.config.net.clone())),
            TransportSpec::Custom(transport) => transport,
        };
        // One batcher for the whole cluster: traffic from different servers
        // toward the same destination coalesces into shared envelopes, and
        // the metrics land on the single `net` node where they belong.
        let batcher = self.config.batch.clone().map(|cfg| {
            Batcher::new(
                Arc::clone(&net),
                cfg,
                ServerMsg::Batch,
                ServerMsg::approx_bytes,
            )
        });
        let em_endpoint = net.register(Addr::EpochManager);
        let history = self.config.record_history.then(|| Arc::new(History::new()));
        // Everything a single-server restart needs to rebuild its victim
        // lives here, outliving the server instances themselves.
        let rebuild = RebuildCtx {
            config: self.config,
            base,
            handlers: Arc::new(self.handlers),
            programs: Arc::new(self.programs),
            dependency_rules: self.dependency_rules,
        };

        let mut servers = Vec::with_capacity(n as usize);
        let mut server_threads = Vec::with_capacity(n as usize);
        for i in 0..n {
            let (server, threads, _report) =
                build_server(&rebuild, ServerId(i), &net, &batcher, &history)?;
            servers.push(server);
            server_threads.push(threads);
        }
        let servers = Arc::new(ServerSlots::new(servers));

        let em_clock: Arc<dyn Clock> = if rebuild.config.clock_offset_micros != 0 {
            Arc::new(SkewedClock::new(
                SystemClock::new(rebuild.base.clone()),
                rebuild.config.clock_offset_micros as i64,
            ))
        } else {
            Arc::new(SystemClock::new(rebuild.base.clone()))
        };
        // With a control plane configured, the pacer's initial duration is
        // authoritative (`ControlConfig::fixed(d)` ≡ `with_epoch_duration(d)`).
        let epoch_duration = rebuild
            .config
            .control
            .as_ref()
            .map(|c| c.pacing.initial)
            .unwrap_or(rebuild.config.epoch_duration);
        let em_config = EpochConfig {
            epoch_duration,
            servers: (0..n).map(ServerId).collect(),
            poll_interval: Duration::from_micros(200),
            // Retransmit unacked revokes fast enough to ride out dropped
            // Revoke/ack messages without stretching epochs noticeably.
            revoke_resend_interval: (epoch_duration / 4).max(Duration::from_millis(2)),
        };
        let transport = NetEpochTransport {
            net: Arc::clone(&net),
            endpoint: em_endpoint,
        };
        let mut pacer_gauges = None;
        let em = match &rebuild.config.control {
            Some(control) => {
                let gauges = Arc::new(PacerGauges::default());
                // The pacer samples live cluster pressure right before each
                // authorization: executor lane depths, install/compute
                // backlogs, and whatever is coalescing in the batcher. In
                // `Fixed` mode the closure is never called. Sampling reads
                // the slots, so after a restart the fresh server's executor
                // is what gets measured — a recovering backend's replay
                // backlog shows up as pressure the pacer absorbs like any
                // other spike.
                let sample_servers = Arc::clone(&servers);
                let sample_batcher = batcher.clone();
                let source = move || {
                    let mut exec_queue = 0;
                    let mut backlog = 0;
                    for server in sample_servers.all() {
                        exec_queue += server.exec().queued_now();
                        backlog += server.backlog_len();
                    }
                    PacerSample {
                        exec_queue,
                        backlog,
                        batch_occupancy: sample_batcher
                            .as_ref()
                            .map(|b| b.queued_now())
                            .unwrap_or(0),
                    }
                };
                let pacer =
                    AdaptivePacer::new(control.pacing.clone(), source, Arc::clone(&gauges))?;
                pacer_gauges = Some(gauges);
                EpochManager::spawn_with_pacer(em_config, em_clock, transport, Box::new(pacer))
            }
            None => EpochManager::spawn(em_config, em_clock, transport),
        };
        let gates = rebuild
            .config
            .control
            .as_ref()
            .and_then(|c| c.gate.as_ref())
            .map(|gate_cfg| {
                let gates = (0..n)
                    .map(|_| AdmissionGate::new(gate_cfg.clone()).map(Arc::new))
                    .collect::<Result<Vec<_>>>()?;
                Ok::<_, Error>(Arc::new(gates))
            })
            .transpose()?;

        let aux_stop = Arc::new(AtomicBool::new(false));
        let mut aux_threads = Vec::new();
        if let Some(gc) = rebuild.config.gc {
            let sweep_servers = Arc::clone(&servers);
            let stop = Arc::clone(&aux_stop);
            aux_threads.push(
                std::thread::Builder::new()
                    .name("gc-sweeper".into())
                    .spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            std::thread::sleep(gc.interval);
                            for server in sweep_servers.all() {
                                let settled = server.epoch().visible_bound();
                                let bound = Timestamp::floor_of_micros(
                                    settled.micros().saturating_sub(gc.keep_micros),
                                );
                                server.partition().store().truncate_below(bound);
                            }
                        }
                    })
                    .expect("spawn gc sweeper"),
            );
        }
        if let Some(comp) = rebuild.config.compaction {
            let sweep_servers = Arc::clone(&servers);
            let stop = Arc::clone(&aux_stop);
            aux_threads.push(
                std::thread::Builder::new()
                    .name("compaction-sweeper".into())
                    .spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            std::thread::sleep(comp.interval);
                            for server in sweep_servers.all() {
                                if server.is_shutdown() {
                                    continue;
                                }
                                // The cluster-wide compute frontier caps
                                // folding: every functor below it is
                                // computed everywhere, so no read — local
                                // or remote — still floors beneath what
                                // the fold keeps. The visible bound would
                                // be unsound here: a settled-but-uncomputed
                                // functor reads at its own (lower) version.
                                // Snapshot reads being served right now pin
                                // the horizon further: folding at or above
                                // an in-flight read's bound could destroy
                                // the floor it is about to walk onto.
                                let mut horizon = server.epoch().frontier();
                                if let Some(floor) = server.min_inflight_read() {
                                    horizon = horizon.min(floor);
                                }
                                server
                                    .partition()
                                    .store()
                                    .compact(horizon, comp.keep_versions);
                            }
                        }
                    })
                    .expect("spawn compaction sweeper"),
            );
        }
        if let Some(interval) = rebuild
            .config
            .durable_log
            .as_ref()
            .and_then(|spec| spec.checkpoint_interval)
        {
            let ckpt_servers = Arc::clone(&servers);
            let stop = Arc::clone(&aux_stop);
            aux_threads.push(
                std::thread::Builder::new()
                    .name("checkpointer".into())
                    .spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            std::thread::sleep(interval);
                            for server in ckpt_servers.all() {
                                if server.is_shutdown() {
                                    continue;
                                }
                                checkpoint_server_to_wal(&server);
                            }
                        }
                    })
                    .expect("spawn checkpointer"),
            );
        }

        let availability = Arc::new(AvailabilityStats::new());
        let replicas = match rebuild.config.partial_replication.clone() {
            Some(spec) => {
                // Standby partitions carry the same handlers and dependency
                // rules as the primaries they mirror.
                let factory_handlers = Arc::clone(&rebuild.handlers);
                let factory_rules = rebuild.dependency_rules.clone();
                let factory = Box::new(move |i: u16| {
                    let partition = Arc::new(Partition::new(
                        PartitionId(i),
                        n,
                        Arc::clone(&factory_handlers),
                    ));
                    for rule in &factory_rules {
                        let rule = Arc::clone(rule);
                        partition.add_dependency_rule(move |k| rule(k));
                    }
                    partition
                });
                let rs = Arc::new(ReplicaSet::new(
                    Arc::clone(&net),
                    spec.clone(),
                    factory,
                    epoch_duration,
                ));
                // Initial attachments: pinned partitions, plus everything
                // when the budget covers the whole cluster (replicate-all).
                let mut initial: Vec<u16> = spec.pinned.clone();
                if spec.budget >= n as usize {
                    initial = (0..n).collect();
                }
                initial.sort_unstable();
                initial.dedup();
                for i in initial {
                    if (i as usize) < servers.len() {
                        rs.attach(&servers.get(i as usize))?;
                    }
                }
                // The hotness controller: every rebalance interval, rank the
                // live partitions by PushCache hit rate and install backlog
                // and move free-budget standbys toward the hottest ones.
                // Pinned partitions sit outside the ranking entirely.
                let ctl_rs = Arc::clone(&rs);
                let ctl_servers = Arc::clone(&servers);
                let stop = Arc::clone(&aux_stop);
                let pinned: std::collections::BTreeSet<u16> = spec.pinned.iter().copied().collect();
                aux_threads.push(
                    std::thread::Builder::new()
                        .name("replica-controller".into())
                        .spawn(move || {
                            while !stop.load(Ordering::SeqCst) {
                                std::thread::sleep(spec.rebalance_interval);
                                if stop.load(Ordering::SeqCst) {
                                    break;
                                }
                                // A promotion consumes its standby; pinned
                                // partitions get a fresh one attached on the
                                // next tick (the promoted incumbent ships
                                // like any other primary).
                                for id in &pinned {
                                    let server = ctl_servers.get(*id as usize);
                                    if !server.is_shutdown() && !ctl_rs.attached_ids().contains(id)
                                    {
                                        let _ = ctl_rs.attach(&server);
                                    }
                                }
                                let policy = ctl_rs.policy();
                                let mut signals = Vec::new();
                                for server in ctl_servers.all() {
                                    if server.is_shutdown() || pinned.contains(&server.id().0) {
                                        continue;
                                    }
                                    let cache = server.partition().push_cache();
                                    signals.push(PartitionSignal {
                                        id: server.id().0,
                                        cache_hits: cache.hits(),
                                        cache_misses: cache.misses(),
                                        backlog: server.backlog_len(),
                                    });
                                }
                                let incumbents: std::collections::BTreeSet<u16> =
                                    ctl_rs.attached_ids().difference(&pinned).copied().collect();
                                let desired = policy.desired(&incumbents, &signals);
                                for id in incumbents.difference(&desired) {
                                    let server = ctl_servers.get(*id as usize);
                                    if !server.is_shutdown() {
                                        ctl_rs.detach(&server);
                                    }
                                }
                                for id in desired.difference(&incumbents) {
                                    let server = ctl_servers.get(*id as usize);
                                    if !server.is_shutdown() {
                                        let _ = ctl_rs.attach(&server);
                                    }
                                }
                            }
                        })
                        .expect("spawn replica controller"),
                );
                Some(rs)
            }
            None => None,
        };

        Ok(Cluster {
            servers,
            em: Some(em),
            net,
            batcher,
            server_threads: Mutex::new(server_threads),
            aux_threads,
            total: n,
            aux_stop,
            history,
            gates,
            pacer_gauges,
            replicas,
            availability,
            rebuild,
        })
    }
}

/// EM transport over the cluster's message transport (also used by the
/// multi-process [`crate::node::Node`] when it co-hosts the epoch manager).
pub(crate) struct NetEpochTransport {
    pub(crate) net: Arc<dyn Transport<ServerMsg>>,
    pub(crate) endpoint: Endpoint<ServerMsg>,
}

impl EpochTransport for NetEpochTransport {
    fn send_grant(&self, to: ServerId, grant: Grant) {
        let _ = self.net.send(Addr::Server(to), ServerMsg::Grant(grant));
    }

    fn send_revoke(&self, to: ServerId, epoch: EpochId) {
        let _ = self.net.send(Addr::Server(to), ServerMsg::Revoke(epoch));
    }

    fn recv_ack(&self, timeout: Duration) -> Option<RevokedAck> {
        loop {
            match self.endpoint.recv_timeout(timeout) {
                Ok(ServerMsg::RevokedAck(ack)) => return Some(ack),
                Ok(_) => continue, // stray message; EM only consumes acks
                Err(_) => return None,
            }
        }
    }
}

/// The live server set: one swappable slot per [`ServerId`], shared by the
/// [`Cluster`], every [`Database`] handle, the pacer's pressure sampler and
/// the background sweepers. A restart replaces one slot in place, so no
/// component can keep serving through a stale clone of the old server list.
pub(crate) struct ServerSlots {
    slots: Vec<RwLock<Arc<Server>>>,
}

impl ServerSlots {
    fn new(servers: Vec<Arc<Server>>) -> ServerSlots {
        ServerSlots {
            slots: servers.into_iter().map(RwLock::new).collect(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// The current occupant of slot `i`.
    pub(crate) fn get(&self, i: usize) -> Arc<Server> {
        Arc::clone(&self.slots[i].read())
    }

    fn set(&self, i: usize, server: Arc<Server>) {
        *self.slots[i].write() = server;
    }

    /// A point-in-time snapshot of every slot.
    pub(crate) fn all(&self) -> Vec<Arc<Server>> {
        self.slots.iter().map(|s| Arc::clone(&s.read())).collect()
    }
}

/// Everything needed to rebuild one server after a kill: the builder inputs
/// that outlive any single [`Server`] instance.
struct RebuildCtx {
    config: ClusterConfig,
    base: ClockBase,
    handlers: Arc<HandlerRegistry>,
    programs: Arc<ProgramRegistry>,
    dependency_rules: Vec<DependencyRule>,
}

impl RebuildCtx {
    fn clock_for(&self, i: u16) -> Arc<dyn Clock> {
        let skew = self
            .config
            .clock_skew_micros
            .get(i as usize)
            .copied()
            .unwrap_or(0)
            + self.config.clock_offset_micros as i64;
        if skew != 0 {
            Arc::new(SkewedClock::new(SystemClock::new(self.base.clone()), skew))
        } else {
            Arc::new(SystemClock::new(self.base.clone()))
        }
    }

    fn partition_for(&self, i: u16) -> Arc<Partition> {
        let partition = Arc::new(Partition::new(
            PartitionId(i),
            self.config.servers,
            Arc::clone(&self.handlers),
        ));
        for rule in &self.dependency_rules {
            let rule = Arc::clone(rule);
            partition.add_dependency_rule(move |k| rule(k));
        }
        partition
    }

    /// Opens server `i`'s WAL sink per the configuration; the disk flavor
    /// also returns whatever a previous incarnation left behind.
    fn wal_for(&self, i: u16) -> Result<(Option<WalSink>, Option<RecoveredLog>)> {
        if let Some(spec) = &self.config.durable_log {
            let cfg = DurableLogConfig::new(spec.dir.join(format!("server-{i}")))
                .with_fsync(spec.fsync)
                .with_segment_bytes(spec.segment_bytes)
                .with_flush_appends(spec.flush_appends);
            let (log, recovered) = DurableLog::open(cfg)?;
            Ok((Some(WalSink::Disk(Arc::new(log))), Some(recovered)))
        } else if self.config.durable {
            Ok((Some(WalSink::Memory(Mutex::new(MemWal::default()))), None))
        } else {
            Ok((None, None))
        }
    }
}

/// What one server's recovery found and did (see
/// [`Cluster::restart_server`]).
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Timestamp of the checkpoint the store was restored from
    /// ([`Timestamp::ZERO`] when recovery started from an empty store).
    pub checkpoint: Timestamp,
    /// WAL records replayed on top of the checkpoint.
    pub replayed: usize,
    /// Whether the log ended in a torn tail — the expected artifact of a
    /// crash mid-append. The valid prefix was applied; nothing past the
    /// tear was acknowledged to any client, or the group commit preceding
    /// the ack would have completed the frame.
    pub torn_tail: bool,
    /// Microseconds spent restoring the checkpoint and replaying the
    /// suffix.
    pub replay_micros: u64,
}

impl RecoveryReport {
    fn empty() -> RecoveryReport {
        RecoveryReport {
            checkpoint: Timestamp::ZERO,
            replayed: 0,
            torn_tail: false,
            replay_micros: 0,
        }
    }
}

/// Applies a recovered durable log onto a fresh partition: restore the
/// newest checkpoint, then replay the WAL suffix through the storage codec
/// (records at or below the checkpoint are skipped as idempotent no-ops).
///
/// A torn tail is tolerated — the valid prefix is applied. Any other damage
/// (checksum failure, truncated interior segment) refuses recovery with a
/// descriptive error instead of serving from a silently incomplete store.
fn recover_partition(partition: &Partition, recovered: &RecoveredLog) -> Result<RecoveryReport> {
    if let Some(damage @ LogDamage::Corrupt { .. }) = &recovered.damage {
        return Err(Error::Io(format!("wal recovery refused: {damage}")));
    }
    let started = Instant::now();
    let mut checkpoint = Timestamp::ZERO;
    if let Some((_, blob)) = &recovered.checkpoint {
        checkpoint = aloha_storage::restore_checkpoint(partition, blob)?;
    }
    let replayed = aloha_storage::replay_records(partition, &recovered.records, checkpoint)?;
    Ok(RecoveryReport {
        checkpoint,
        replayed,
        torn_tail: recovered.damage.is_some(),
        replay_micros: started.elapsed().as_micros() as u64,
    })
}

/// Builds one server — fresh partition, recovered WAL state, fresh epoch
/// client and executor — registers it on the transport and spawns its
/// dispatcher and processors. Shared by cluster start and single-server
/// restart.
fn build_server(
    ctx: &RebuildCtx,
    id: ServerId,
    net: &Arc<dyn Transport<ServerMsg>>,
    batcher: &Option<Batcher<ServerMsg>>,
    history: &Option<Arc<History>>,
) -> Result<(
    Arc<Server>,
    Vec<std::thread::JoinHandle<()>>,
    RecoveryReport,
)> {
    let partition = ctx.partition_for(id.0);
    let (wal, recovered) = ctx.wal_for(id.0)?;
    let mut report = RecoveryReport::empty();
    if let Some(recovered) = &recovered {
        report = recover_partition(&partition, recovered)?;
        if let Some(WalSink::Disk(log)) = &wal {
            log.stats()
                .recovery_replay_micros
                .store(report.replay_micros, Ordering::Relaxed);
        }
    }
    let epoch = Arc::new(EpochClient::new(
        id,
        ctx.clock_for(id.0),
        ctx.config.allow_noauth,
    ));
    let exec = Executor::new(format!("exec-s{}", id.0), ctx.config.exec.clone());
    let (server, queue_rx) = Server::new(
        id,
        ctx.config.servers,
        partition,
        epoch,
        Arc::clone(net),
        batcher.clone(),
        exec,
        Arc::clone(&ctx.programs),
        wal,
        ctx.config.replicated,
        ctx.config.rpc_timeout,
        history.clone(),
    );
    let endpoint = net.register(Addr::Server(id));
    let threads = spawn_server_threads(
        &server,
        endpoint,
        queue_rx,
        ctx.config.processors_per_server,
    );
    Ok((server, threads, report))
}

/// Builds the promoted incumbent of a failed-over partition: like
/// [`build_server`], but *over the caught-up standby partition* instead of
/// replaying the durable log into a fresh one — that is the entire point of
/// the standby. A fresh WAL sink is still opened so the promoted server
/// keeps logging (and shipping, should a new standby attach later); the
/// recovered state a disk log reports is deliberately ignored, because the
/// standby already covers everything the victim ever logged.
fn build_promoted_server(
    ctx: &RebuildCtx,
    id: ServerId,
    net: &Arc<dyn Transport<ServerMsg>>,
    batcher: &Option<Batcher<ServerMsg>>,
    history: &Option<Arc<History>>,
    partition: Arc<Partition>,
) -> Result<(Arc<Server>, Vec<std::thread::JoinHandle<()>>)> {
    let (wal, _recovered) = ctx.wal_for(id.0)?;
    let epoch = Arc::new(EpochClient::new(
        id,
        ctx.clock_for(id.0),
        ctx.config.allow_noauth,
    ));
    let exec = Executor::new(format!("exec-s{}", id.0), ctx.config.exec.clone());
    let (server, queue_rx) = Server::new(
        id,
        ctx.config.servers,
        partition,
        epoch,
        Arc::clone(net),
        batcher.clone(),
        exec,
        Arc::clone(&ctx.programs),
        wal,
        ctx.config.replicated,
        ctx.config.rpc_timeout,
        history.clone(),
    );
    let endpoint = net.register(Addr::Server(id));
    let threads = spawn_server_threads(
        &server,
        endpoint,
        queue_rx,
        ctx.config.processors_per_server,
    );
    Ok((server, threads))
}

/// Spawns one server's dispatcher and processor threads.
pub(crate) fn spawn_server_threads(
    server: &Arc<Server>,
    endpoint: Endpoint<ServerMsg>,
    queue_rx: Receiver<QueueEntry>,
    processors: usize,
) -> Vec<std::thread::JoinHandle<()>> {
    let i = server.id().0;
    let mut threads = Vec::with_capacity(processors + 1);
    let dispatcher_server = Arc::clone(server);
    threads.push(
        std::thread::Builder::new()
            .name(format!("dispatch-s{i}"))
            .spawn(move || run_dispatcher(dispatcher_server, endpoint))
            .expect("spawn dispatcher"),
    );
    for p in 0..processors {
        let processor_server = Arc::clone(server);
        let rx = queue_rx.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("proc-s{i}-{p}"))
                .spawn(move || run_processor(processor_server, rx))
                .expect("spawn processor"),
        );
    }
    threads
}

/// Checkpoints one durable server's partition at its settled bound into its
/// log directory (truncating dead segments); a no-op for servers without a
/// disk log or with nothing new to snapshot.
fn checkpoint_server_to_wal(server: &Arc<Server>) {
    let Some(log) = server.durable_log().cloned() else {
        return;
    };
    let at = server.epoch().visible_bound();
    if at.raw() <= log.stats().last_checkpoint_version.load(Ordering::Relaxed) {
        return;
    }
    if let Ok(blob) = server.write_checkpoint(at) {
        let _ = log.install_checkpoint(at.raw(), &blob);
    }
}

/// A running ALOHA-DB cluster.
///
/// Dropping the cluster shuts it down; prefer calling [`Cluster::shutdown`]
/// explicitly.
pub struct Cluster {
    servers: Arc<ServerSlots>,
    em: Option<EpochManager>,
    net: Arc<dyn Transport<ServerMsg>>,
    batcher: Option<Batcher<ServerMsg>>,
    /// Per-server thread groups (dispatcher + processors), index-aligned
    /// with the slots, so a kill joins exactly its victim's threads.
    server_threads: Mutex<Vec<Vec<std::thread::JoinHandle<()>>>>,
    /// Cluster-scoped background threads (GC sweeper, checkpointer).
    aux_threads: Vec<std::thread::JoinHandle<()>>,
    total: u16,
    aux_stop: Arc<AtomicBool>,
    history: Option<Arc<History>>,
    /// Per-FE admission gates (index-aligned with `servers`); `None` when
    /// the control plane is off or gating is disabled.
    gates: Option<Arc<Vec<Arc<AdmissionGate>>>>,
    /// Live pacer state exported on the `control` snapshot node (`Some`
    /// exactly when a control plane is configured).
    pacer_gauges: Option<Arc<PacerGauges>>,
    /// The standby set and its controller state (`Some` exactly when
    /// [`ClusterConfig::with_partial_replication`] is configured).
    replicas: Option<Arc<ReplicaSet>>,
    /// Downtime/failover/restart accounting across kills (always present;
    /// exported as the `availability` stats subtree).
    availability: Arc<AvailabilityStats>,
    /// Builder inputs retained for single-server restarts.
    rebuild: RebuildCtx,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("servers", &self.total)
            .finish()
    }
}

impl Cluster {
    /// Starts building a cluster with the given configuration.
    pub fn builder(config: ClusterConfig) -> ClusterBuilder {
        ClusterBuilder {
            config,
            handlers: HandlerRegistry::new(),
            programs: ProgramRegistry::new(),
            dependency_rules: Vec::new(),
        }
    }

    /// The current servers, indexed by [`ServerId`] (a point-in-time
    /// snapshot; a concurrent restart may swap a slot afterwards).
    pub fn servers(&self) -> Vec<Arc<Server>> {
        self.servers.all()
    }

    /// The current occupant of one server slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn server(&self, id: ServerId) -> Arc<Server> {
        self.servers.get(id.index())
    }

    /// Number of servers/partitions.
    pub fn size(&self) -> u16 {
        self.total
    }

    /// The cluster-wide commit history (present when the configuration
    /// enabled [`ClusterConfig::with_history`]).
    pub fn history(&self) -> Option<&Arc<History>> {
        self.history.as_ref()
    }

    /// The active fault plan, if the transport injects faults (only the
    /// simulated bus does).
    pub fn fault_plan(&self) -> Option<&aloha_net::FaultPlan> {
        self.net.fault_plan()
    }

    /// A cheap client handle.
    pub fn database(&self) -> Database {
        Database {
            servers: Arc::clone(&self.servers),
            next_fe: Arc::new(AtomicUsize::new(0)),
            session: Arc::new(AtomicU64::new(0)),
            session_writes: Arc::new(AtomicU64::new(0)),
            read_mode: self.rebuild.config.read_mode,
            gates: self.gates.clone(),
        }
    }

    /// Loads an initial row directly into the owning partition (version 1,
    /// below every transaction timestamp). Used by workload loaders before
    /// opening the database for transactions.
    pub fn load(&self, key: Key, value: Value) {
        self.load_functor(key, Functor::Value(value));
    }

    /// Loads an initial functor directly into the owning partition.
    pub fn load_functor(&self, key: Key, functor: Functor) {
        let owner = key.partition(self.total);
        self.servers
            .get(owner.index())
            .partition()
            .load(&key, functor);
    }

    /// One composable snapshot of the whole cluster: summed transaction
    /// counters and cluster-wide per-stage percentiles at the root (raw
    /// histogram buckets are merged across servers before quantiles are
    /// taken), with per-server, epoch-manager and network subtrees as
    /// children.
    ///
    /// The root carries every lifecycle stage plus an `e2e` entry for
    /// end-to-end latency. Export with [`StatsSnapshot::to_json`] or the
    /// [`std::fmt::Display`] rendering.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut root = StatsSnapshot::new("cluster");
        let mut committed = 0;
        let mut aborted = 0;
        let mut installs = 0;
        let mut compute_errors = 0;
        let mut merged: [HistogramSnapshot; STAGE_COUNT + 1] = Default::default();
        for server in self.servers.all() {
            let stats = server.stats();
            committed += stats.committed();
            aborted += stats.aborted();
            installs += stats.installs();
            compute_errors += stats.compute_errors();
            for (acc, raw) in merged.iter_mut().zip(stats.raw_histograms()) {
                acc.merge(&raw);
            }
            root.push_child(server.snapshot());
        }
        root.set_counter("committed", committed);
        root.set_counter("aborted", aborted);
        root.set_counter("installs", installs);
        root.set_counter("compute_errors", compute_errors);
        root.set_gauge(
            "process_rss_bytes",
            aloha_common::stats::process_rss_bytes(),
        );
        for (stage, snap) in Stage::ALL.iter().zip(&merged[..STAGE_COUNT]) {
            root.set_stage(stage.name(), StageStats::from(snap));
        }
        root.set_stage("e2e", StageStats::from(&merged[STAGE_COUNT]));
        if let Some(em) = &self.em {
            root.push_child(em.stats().snapshot());
        }
        let mut net = self.net.snapshot();
        if let Some(batcher) = &self.batcher {
            batcher.stats().export(&mut net);
        }
        root.push_child(net);
        if let Some(control) = self.control_snapshot() {
            root.push_child(control);
        }
        root.push_child(self.hotness_snapshot());
        root.push_child(self.availability.snapshot());
        if let Some(rs) = &self.replicas {
            let mut replication = rs.snapshot();
            for id in rs.attached_ids() {
                let server = self.servers.get(id as usize);
                replication.push_child(server.ship_feed().snapshot(format!("feed_s{id}")));
            }
            root.push_child(replication);
        }
        root
    }

    /// The `hotness` node of the stats tree: per-partition PushCache hit
    /// rate, install backlog and pressure rank — the signals the partial-
    /// replication controller ranks with, exported even when no controller
    /// runs.
    fn hotness_snapshot(&self) -> StatsSnapshot {
        let mut node = StatsSnapshot::new("hotness");
        let mut signals = Vec::new();
        for server in self.servers.all() {
            if server.is_shutdown() {
                continue;
            }
            let cache = server.partition().push_cache();
            signals.push(PartitionSignal {
                id: server.id().0,
                cache_hits: cache.hits(),
                cache_misses: cache.misses(),
                backlog: server.backlog_len(),
            });
        }
        let replicated = self
            .replicas
            .as_ref()
            .map(|rs| rs.attached_ids())
            .unwrap_or_default();
        for score in HotnessPolicy::new(0).rank(&signals) {
            let mut p = StatsSnapshot::new(format!("p{}", score.id));
            p.set_gauge("hit_rate_pct", score.hit_rate_pct);
            p.set_gauge("backlog", score.backlog);
            p.set_gauge("score", score.score);
            p.set_gauge("rank", score.rank as u64);
            p.set_gauge("replicated", u64::from(replicated.contains(&score.id)));
            node.push_child(p);
        }
        node
    }

    /// The `control` node of the stats tree: pacer gauges at the top plus
    /// summed gate activity, with one child per front-end gate. `None` when
    /// no control plane is configured.
    fn control_snapshot(&self) -> Option<StatsSnapshot> {
        if self.pacer_gauges.is_none() && self.gates.is_none() {
            return None;
        }
        let mut node = StatsSnapshot::new("control");
        if let Some(g) = &self.pacer_gauges {
            node.set_gauge("epoch_duration_micros", g.epoch_duration_micros.get());
            node.set_gauge("pressure_millis", g.pressure_millis.get());
        }
        if let Some(gates) = &self.gates {
            let (mut admitted, mut shed, mut queued, mut in_use) = (0, 0, 0, 0);
            for (i, gate) in gates.iter().enumerate() {
                let stats = gate.stats();
                admitted += stats.admitted.get();
                shed += stats.shed.get();
                queued += stats.queued.get();
                in_use += stats.tokens_in_use.get();
                node.push_child(gate.snapshot(format!("gate_s{i}")));
            }
            node.set_counter("admitted", admitted);
            node.set_counter("shed", shed);
            node.set_counter("queued", queued);
            node.set_gauge("tokens_in_use", in_use);
        }
        Some(node)
    }

    /// The per-FE admission gates, when the control plane enables gating.
    pub fn gates(&self) -> Option<&[Arc<AdmissionGate>]> {
        self.gates.as_deref().map(Vec::as_slice)
    }

    /// Attaches a log-shipping standby to one partition online (normally the
    /// hotness controller's job; exposed for tests and operators). Returns
    /// `false` when one was already attached.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] without partial replication configured, or
    /// when the server is down; propagates checkpoint failures.
    pub fn attach_standby(&self, id: ServerId) -> Result<bool> {
        let i = id.index();
        if i >= self.servers.len() {
            return Err(Error::NoSuchPartition(PartitionId(id.0)));
        }
        let rs = self
            .replicas
            .as_ref()
            .ok_or_else(|| Error::Config("partial replication is not configured".into()))?;
        rs.attach(&self.servers.get(i))
    }

    /// Detaches one partition's standby, discarding its state. Returns
    /// `false` when none was attached (or partial replication is off).
    pub fn detach_standby(&self, id: ServerId) -> bool {
        let i = id.index();
        if i >= self.servers.len() {
            return false;
        }
        self.replicas
            .as_ref()
            .is_some_and(|rs| rs.detach(&self.servers.get(i)))
    }

    /// Partitions that currently hold a standby.
    pub fn replicated_partitions(&self) -> Vec<ServerId> {
        self.replicas
            .as_ref()
            .map(|rs| rs.attached_ids().into_iter().map(ServerId).collect())
            .unwrap_or_default()
    }

    /// One partition's replicated watermark: the standby covers every record
    /// its primary logged at or below this timestamp. `None` without an
    /// attached standby.
    pub fn standby_watermark(&self, id: ServerId) -> Option<Timestamp> {
        self.replicas.as_ref()?.watermark(id.0)
    }

    /// The downtime/failover/restart accounting across
    /// [`Cluster::kill_server`] / [`Cluster::restart_server`] cycles (also
    /// exported as the `availability` subtree of [`Cluster::snapshot`]).
    pub fn availability(&self) -> &AvailabilityStats {
        &self.availability
    }

    /// Resets every server's statistics (benchmark warm-up boundary).
    pub fn reset_stats(&self) {
        for server in self.servers.all() {
            server.stats().reset();
            server.exec().stats().reset();
        }
        if let Some(batcher) = &self.batcher {
            batcher.stats().reset();
        }
        if let Some(gates) = &self.gates {
            for gate in gates.iter() {
                gate.reset_stats();
            }
        }
    }

    /// Takes a consistent checkpoint of every partition at the cluster-wide
    /// settled bound (the minimum visibility bound across servers), returning
    /// one blob per partition plus the snapshot timestamp. Implements the
    /// checkpointing half of the §III-A fault-tolerance strategy.
    ///
    /// # Errors
    ///
    /// Propagates transport failures from on-demand computing.
    pub fn checkpoint(&self) -> Result<(Timestamp, Vec<Vec<u8>>)> {
        let servers = self.servers.all();
        let at = servers
            .iter()
            .map(|s| s.epoch().visible_bound())
            .min()
            .unwrap_or(Timestamp::ZERO);
        let blobs = servers
            .iter()
            .map(|s| s.write_checkpoint(at))
            .collect::<Result<Vec<_>>>()?;
        Ok((at, blobs))
    }

    /// Checkpoints every durable server's partition into its own log
    /// directory at the cluster-wide settled bound, truncating WAL segments
    /// the checkpoints made dead. Returns the checkpoint timestamp.
    ///
    /// The background checkpointer (see
    /// [`DurableLogSpec::with_checkpoint_interval`]) does the same
    /// per-server on a timer; this entry point gives tests and operators a
    /// deterministic cut.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when no durable log is configured;
    /// propagates snapshot and filesystem failures.
    pub fn checkpoint_to_wal(&self) -> Result<Timestamp> {
        if self.rebuild.config.durable_log.is_none() {
            return Err(Error::Config("no durable log configured".into()));
        }
        let servers = self.servers.all();
        let at = servers
            .iter()
            .filter(|s| !s.is_shutdown())
            .map(|s| s.epoch().visible_bound())
            .min()
            .unwrap_or(Timestamp::ZERO);
        for server in &servers {
            if server.is_shutdown() {
                continue;
            }
            if let Some(log) = server.durable_log().cloned() {
                let blob = server.write_checkpoint(at)?;
                log.install_checkpoint(at.raw(), &blob)?;
            }
        }
        Ok(at)
    }

    /// Kills one backend in place: marks it shut down, stops its dispatcher
    /// and processors, drains its executor and closes its durable log. The
    /// rest of the cluster keeps serving — in-flight cross-partition RPCs
    /// toward the victim fail over to retransmission.
    ///
    /// With partial replication configured and a standby attached to the
    /// victim's partition, the kill flows straight into **failover**: the
    /// standby is caught up (flush barrier + the victim's undrained feed
    /// buffer), a promoted server is built over its partition and swapped
    /// into the slot, and the fresh epoch client answers the epoch
    /// manager's retransmitted revoke — the partition re-joins at the next
    /// epoch boundary without any WAL replay. Partitions without a standby
    /// stay down until [`Cluster::restart_server`] replays the durable log.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the server is already down,
    /// [`Error::NoSuchPartition`] for an out-of-range id; promotion
    /// propagates WAL-reopen failures.
    pub fn kill_server(&self, id: ServerId) -> Result<()> {
        let i = id.index();
        if i >= self.servers.len() {
            return Err(Error::NoSuchPartition(PartitionId(id.0)));
        }
        let server = self.servers.get(i);
        if server.is_shutdown() {
            return Err(Error::Config(format!("server {} is already down", id.0)));
        }
        self.availability.note_down(id.0);
        server.mark_shutdown();
        // The shutdown message must go out while the endpoint is still
        // registered; deregistering first would error the reliable send and
        // leave the dispatcher blocked on its queue forever.
        let _ = self
            .net
            .send_reliable(Addr::Server(id), ServerMsg::Shutdown);
        self.net.deregister(Addr::Server(id));
        let handles: Vec<_> = self.server_threads.lock()[i].drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
        // Dispatcher and processors are gone; drain the executor's accepted
        // work (cross-partition recursion can still be answered by the other
        // servers, which are alive) and seal the log. `close` flushes and
        // syncs, so everything this server acknowledged is on disk.
        server.exec().shutdown();
        if let Some(log) = server.durable_log() {
            log.close();
        }
        // Failover: with every victim thread joined nothing pushes into the
        // ship feed anymore, so the standby can be caught up exactly.
        if let Some(standby) = self
            .replicas
            .as_ref()
            .and_then(|rs| rs.promote_take(&server))
        {
            let watermark = standby.watermark();
            let (promoted, threads) = build_promoted_server(
                &self.rebuild,
                id,
                &self.net,
                &self.batcher,
                &self.history,
                Arc::clone(standby.partition()),
            )?;
            // Shipped records re-enter the store uncomputed; `Server::new`
            // re-buffered them for the processors, and covering them with
            // the compute frontier is sound for the same reason it is after
            // `replay_wals`: a snapshot read landing on a pending record
            // falls back to the computing read path.
            promoted.epoch().absorb_frontier(watermark);
            self.server_threads.lock()[i] = threads;
            self.servers.set(i, promoted);
            self.availability.note_failover(id.0);
        }
        Ok(())
    }

    /// Restarts a killed backend from its durable log: rebuilds the
    /// partition from the newest checkpoint plus the WAL suffix, re-registers
    /// the server on the bus and swaps it into the live slot — all while the
    /// rest of the cluster keeps serving. The epoch manager's retransmitted
    /// revokes are acknowledged by the fresh epoch client, and retried
    /// installs/aborts from in-flight coordinators land on the recovered
    /// partition idempotently.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the server is still running,
    /// [`Error::Io`] when the log is damaged beyond a torn tail.
    pub fn restart_server(&self, id: ServerId) -> Result<RecoveryReport> {
        let i = id.index();
        if i >= self.servers.len() {
            return Err(Error::NoSuchPartition(PartitionId(id.0)));
        }
        if !self.servers.get(i).is_shutdown() {
            return Err(Error::Config(format!(
                "server {} is still running; kill it first",
                id.0
            )));
        }
        let (server, threads, report) =
            build_server(&self.rebuild, id, &self.net, &self.batcher, &self.history)?;
        self.server_threads.lock()[i] = threads;
        self.servers.set(i, server);
        self.availability.note_restart(id.0);
        Ok(report)
    }

    /// Rebuilds partition `lost` from its backup's mirrored records: the
    /// §III-A single-crash recovery path. Installs every mirrored record
    /// into the target cluster's partition (ABORTED records re-apply the
    /// rollback).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if replication was not enabled.
    pub fn rebuild_from_replica(&self, source: &Cluster, lost: ServerId) -> Result<usize> {
        let backup = source.servers.get(lost.index()).backup_of(lost);
        let backup_server = source.servers.get(backup.index());
        let records = backup_server.replica_dump();
        if !backup_server.is_replicated() {
            return Err(Error::Config(
                "replication was not enabled on the source".into(),
            ));
        }
        let target = self.servers.get(lost.index());
        let mut applied = 0;
        let mut highest = Timestamp::ZERO;
        for (key, version, functor) in records {
            if functor == aloha_functor::Functor::Aborted {
                target.partition().abort_version(&key, version);
            } else {
                target.partition().store().put(&key, version, functor);
            }
            highest = highest.max(version);
            applied += 1;
        }
        // The puts bypassed `install_batch`, so the rebuilt records are
        // invisible to the target's compute frontier until re-buffered —
        // without this, frontier snapshot reads would serve the floor
        // *below* the still-pending rebuilt functors. Then block until the
        // redistributed frontier covers the rebuilt history on every server:
        // the next grant releases the re-buffered entries, the processors
        // settle them, and once each front-end's absorbed frontier passes
        // `highest` the rebuilt records are visible to snapshot reads
        // through any node.
        target.reseed_uncomputed();
        if applied > 0 {
            let deadline = Instant::now() + Duration::from_secs(5);
            for server in self.servers.all() {
                server.epoch().wait_frontier(highest, Some(deadline));
            }
        }
        Ok(applied)
    }

    /// Snapshot of every server's write-ahead log (empty logs when
    /// durability is off). The in-memory WAL clones sealed chunk handles
    /// under its lock and assembles outside it, so a hot log is never
    /// stalled behind a full copy.
    pub fn wal_snapshots(&self) -> Vec<Vec<u8>> {
        self.servers
            .all()
            .iter()
            .map(|s| s.wal_snapshot())
            .collect()
    }

    /// Replays per-partition write-ahead logs on top of a restored
    /// checkpoint taken at `checkpoint` (full recovery = `restore` +
    /// `replay_wals`). Returns total records applied.
    ///
    /// # Errors
    ///
    /// Fails on corrupt logs or a log-count mismatch.
    pub fn replay_wals(&self, logs: &[Vec<u8>], checkpoint: Timestamp) -> Result<usize> {
        let servers = self.servers.all();
        if logs.len() != servers.len() {
            return Err(Error::Config(format!(
                "wal set has {} partitions, cluster has {}",
                logs.len(),
                servers.len()
            )));
        }
        let mut applied = 0;
        let mut replayed_to = Timestamp::ZERO;
        for (server, log) in servers.iter().zip(logs) {
            let (count, high) = server.replay_wal(log, checkpoint)?;
            applied += count;
            replayed_to = replayed_to.max(high);
        }
        // Replayed records were durably logged by settled epochs, but they
        // re-enter the store *uncomputed* — the processors re-execute them in
        // the background. Covering them with the compute frontier anyway is
        // sound: a snapshot read that lands on such a record sees a `Pending`
        // chain section and falls back to the computing read path, so reads
        // issued right after recovery observe the full replayed suffix
        // instead of only the restored checkpoint.
        if replayed_to > Timestamp::ZERO {
            for server in &servers {
                server.epoch().absorb_frontier(replayed_to);
            }
        }
        Ok(applied)
    }

    /// Restores per-partition checkpoint blobs (as produced by
    /// [`Cluster::checkpoint`]) into this cluster; intended for a freshly
    /// started cluster before it serves traffic.
    ///
    /// # Errors
    ///
    /// Fails on malformed blobs or a blob-count mismatch.
    pub fn restore(&self, blobs: &[Vec<u8>]) -> Result<()> {
        let servers = self.servers.all();
        if blobs.len() != servers.len() {
            return Err(Error::Config(format!(
                "checkpoint has {} partitions, cluster has {}",
                blobs.len(),
                servers.len()
            )));
        }
        let mut restored_at = Timestamp::ZERO;
        for (server, blob) in servers.iter().zip(blobs) {
            restored_at = restored_at.max(server.restore_checkpoint(blob)?);
        }
        // The restored state is materialized values at or below the
        // checkpoint cut — settled and computed by construction — so the
        // snapshot-read fast path must cover it before this cluster's first
        // grant is absorbed.
        for server in &servers {
            server.epoch().absorb_frontier(restored_at);
        }
        Ok(())
    }

    /// Garbage-collects settled history below `bound` on every partition.
    /// Returns the number of version records dropped.
    pub fn gc(&self, bound: Timestamp) -> usize {
        self.servers
            .all()
            .iter()
            .map(|s| s.partition().store().truncate_below(bound))
            .sum()
    }

    /// Stops the epoch manager, the servers and all their threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.aux_stop.store(true, Ordering::SeqCst);
        if let Some(em) = self.em.take() {
            em.close();
        }
        // Flush and retire the batching layer first so nothing queued ends
        // up behind the Shutdown messages below (post-shutdown sends go
        // direct to the bus).
        if let Some(batcher) = &self.batcher {
            batcher.shutdown();
        }
        let servers = self.servers.all();
        for server in &servers {
            server.mark_shutdown();
            let _ = self
                .net
                .send_reliable(Addr::Server(server.id()), ServerMsg::Shutdown);
        }
        let groups: Vec<_> = self.server_threads.lock().drain(..).collect();
        for t in groups.into_iter().flatten() {
            let _ = t.join();
        }
        for t in self.aux_threads.drain(..) {
            let _ = t.join();
        }
        // The controller is gone; stop the standby runners it managed.
        if let Some(rs) = &self.replicas {
            rs.shutdown_all();
        }
        // With every dispatcher gone nothing submits anymore; drain the
        // executors' accepted work and join their pooled workers. Done
        // after the dispatcher joins so in-flight drains on one server can
        // still be answered by any other server's still-live workers.
        // Closing the logs last makes the final group commit durable.
        for server in &servers {
            server.exec().shutdown();
            if let Some(log) = server.durable_log() {
                log.close();
            }
        }
        // The cluster owns the transport's lifecycle: release sockets /
        // channel registrations last, once nothing can send anymore.
        self.net.shutdown();
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Client handle: submits transactions and reads, choosing front-ends
/// round-robin (override with the `_at` variants to pin a coordinator).
#[derive(Clone)]
pub struct Database {
    servers: Arc<ServerSlots>,
    next_fe: Arc<AtomicUsize>,
    /// Highest settled bound this handle has observed (raw timestamp).
    /// Front-ends learn the settled bound at different times (it rides on
    /// epoch grants), so round-robin dispatch alone would let a transaction
    /// transform against a snapshot older than a read this same handle
    /// already returned. Waiting for the picked FE to catch up restores
    /// monotone reads per handle.
    session: Arc<AtomicU64>,
    /// Highest timestamp this handle's own transactions committed at (raw).
    /// Kept separate from `session` on purpose: snapshot reads must floor at
    /// the handle's own writes (read-your-writes), but feeding write
    /// timestamps into `session` would make `sync_session` stall every
    /// subsequent *write* for a full epoch.
    session_writes: Arc<AtomicU64>,
    /// How latest-version reads are served (from [`ClusterConfig`]).
    read_mode: ReadMode,
    /// Per-FE admission gates, index-aligned with `servers` (`None` when the
    /// cluster runs ungated). Admission happens here, at the client edge,
    /// *before* the transform: a shed transaction never installs a functor.
    gates: Option<Arc<Vec<Arc<AdmissionGate>>>>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("servers", &self.servers.len())
            .finish()
    }
}

impl Database {
    /// Picks the next round-robin front-end, skipping servers that are
    /// currently down (a killed backend between its kill and restart). If
    /// every front-end is down the plain rotation applies and the caller
    /// gets the shutdown error.
    fn pick_fe(&self) -> usize {
        let n = self.servers.len();
        for _ in 0..n {
            let i = self.next_fe.fetch_add(1, Ordering::Relaxed) % n;
            if !self.servers.get(i).is_shutdown() {
                return i;
            }
        }
        self.next_fe.fetch_add(1, Ordering::Relaxed) % n
    }

    /// Acquires the FE's admission token (a no-op returning `None` on an
    /// ungated cluster).
    ///
    /// # Errors
    ///
    /// [`Error::Overloaded`] when front-end `fe` sheds the transaction.
    fn admit(&self, fe: usize, kind: AccessKind) -> Result<Option<Permit>> {
        match &self.gates {
            Some(gates) => gates[fe].admit(kind).map(Some),
            None => Ok(None),
        }
    }

    /// Records that this handle observed `bound` settled.
    fn note_session(&self, bound: Timestamp) {
        self.session.fetch_max(bound.raw(), Ordering::Relaxed);
    }

    /// Folds an externally-observed timestamp into this handle's read floor:
    /// subsequent [`ReadMode::Snapshot`] reads will not serve below it. The
    /// causality token for clients spanning several `Database` handles —
    /// clones of one handle already share their session and need no token.
    pub fn note_observed(&self, ts: Timestamp) {
        self.session_writes.fetch_max(ts.raw(), Ordering::Relaxed);
    }

    /// Blocks (bounded) until `fe` has settled everything this handle has
    /// already observed, so per-handle reads and transforms are monotone.
    fn sync_session(&self, fe: &Arc<Server>) {
        let bound = Timestamp::from_raw(self.session.load(Ordering::Relaxed));
        if bound > fe.epoch().visible_bound() {
            let deadline = Instant::now() + Duration::from_secs(5);
            fe.epoch().wait_visible(bound, Some(deadline));
        }
    }

    /// Executes a one-shot transaction via a round-robin front-end; returns
    /// after the write-only phase. Args accept anything byte-like: arrays
    /// (`7i64.to_be_bytes()`), slices, `Vec<u8>`, or `&str`.
    ///
    /// # Errors
    ///
    /// Fails on shutdown, unknown programs, transform rejections and
    /// transport errors.
    pub fn execute(&self, program: ProgramId, args: impl Into<Vec<u8>>) -> Result<TxnHandle> {
        let i = self.pick_fe();
        // Admission precedes everything — a shed transaction costs the FE no
        // timestamp, no transform, no installed functor.
        let permit = self.admit(i, AccessKind::Write)?;
        let fe = self.servers.get(i);
        self.sync_session(&fe);
        let handle = fe.coordinate(program, &args.into())?;
        // Snapshot reads floor at this handle's own writes (read-your-writes).
        self.session_writes
            .fetch_max(handle.timestamp().raw(), Ordering::Relaxed);
        if let Some(permit) = permit {
            handle.attach_permit(permit);
        }
        Ok(handle)
    }

    /// Executes and blocks until the functor computing phase resolves:
    /// [`Database::execute`] followed by [`TxnHandle::wait_processed`].
    ///
    /// # Errors
    ///
    /// As [`Database::execute`], plus wait-side shutdown/transport errors.
    pub fn execute_wait(&self, program: ProgramId, args: impl Into<Vec<u8>>) -> Result<TxnOutcome> {
        self.execute(program, args)?.wait_processed()
    }

    /// Executes with a pinned coordinator (e.g. a server that owns part of
    /// the write set, which makes outcome resolution local).
    ///
    /// # Errors
    ///
    /// As [`Database::execute`]; additionally [`Error::NoSuchPartition`] for
    /// an out-of-range server.
    pub fn execute_at(
        &self,
        fe: ServerId,
        program: ProgramId,
        args: impl Into<Vec<u8>>,
    ) -> Result<TxnHandle> {
        if fe.index() >= self.servers.len() {
            return Err(Error::NoSuchPartition(PartitionId(fe.0)));
        }
        let server = self.servers.get(fe.index());
        let permit = self.admit(fe.index(), AccessKind::Write)?;
        let handle = server.coordinate(program, &args.into())?;
        self.session_writes
            .fetch_max(handle.timestamp().raw(), Ordering::Relaxed);
        if let Some(permit) = permit {
            handle.attach_permit(permit);
        }
        Ok(handle)
    }

    /// Latest-version read-only transaction. Under [`ReadMode::Snapshot`]
    /// (the default) it is served from the snapshot-read fast path: an
    /// externally-consistent snapshot at the cluster compute frontier,
    /// without waiting out the epoch. Under [`ReadMode::DelayToEpoch`] it is
    /// the §III-B baseline: a timestamp in the current epoch, then a wait
    /// for the epoch to complete.
    ///
    /// Either way reads are monotone per handle and observe this handle's
    /// own committed writes.
    ///
    /// # Errors
    ///
    /// Fails on shutdown or transport errors.
    pub fn read_latest(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        let i = self.pick_fe();
        // Reads admit under `AccessKind::Read`, which may use the reserved
        // share of the window writes cannot touch; the token is held across
        // the synchronous read.
        let _permit = self.admit(i, AccessKind::Read)?;
        let fe = self.servers.get(i);
        match self.read_mode {
            ReadMode::Snapshot => {
                // The floor is everything this handle has already observed:
                // settled bounds noted by prior reads plus its own commits.
                let floor = Timestamp::from_raw(
                    self.session
                        .load(Ordering::Relaxed)
                        .max(self.session_writes.load(Ordering::Relaxed)),
                );
                let (served, reads) = fe.snapshot_read_latest(keys, floor)?;
                self.note_session(served);
                Ok(reads.into_iter().map(|read| read.value).collect())
            }
            ReadMode::DelayToEpoch => {
                let values = fe.read_latest(keys)?;
                self.note_session(fe.epoch().visible_bound());
                Ok(values)
            }
        }
    }

    /// Latest-version read of a single key: [`Database::read_latest`] without
    /// the slice ceremony.
    ///
    /// # Errors
    ///
    /// Fails on shutdown or transport errors.
    pub fn read_one(&self, key: &Key) -> Result<Option<Value>> {
        Ok(self.read_latest(std::slice::from_ref(key))?.pop().flatten())
    }

    /// Historical read at an already-settled timestamp.
    ///
    /// # Errors
    ///
    /// Fails if `ts` is not settled yet, on shutdown, or on transport errors.
    pub fn read_at(&self, keys: &[Key], ts: Timestamp) -> Result<Vec<Option<Value>>> {
        let i = self.pick_fe();
        let _permit = self.admit(i, AccessKind::Read)?;
        let fe = self.servers.get(i);
        let values = match self.read_mode {
            ReadMode::Snapshot => match fe.snapshot_read_at(keys, ts) {
                Ok(reads) => reads.into_iter().map(|read| read.value).collect(),
                // Compaction folded history `ts` needs; the computing path
                // still serves it best-effort from each chain's retained
                // window, matching the delay mode's contract.
                Err(Error::VersionOutsideEpoch { .. }) => fe.read_at(keys, ts)?,
                Err(e) => return Err(e),
            },
            ReadMode::DelayToEpoch => fe.read_at(keys, ts)?,
        };
        self.note_session(ts);
        Ok(values)
    }

    /// The current settled visibility bound, as seen by the front-end this
    /// handle would talk to next. Front-ends learn the bound at different
    /// times, so consulting a fixed server (the old behavior: always server
    /// 0) could report a bound ahead of — or, with server 0 down, far behind
    /// — anything this handle can actually read.
    pub fn visible_bound(&self) -> Timestamp {
        let n = self.servers.len();
        let start = self.next_fe.load(Ordering::Relaxed);
        for off in 0..n {
            let server = self.servers.get((start + off) % n);
            if !server.is_shutdown() {
                return server.epoch().visible_bound();
            }
        }
        self.servers.get(0).epoch().visible_bound()
    }

    /// The snapshot timestamp a [`ReadMode::Snapshot`] read would serve at
    /// right now (this handle's next front-end's absorbed cluster compute
    /// frontier; session floors may push an actual read higher).
    pub fn snapshot_bound(&self) -> Timestamp {
        let n = self.servers.len();
        let start = self.next_fe.load(Ordering::Relaxed);
        for off in 0..n {
            let server = self.servers.get((start + off) % n);
            if !server.is_shutdown() {
                return server.epoch().snapshot_timestamp();
            }
        }
        self.servers.get(0).epoch().snapshot_timestamp()
    }

    /// Number of servers.
    pub fn cluster_size(&self) -> usize {
        self.servers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{fn_program, TxnPlan};

    const INCR: ProgramId = ProgramId(1);

    /// Regression: the compaction sweeper clamps its fold horizon at the
    /// oldest in-flight snapshot read, so a read pinned at an early bound
    /// keeps answering exactly — even at `keep_versions = 1` — and folding
    /// resumes past that bound once the read retires.
    #[test]
    fn compaction_never_folds_past_an_inflight_snapshot_read() {
        let mut builder = Cluster::builder(
            ClusterConfig::new(1)
                .with_epoch_duration(Duration::from_millis(3))
                .with_compaction(Duration::from_millis(2), 1),
        );
        builder.register_program(
            INCR,
            fn_program(|_| Ok(TxnPlan::new().write(Key::from("hot"), Functor::add(1)))),
        );
        let cluster = builder.start().unwrap();
        cluster.load(Key::from("hot"), Value::from_i64(0));
        let db = cluster.database();
        let early = db.execute(INCR, b"").unwrap();
        early.wait_processed().unwrap();
        let bound = early.timestamp();

        // Pin an in-flight snapshot read at the early bound, then bury it
        // under new versions across many sweep intervals.
        let server = cluster.server(ServerId(0));
        let guard = server.register_snapshot_read(bound);
        assert_eq!(server.min_inflight_read(), Some(bound));
        for _ in 0..30 {
            db.execute(INCR, b"").unwrap().wait_processed().unwrap();
        }
        db.read_latest(&[Key::from("hot")]).unwrap();
        std::thread::sleep(Duration::from_millis(30));

        // The sweeper must not have folded the pinned read's floor away.
        let read = server
            .snapshot_read_local(&Key::from("hot"), bound)
            .unwrap();
        assert_eq!(read.version, bound, "pinned floor must survive folding");
        assert_eq!(read.value.unwrap().as_i64(), Some(1));

        // Retire the read; folding resumes past the old bound.
        drop(guard);
        assert_eq!(server.min_inflight_read(), None);
        let chain = server.partition().store().chain(&Key::from("hot")).unwrap();
        for _ in 0..100 {
            if chain.compacted_floor() >= bound {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            chain.compacted_floor() >= bound,
            "sweeper should fold past the retired read's bound"
        );
        cluster.shutdown();
    }
}
