//! The server process: front-end (coordinator) plus back-end (partition +
//! functor processors), as in Fig 1 of the paper.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aloha_common::metrics::{
    duration_micros, Counter, Histogram, HistogramSnapshot, LifecycleTracer, Stage, TxnTimer,
    STAGE_COUNT,
};
use aloha_common::stats::{StageStats, StatsSnapshot};
use aloha_common::{Error, Key, Result, ServerId, Timestamp, Value};
use aloha_control::Permit;
use aloha_epoch::{EpochClient, Grant, RevokedAck};
use aloha_functor::{Functor, VersionedRead};
use aloha_net::{reply_pair, Addr, Batcher, Endpoint, Executor, ReplyHandle, ReplySlot, Transport};
use aloha_replica::ShipFeed;
use aloha_storage::{
    read_log, ChainRead, ComputeEnv, DurableLog, FinalForm, Partition,
    SnapshotRead as ChainSnapshot, WalRecord,
};
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::checker::{CommitRecord, History};
use crate::msg::{InstallOutcome, ServerMsg, VersionState};
use crate::program::{Check, ProgramId, ProgramRegistry, SnapshotReader, TransformCtx, Write};

/// How many times an idempotent RPC is (re)sent before giving up. The fault
/// layer drops only the request leg (replies travel on direct channels), so
/// retransmission from the requester fully recovers lost messages; eight
/// attempts make a retry failure vanishingly unlikely at test loss rates and
/// outlast the partition windows the chaos tests inject.
const RPC_ATTEMPTS: usize = 8;

/// How long a snapshot read waits for a session floor above the frontier to
/// settle (read-your-writes fallback) before reporting a timeout. Matches the
/// session-sync deadline used by the write path.
const SNAPSHOT_SESSION_DEADLINE: Duration = Duration::from_secs(5);

/// Client-visible outcome of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// All functors committed.
    Committed,
    /// The transaction aborted — at install time (failed check) or in the
    /// functor computing phase (logic error / constraint violation).
    Aborted,
}

/// One buffered functor's metadata, released to the processor queue when its
/// epoch completes (§IV-D: "their meta-data (key and version), which were
/// buffered in the previous epoch, are pushed to a queue").
#[derive(Debug, Clone)]
pub(crate) struct QueueEntry {
    pub key: Key,
    pub version: Timestamp,
    pub installed_at: Instant,
    /// When the epoch grant released this entry to the processors; equals
    /// `installed_at` until [`Server::handle_grant`] stamps it.
    pub released_at: Instant,
}

/// Per-server metrics: the lifecycle tracer (Fig 10 stage accounting) plus
/// transaction counters.
///
/// FE-observable stages (`transform`, `timestamp_grant`, `functor_install`,
/// `commit`) are recorded by the coordinator; BE-observable stages
/// (`epoch_close`, `functor_computing`) are recorded where the backend sees
/// them. Each stage is recorded exactly once per transaction event, so
/// cluster rollups can merge the histograms without double counting.
#[derive(Debug)]
pub struct ServerStats {
    tracer: LifecycleTracer,
    latency: Histogram,
    committed: Counter,
    aborted: Counter,
    installs: Counter,
    compute_errors: Counter,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats {
            tracer: LifecycleTracer::default(),
            latency: Histogram::new(),
            committed: Counter::new(),
            aborted: Counter::new(),
            installs: Counter::new(),
            compute_errors: Counter::new(),
        }
    }
}

impl ServerStats {
    /// The lifecycle tracer: per-stage histograms plus the ring of recent
    /// transaction traces.
    pub fn tracer(&self) -> &LifecycleTracer {
        &self.tracer
    }

    /// End-to-end transaction latency (issue → functors fully processed).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Transactions resolved as committed via this coordinator.
    pub fn committed(&self) -> u64 {
        self.committed.get()
    }

    /// Transactions resolved as aborted via this coordinator.
    pub fn aborted(&self) -> u64 {
        self.aborted.get()
    }

    /// Functor installs accepted by this backend.
    pub fn installs(&self) -> u64 {
        self.installs.get()
    }

    /// Asynchronous computes that returned an error (transport failures
    /// during shutdown, unknown handlers).
    pub fn compute_errors(&self) -> u64 {
        self.compute_errors.get()
    }

    /// Mergeable raw histograms: the stages in [`Stage::ALL`] order plus
    /// end-to-end latency last. Cluster rollups merge these across servers
    /// before computing percentiles.
    pub fn raw_histograms(&self) -> [HistogramSnapshot; STAGE_COUNT + 1] {
        let stages = self.tracer.stage_snapshots();
        std::array::from_fn(|i| {
            if i < STAGE_COUNT {
                stages[i].clone()
            } else {
                self.latency.snapshot()
            }
        })
    }

    /// Exports this server's metrics as one node of the unified stats tree.
    pub fn snapshot(&self, name: impl Into<String>) -> StatsSnapshot {
        let mut node = StatsSnapshot::new(name);
        node.set_counter("committed", self.committed());
        node.set_counter("aborted", self.aborted());
        node.set_counter("installs", self.installs());
        node.set_counter("compute_errors", self.compute_errors());
        for (stage, snap) in Stage::ALL.iter().zip(self.tracer.stage_snapshots()) {
            node.set_stage(stage.name(), StageStats::from(&snap));
        }
        node.set_stage("e2e", StageStats::from(&self.latency.snapshot()));
        node
    }

    /// Clears every counter and histogram (benchmark warm-up).
    pub fn reset(&self) {
        self.tracer.reset();
        self.latency.reset();
        self.committed.reset();
        self.aborted.reset();
        self.installs.reset();
        self.compute_errors.reset();
    }
}

/// An FE/BE pair: one simulated host of the ALOHA-DB cluster.
pub struct Server {
    id: ServerId,
    total_servers: u16,
    partition: Arc<Partition>,
    epoch: Arc<EpochClient>,
    net: Arc<dyn Transport<ServerMsg>>,
    /// Destination-coalescing layer over the transport (`None` → every message is
    /// sent individually, the pre-batching behavior). Shared cluster-wide so
    /// different servers' traffic toward one destination coalesces too.
    batcher: Option<Batcher<ServerMsg>>,
    /// Bounded two-lane executor for dispatched backend work: per-key
    /// message handling on the sharded lane, cross-partition recursion on
    /// the blocking lane (see `aloha_net::exec`).
    exec: Executor,
    programs: Arc<ProgramRegistry>,
    queue_tx: Sender<QueueEntry>,
    pending: Mutex<Vec<QueueEntry>>,
    /// Entries released to the processors but not yet successfully computed,
    /// keyed by version. Together with `pending`, this is what
    /// [`Server::compute_frontier`] scans: a version leaves this map only
    /// once its functor is final, so the minimum key is the oldest compute
    /// this backend still owes. Lock order: `pending` before `inflight`.
    inflight: Mutex<BTreeMap<Timestamp, Vec<Key>>>,
    /// In-flight snapshot-read bounds this backend is serving (a multiset:
    /// bound → count). The compaction sweeper clamps its horizon to the
    /// minimum entry, so a fold never passes a read already being served;
    /// requests still on the wire are covered by the chain-level `Folded`
    /// detection plus the coordinator's retry.
    read_floors: Mutex<BTreeMap<Timestamp, usize>>,
    prev_settled: Mutex<Timestamp>,
    stats: ServerStats,
    shutdown: AtomicBool,
    rpc_timeout: Duration,
    /// Write-ahead log of the write-only phase (§III-A logging), when
    /// durability is enabled: chunked in-memory buffers or crash-durable
    /// file segments with epoch group commit.
    wal: Option<WalSink>,
    /// §III-A primary-backup replication: mirrored records of the
    /// *predecessor* server's partition (`None` when replication is off or
    /// the cluster has one server).
    replica: Option<ReplicaStore>,
    /// Partial-replication shipping tap: while a standby is attached the
    /// feed buffers a copy of every WAL frame this server logs, and
    /// [`Server::commit_wal`] drains them into one `ShipBatch` per epoch —
    /// *before* the revoke ack, so settled epochs are always covered by the
    /// standby's queue. Costs one relaxed load per record when inactive.
    ship: Arc<ShipFeed>,
    /// Cluster-shared commit history for the serializability checker
    /// (`None` unless history recording is enabled).
    history: Option<Arc<History>>,
}

/// The mirrored write-only-phase records of one partition, held by its
/// backup server.
#[derive(Debug, Default)]
pub(crate) struct ReplicaStore {
    records: Mutex<Vec<(Key, Timestamp, Functor)>>,
}

impl ReplicaStore {
    fn append(&self, mut records: Vec<(Key, Timestamp, Functor)>) {
        self.records.lock().append(&mut records);
    }

    fn dump(&self) -> Vec<(Key, Timestamp, Functor)> {
        self.records.lock().clone()
    }
}

/// Chunked in-memory write-ahead log. Epoch group commit seals the active
/// buffer into an `Arc` chunk, so a snapshot clones chunk *handles* under
/// the lock and concatenates outside it — a hot partition's epoch close is
/// never stalled behind a full-log copy.
#[derive(Debug, Default)]
pub(crate) struct MemWal {
    sealed: Vec<Arc<Vec<u8>>>,
    active: Vec<u8>,
    records: u64,
}

/// Seal the active buffer early once it grows past this, so snapshots of a
/// commit-heavy epoch stay cheap even before the epoch closes.
const MEM_WAL_CHUNK: usize = 64 * 1024;

/// Where the write-only phase's log records go.
pub(crate) enum WalSink {
    /// In-memory chunks (the pre-durability behavior; ablation baseline).
    Memory(Mutex<MemWal>),
    /// Crash-durable segment files (see [`aloha_storage::durable`]).
    Disk(Arc<DurableLog>),
}

impl WalSink {
    /// Appends one batch of install records atomically: either every record
    /// of the batch is logged or none is, so a log closed mid-batch (server
    /// kill) can never leave a half-logged transaction to replay.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShuttingDown`] once the disk log has been closed —
    /// the caller must fail the install rather than acknowledge it.
    fn log_installs(&self, version: Timestamp, writes: &[Write]) -> Result<()> {
        match self {
            WalSink::Memory(mem) => {
                let mut mem = mem.lock();
                for w in writes {
                    WalRecord::Install {
                        key: w.key.clone(),
                        version,
                        functor: w.functor.clone(),
                    }
                    .encode_into(&mut mem.active);
                }
                mem.records += writes.len() as u64;
                if mem.active.len() >= MEM_WAL_CHUNK {
                    let chunk = std::mem::take(&mut mem.active);
                    mem.sealed.push(Arc::new(chunk));
                }
                Ok(())
            }
            WalSink::Disk(log) => {
                let mut frames = Vec::with_capacity(writes.len());
                for w in writes {
                    let mut buf = Vec::new();
                    WalRecord::Install {
                        key: w.key.clone(),
                        version,
                        functor: w.functor.clone(),
                    }
                    .encode_into(&mut buf);
                    frames.push((version.raw(), buf));
                }
                log.append_batch(&frames)
            }
        }
    }

    /// Appends one abort record.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShuttingDown`] once the disk log has been closed.
    fn log_abort(&self, key: &Key, version: Timestamp) -> Result<()> {
        let record = WalRecord::Abort {
            key: key.clone(),
            version,
        };
        match self {
            WalSink::Memory(mem) => {
                let mut mem = mem.lock();
                record.encode_into(&mut mem.active);
                mem.records += 1;
                Ok(())
            }
            WalSink::Disk(log) => record.append_durable(log),
        }
    }

    /// Epoch group commit: flush (and, per policy, fsync) the disk log, or
    /// seal the in-memory chunk. Called just before a revoke ack, so a
    /// settled epoch implies its records are committed.
    fn commit(&self) {
        match self {
            WalSink::Memory(mem) => {
                let mut mem = mem.lock();
                if !mem.active.is_empty() {
                    let chunk = std::mem::take(&mut mem.active);
                    mem.sealed.push(Arc::new(chunk));
                }
            }
            WalSink::Disk(log) => {
                let _ = log.commit();
            }
        }
    }

    /// A contiguous copy of the log for replay. The memory path clones only
    /// chunk handles under the lock; assembly happens outside it.
    fn snapshot(&self) -> Vec<u8> {
        match self {
            WalSink::Memory(mem) => {
                let (chunks, active) = {
                    let mem = mem.lock();
                    (mem.sealed.clone(), mem.active.clone())
                };
                let total = chunks.iter().map(|c| c.len()).sum::<usize>() + active.len();
                let mut out = Vec::with_capacity(total);
                for chunk in &chunks {
                    out.extend_from_slice(chunk);
                }
                out.extend_from_slice(&active);
                out
            }
            WalSink::Disk(log) => {
                let mut out = Vec::new();
                if let Ok(frames) = log.read_back() {
                    for (_, frame) in frames {
                        out.extend_from_slice(&frame);
                    }
                }
                out
            }
        }
    }

    /// The `durability` node of the stats tree.
    fn stats_snapshot(&self, current_version: u64) -> StatsSnapshot {
        match self {
            WalSink::Memory(mem) => {
                let mem = mem.lock();
                let bytes = mem.sealed.iter().map(|c| c.len() as u64).sum::<u64>()
                    + mem.active.len() as u64;
                let records = mem.records;
                drop(mem);
                let mut s = StatsSnapshot::new("durability");
                s.set_counter("wal_bytes", bytes);
                s.set_counter("records", records);
                s.set_counter("fsyncs", 0);
                s
            }
            WalSink::Disk(log) => log.stats().snapshot(current_version),
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("id", &self.id).finish()
    }
}

/// How one drained ship-buffer frame leaves the epoch group commit (see
/// [`Server::settle_frame`]).
enum ShipFrame {
    /// Already final — ship the original bytes.
    AsIs,
    /// Resolved: ship re-encoded with the record's final form.
    Settled(Vec<u8>),
    /// Still uncomputed (a later epoch's frame racing into this drain) —
    /// requeue for the next drain.
    Hold,
}

impl Server {
    /// Creates a server; the caller spawns its dispatcher and processor
    /// threads. Returns the server and the processor queue's receive side.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: ServerId,
        total_servers: u16,
        partition: Arc<Partition>,
        epoch: Arc<EpochClient>,
        net: Arc<dyn Transport<ServerMsg>>,
        batcher: Option<Batcher<ServerMsg>>,
        exec: Executor,
        programs: Arc<ProgramRegistry>,
        wal: Option<WalSink>,
        replicated: bool,
        rpc_timeout: Duration,
        history: Option<Arc<History>>,
    ) -> (Arc<Server>, Receiver<QueueEntry>) {
        let (queue_tx, queue_rx) = crossbeam::channel::unbounded();
        // Recovery seeding: WAL replay and checkpoint restore reinstate
        // functors directly into the store, bypassing `install_batch`, so any
        // still-uncomputed record must be re-buffered here. Otherwise it
        // would be invisible to the compute frontier (unsoundly licensing
        // compaction to fold the history it still needs) and would never be
        // proactively recomputed. The next grant releases these exactly like
        // freshly installed entries.
        let seeded_at = Instant::now();
        let mut seeded = Vec::new();
        partition.store().for_each_chain(|key, chain| {
            for record in chain.uncomputed_in(Timestamp::ZERO, Timestamp::MAX) {
                seeded.push(QueueEntry {
                    key: key.clone(),
                    version: record.version(),
                    installed_at: seeded_at,
                    released_at: seeded_at,
                });
            }
        });
        let server = Arc::new(Server {
            id,
            total_servers,
            partition,
            epoch,
            net,
            batcher,
            exec,
            programs,
            queue_tx,
            pending: Mutex::new(seeded),
            inflight: Mutex::new(BTreeMap::new()),
            read_floors: Mutex::new(BTreeMap::new()),
            prev_settled: Mutex::new(Timestamp::ZERO),
            stats: ServerStats::default(),
            shutdown: AtomicBool::new(false),
            rpc_timeout,
            wal,
            replica: (replicated && total_servers > 1).then(ReplicaStore::default),
            ship: Arc::new(ShipFeed::new()),
            history,
        });
        (server, queue_rx)
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The partition this server's backend stores.
    pub fn partition(&self) -> &Arc<Partition> {
        &self.partition
    }

    /// This server's epoch client.
    pub fn epoch(&self) -> &Arc<EpochClient> {
        &self.epoch
    }

    /// This server's metrics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// This server's bounded message executor.
    pub fn exec(&self) -> &Executor {
        &self.exec
    }

    /// Instantaneous functor-computing backlog: installed entries parked
    /// until their epoch settles plus entries already released toward the
    /// processors but not yet drained. This is the backend-pressure signal
    /// the control plane's pacer samples.
    pub fn backlog_len(&self) -> u64 {
        self.pending.lock().len() as u64 + self.queue_tx.len() as u64
    }

    /// This server's node of the unified stats tree (with its partition's
    /// counters, its executor's pool metrics, and — when durability is on —
    /// the `durability` subtree as children).
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut node = self.stats.snapshot(format!("server_{}", self.id.0));
        let mut partition = self.partition.stats().snapshot("partition");
        let mut memory = self.partition.store().memory_stats().snapshot("memory");
        let cache = self.partition.push_cache();
        memory.set_counter("push_cache_entries", cache.len() as u64);
        memory.set_counter("push_cache_hits", cache.hits());
        memory.set_counter("push_cache_misses", cache.misses());
        let probes = cache.hits() + cache.misses();
        memory.set_gauge(
            "push_cache_hit_rate_pct",
            cache.hits() * 100 / probes.max(1),
        );
        partition.push_child(memory);
        node.push_child(partition);
        node.push_child(self.exec.stats().snapshot("exec"));
        if let Some(sink) = &self.wal {
            node.push_child(sink.stats_snapshot(self.epoch.visible_bound().raw()));
        }
        node
    }

    /// The crash-durable log behind this server's WAL, if it writes to disk.
    pub(crate) fn durable_log(&self) -> Option<&Arc<DurableLog>> {
        match &self.wal {
            Some(WalSink::Disk(log)) => Some(log),
            _ => None,
        }
    }

    /// The server owning `key`'s partition.
    pub fn owner_of(&self, key: &Key) -> ServerId {
        ServerId(key.partition(self.total_servers).0)
    }

    pub(crate) fn mark_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.epoch.shutdown();
        // Nothing may sit in a queue past shutdown: late replies resolve
        // in-flight waiters faster than their timeouts would.
        if let Some(b) = &self.batcher {
            b.flush();
        }
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    // ------------------------------------------------------------------
    // RPC with retransmission.
    //
    // The simulated fault layer can drop or delay the request leg of any
    // RPC (replies ride on direct one-shot channels and cannot be lost), so
    // every request sent here must be idempotent at the receiver: duplicate
    // installs are first-write-wins, duplicate aborts re-abort, reads and
    // resolves have no side effects, and replication appends replay
    // idempotently during rebuild.
    // ------------------------------------------------------------------

    /// Sends a one-way message through the batching layer when one is
    /// configured, or directly onto the transport otherwise.
    fn send_msg(&self, to: ServerId, msg: ServerMsg) -> Result<()> {
        match &self.batcher {
            Some(b) => b.send(Addr::Server(to), msg),
            None => self.net.send(Addr::Server(to), msg),
        }
    }

    /// Sends an idempotent request and waits for the reply, retransmitting
    /// on timeout up to [`RPC_ATTEMPTS`] times. The request bypasses the
    /// batching layer — used for synchronous exchanges (replication) where
    /// even the batcher's small deadline is latency on the critical path.
    fn rpc<R>(&self, to: ServerId, mut make: impl FnMut(ReplySlot<R>) -> ServerMsg) -> Result<R> {
        let (slot, handle) = reply_pair();
        self.net.send(Addr::Server(to), make(slot))?;
        self.wait_retry(handle, to, make)
    }

    /// Like [`Server::rpc`], but the initial send rides the batching layer.
    /// Retransmissions still go direct (see [`Server::wait_retry`]): a retry
    /// means the request is already late, so batching it again only delays
    /// recovery.
    fn rpc_batched<R>(
        &self,
        to: ServerId,
        mut make: impl FnMut(ReplySlot<R>) -> ServerMsg,
    ) -> Result<R> {
        let (slot, handle) = reply_pair();
        self.send_msg(to, make(slot))?;
        self.wait_retry(handle, to, make)
    }

    /// Waits on an already-sent request's reply, retransmitting a fresh copy
    /// (built by `make`) whenever the wait times out. A `Disconnected` reply
    /// (responder dropped the slot without answering) is retried the same
    /// way, modeling a request lost inside a restarting responder.
    fn wait_retry<R>(
        &self,
        mut handle: ReplyHandle<R>,
        to: ServerId,
        mut make: impl FnMut(ReplySlot<R>) -> ServerMsg,
    ) -> Result<R> {
        for attempt in 1.. {
            match handle.wait_timeout(self.rpc_timeout) {
                Ok(reply) => return Ok(reply),
                Err(e @ (Error::Timeout(_) | Error::Disconnected(_))) => {
                    if attempt >= RPC_ATTEMPTS || self.is_shutdown() {
                        return Err(e);
                    }
                    let (slot, next) = reply_pair();
                    self.net.send(Addr::Server(to), make(slot))?;
                    handle = next;
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("retry loop returns from within")
    }

    // ------------------------------------------------------------------
    // Front-end: transaction coordination (§IV-A lifecycle).
    // ------------------------------------------------------------------

    /// Coordinates one transaction: assigns a timestamp, transforms it into
    /// functors, installs them on every participant partition (write-only
    /// phase), and issues the second abort round if any install fails.
    ///
    /// Returns once the write-only phase has completed; the returned handle
    /// waits for the asynchronous functor computing phase.
    ///
    /// # Errors
    ///
    /// Fails on shutdown, unknown programs, transform rejections, and
    /// transport failures.
    pub fn coordinate(self: &Arc<Self>, program: ProgramId, args: &[u8]) -> Result<TxnHandle> {
        let issued_at = Instant::now();
        let mut timer = TxnTimer::start();
        let program = Arc::clone(self.programs.get(program)?);
        let ticket = self.epoch.begin_txn(None).map_err(|e| match e {
            aloha_epoch::BeginError::ShuttingDown => Error::ShuttingDown,
            aloha_epoch::BeginError::DeadlineExceeded => Error::Timeout("epoch grant".into()),
        })?;
        self.stats
            .tracer
            .record_stage(Stage::TimestampGrant, timer.mark(Stage::TimestampGrant));

        let reader = FeSnapshotReader {
            server: self,
            bound: self.epoch.visible_bound(),
            record: self.history.is_some(),
            reads: Mutex::new(Vec::new()),
        };
        let plan = match program.transform(&TransformCtx {
            ts: ticket.ts,
            args,
            reader: &reader,
        }) {
            Ok(plan) => plan,
            Err(e) => {
                self.finish_ticket(ticket);
                return Err(e);
            }
        };
        self.stats
            .tracer
            .record_stage(Stage::Transform, timer.mark(Stage::Transform));
        let writes = plan.into_writes();
        // Prefer a probe key this coordinator owns so the outcome resolution
        // in `wait_processed` stays local (any functor of the transaction
        // reflects the abort decision, §IV-A).
        let probe = writes
            .iter()
            .find(|w| self.owner_of(&w.key) == self.id)
            .or_else(|| writes.first())
            .map(|w| w.key.clone());
        let recorded_writes = self.history.as_ref().map(|_| {
            writes
                .iter()
                .map(|w| (w.key.clone(), w.functor.clone()))
                .collect()
        });

        // Group writes by owning server and install (the write-only phase).
        // Each group is wrapped in an `Arc` once: the initial Install, any
        // retransmission and the fault layer's duplicates all share that one
        // allocation instead of deep-cloning the writes per send.
        let mut grouped: HashMap<ServerId, Vec<Write>> = HashMap::new();
        for w in writes {
            grouped.entry(self.owner_of(&w.key)).or_default().push(w);
        }
        let groups: HashMap<ServerId, Arc<Vec<Write>>> = grouped
            .into_iter()
            .map(|(owner, group)| (owner, Arc::new(group)))
            .collect();
        let participants: Vec<(ServerId, Vec<Key>)> = groups
            .iter()
            .map(|(owner, group)| (*owner, group.iter().map(|w| w.key.clone()).collect()))
            .collect();

        // Whatever happens during the write-only phase, the ticket must be
        // finished: a leaked in-flight transaction stalls its epoch forever.
        let phase = self.run_write_phase(ticket.ts, &groups, &participants);
        self.finish_ticket(ticket);

        let ok = matches!(phase, Ok(true));
        if let Some(log) = &self.history {
            log.record(CommitRecord {
                ts: ticket.ts,
                writes: recorded_writes.unwrap_or_default(),
                reads: reader.reads.into_inner(),
                aborted_at_install: !ok,
            });
        }
        phase?;
        self.stats
            .tracer
            .record_stage(Stage::FunctorInstall, timer.mark(Stage::FunctorInstall));
        Ok(TxnHandle {
            fe: Arc::clone(self),
            ts: ticket.ts,
            probe,
            aborted_at_install: !ok,
            issued_at,
            timer: Mutex::new(Some(timer)),
            permit: Mutex::new(None),
        })
    }

    /// The write-only phase: installs every per-partition group (fanning out
    /// to remote participants, retransmitting on loss) and, when any install
    /// is rejected or unreachable, runs the second abort round (§V-A2).
    ///
    /// Returns `Ok(true)` when all installs landed, `Ok(false)` when the
    /// transaction was aborted by a failed check, and `Err` when a
    /// participant stayed unreachable through all retries — in which case the
    /// abort round has already rolled the reachable participants back.
    fn run_write_phase(
        &self,
        version: Timestamp,
        groups: &HashMap<ServerId, Arc<Vec<Write>>>,
        participants: &[(ServerId, Vec<Key>)],
    ) -> Result<bool> {
        let mut outcomes = Vec::with_capacity(groups.len());
        let mut replies = Vec::new();
        let mut install_err = None;
        for (owner, group) in groups {
            if *owner == self.id {
                outcomes.push(self.install_batch(version, group));
            } else {
                let (slot, handle) = reply_pair();
                self.send_msg(
                    *owner,
                    ServerMsg::Install {
                        version,
                        writes: Arc::clone(group),
                        reply: slot,
                    },
                )?;
                replies.push((*owner, handle));
            }
        }
        for (owner, handle) in replies {
            // The resend closure captures only the `Arc` handle; the write
            // group itself is cloned by nobody on any path.
            let resend = |reply| ServerMsg::Install {
                version,
                writes: Arc::clone(&groups[&owner]),
                reply,
            };
            match self.wait_retry(handle, owner, resend) {
                Ok(outcome) => outcomes.push(outcome),
                Err(e) => {
                    install_err = Some(e);
                    break;
                }
            }
        }
        let ok = install_err.is_none() && outcomes.iter().all(InstallOutcome::is_ok);

        if !ok {
            // Second round (§V-A2): roll the version back to ABORTED on every
            // participant, and wait for the acks — the epoch must stay open
            // (this transaction in flight) until every rollback landed, or a
            // sibling functor could become visible as committed. An install
            // that is still in flight when its abort lands is harmless:
            // `abort_version` pre-inserts the ABORTED record and the late
            // install becomes a first-write-wins no-op.
            // The abort round is deliberately unbatched: it executes while
            // the epoch is held open, so every microsecond of batching delay
            // extends the epoch for all concurrent transactions. Rollback
            // messages go straight onto the transport.
            let mut abort_acks = Vec::new();
            for (owner, keys) in participants {
                let pairs: Arc<Vec<(Key, Timestamp)>> =
                    Arc::new(keys.iter().map(|k| (k.clone(), version)).collect());
                if *owner == self.id {
                    for (k, v) in pairs.iter() {
                        self.abort_version_logged(k, *v);
                    }
                } else {
                    let (slot, handle) = reply_pair();
                    let _ = self.net.send(
                        Addr::Server(*owner),
                        ServerMsg::AbortVersion {
                            keys: Arc::clone(&pairs),
                            reply: slot,
                        },
                    );
                    abort_acks.push((*owner, pairs, handle));
                }
            }
            for (owner, pairs, handle) in abort_acks {
                let resend = |reply| ServerMsg::AbortVersion {
                    keys: Arc::clone(&pairs),
                    reply,
                };
                self.wait_retry(handle, owner, resend)?;
            }
        }
        match install_err {
            Some(e) => Err(e),
            None => Ok(ok),
        }
    }

    /// Executes a latest-version read-only transaction (§III-B): assigns a
    /// timestamp in the current epoch, waits for the epoch to complete, then
    /// reads the keys as a historical snapshot at that timestamp.
    ///
    /// This is the delay-to-epoch baseline; [`Server::snapshot_read_latest`]
    /// is the fast path. Both record the `snapshot_read` stage so the read
    /// ablation compares like for like.
    ///
    /// # Errors
    ///
    /// Fails on shutdown or transport errors.
    pub fn read_latest(self: &Arc<Self>, keys: &[Key]) -> Result<Vec<Option<aloha_common::Value>>> {
        let started = Instant::now();
        let ts = self
            .epoch
            .assign_read_timestamp(None)
            .map_err(|_| Error::ShuttingDown)?;
        if !self.epoch.wait_visible(ts, None) {
            return Err(Error::ShuttingDown);
        }
        let values = self.read_at(keys, ts);
        self.stats
            .tracer
            .record_stage(Stage::SnapshotRead, duration_micros(started.elapsed()));
        values
    }

    /// Reads a historical snapshot at `ts`, which must already be settled.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Timeout`] semantics if `ts` is not yet visible,
    /// and on transport errors.
    pub fn read_at(
        self: &Arc<Self>,
        keys: &[Key],
        ts: Timestamp,
    ) -> Result<Vec<Option<aloha_common::Value>>> {
        if ts > self.epoch.visible_bound() {
            return Err(Error::Timeout(format!("snapshot {ts} is not settled yet")));
        }
        // `remote_get_many` serves locally-owned keys from the partition and
        // fans out one batched round trip per remote owner.
        Ok(self
            .as_env()
            .remote_get_many(keys, ts)?
            .into_iter()
            .map(|read| read.value)
            .collect())
    }

    // ------------------------------------------------------------------
    // Snapshot-read fast path: externally-consistent multi-partition reads
    // served at the cluster compute frontier, with no epoch wait. The
    // frontier is min-merged across every server and capped at the visible
    // bound, so everything at or below it is settled AND computed —
    // answers come straight off the packed settled section of the version
    // chains, lock-free of any record and with no functor computing.
    // ------------------------------------------------------------------

    /// Registers a snapshot read being served at `bound`; the guard
    /// deregisters on drop. While registered, [`Server::min_inflight_read`]
    /// keeps the compaction sweeper's fold horizon at or below `bound`.
    pub(crate) fn register_snapshot_read(&self, bound: Timestamp) -> ReadGuard<'_> {
        *self.read_floors.lock().entry(bound).or_insert(0) += 1;
        ReadGuard {
            server: self,
            bound,
        }
    }

    /// The lowest snapshot-read bound currently being served by this server,
    /// if any. The compaction sweeper folds no history at or above it.
    pub fn min_inflight_read(&self) -> Option<Timestamp> {
        self.read_floors.lock().keys().next().copied()
    }

    /// Serves one key of a snapshot read from this backend's chains.
    ///
    /// # Errors
    ///
    /// [`Error::VersionOutsideEpoch`] when compaction folded the history the
    /// read would need (`valid_from` carries the oldest bound the chain can
    /// answer exactly again — the caller retries there); transport errors
    /// from the computing fallback.
    pub(crate) fn snapshot_read_local(&self, key: &Key, bound: Timestamp) -> Result<VersionedRead> {
        let Some(chain) = self.partition.store().chain(key) else {
            return Ok(VersionedRead::missing());
        };
        match chain.snapshot_read(bound) {
            ChainSnapshot::Missing => Ok(VersionedRead::missing()),
            ChainSnapshot::Found(version, FinalForm::Value(value)) => {
                Ok(VersionedRead::found(version, value))
            }
            // A delete tombstone reports its version with no value, matching
            // `Partition::get`. (`Aborted` is unreachable: the walk skips
            // abort markers.)
            ChainSnapshot::Found(version, _) => Ok(VersionedRead {
                version,
                value: None,
            }),
            // A reachable record is still uncomputed — only possible when the
            // bound sits above the cluster frontier (a session floored by its
            // own fresh write). Fall back to the computing read path.
            ChainSnapshot::Pending => self.partition.get(key, bound, self.as_env()),
            ChainSnapshot::Folded(retry_at) => Err(Error::VersionOutsideEpoch {
                version: bound,
                valid_from: retry_at,
                valid_until: Timestamp::MAX,
            }),
        }
    }

    /// One attempt at a consistent multi-partition read at exactly `bound`:
    /// locally-owned keys straight from the chains, remote keys answered by
    /// the push cache when the same snapshot point was already fetched, the
    /// rest grouped per owning server and fanned out in parallel (every
    /// request in flight before the first reply is awaited), mirroring
    /// `remote_get_many`. Remote results are fed back into the push cache so
    /// hot keys never leave the front-end while the frontier holds still.
    fn try_snapshot_read(&self, keys: &[Key], bound: Timestamp) -> Result<Vec<VersionedRead>> {
        // Pin local chains for the duration of the attempt; remote chains are
        // pinned by their own server's handler.
        let _guard = self.register_snapshot_read(bound);
        let cache = self.partition.push_cache();
        let mut out: Vec<Option<VersionedRead>> = vec![None; keys.len()];
        let mut by_owner: HashMap<ServerId, Vec<usize>> = HashMap::new();
        for (i, key) in keys.iter().enumerate() {
            let owner = self.owner_of(key);
            if owner == self.id {
                out[i] = Some(self.snapshot_read_local(key, bound)?);
            } else if let Some(read) = cache.get(bound, key) {
                // History at a settled snapshot point is immutable, so a
                // cached answer keyed at exactly `bound` is still exact.
                out[i] = Some(read);
            } else {
                by_owner.entry(owner).or_default().push(i);
            }
        }
        let mut singles = Vec::new();
        let mut batches = Vec::new();
        for (owner, idxs) in by_owner {
            if idxs.len() == 1 {
                let i = idxs[0];
                let key = keys[i].clone();
                let (slot, handle) = reply_pair();
                self.send_msg(
                    owner,
                    ServerMsg::SnapshotRead {
                        key: key.clone(),
                        bound,
                        reply: slot,
                    },
                )?;
                singles.push((owner, i, key, handle));
            } else {
                let group: Arc<Vec<Key>> =
                    Arc::new(idxs.iter().map(|&i| keys[i].clone()).collect());
                let (slot, handle) = reply_pair();
                self.send_msg(
                    owner,
                    ServerMsg::SnapshotReadBatch {
                        keys: Arc::clone(&group),
                        bound,
                        reply: slot,
                    },
                )?;
                batches.push((owner, idxs, group, handle));
            }
        }
        for (owner, i, key, handle) in singles {
            let resend = |reply| ServerMsg::SnapshotRead {
                key: key.clone(),
                bound,
                reply,
            };
            let read = self.wait_retry(handle, owner, resend)??;
            cache.insert(bound, key, read.clone());
            out[i] = Some(read);
        }
        for (owner, idxs, group, handle) in batches {
            let resend = |reply| ServerMsg::SnapshotReadBatch {
                keys: Arc::clone(&group),
                bound,
                reply,
            };
            let reads = self.wait_retry(handle, owner, resend)??;
            if reads.len() != idxs.len() {
                return Err(Error::Config(format!(
                    "snapshot read batch answered {} reads for {} keys",
                    reads.len(),
                    idxs.len()
                )));
            }
            for (&i, read) in idxs.iter().zip(reads) {
                cache.insert(bound, keys[i].clone(), read.clone());
                out[i] = Some(read);
            }
        }
        Ok(out
            .into_iter()
            .map(|read| read.expect("every key index is covered by exactly one owner group"))
            .collect())
    }

    /// A consistent multi-partition read at `bound` or, when compaction on
    /// some server already folded past it, at the nearest newer bound every
    /// chain can answer exactly. Returns the bound actually served — always
    /// at or above the request, so session reads stay monotone.
    fn snapshot_read_retry(
        &self,
        keys: &[Key],
        mut bound: Timestamp,
    ) -> Result<(Timestamp, Vec<VersionedRead>)> {
        for _ in 0..RPC_ATTEMPTS {
            match self.try_snapshot_read(keys, bound) {
                Ok(reads) => return Ok((bound, reads)),
                Err(Error::VersionOutsideEpoch { valid_from, .. }) => {
                    // Raced a fold — possible only while this front-end's
                    // absorbed frontier trails the folding server's. Every
                    // retry bound is still settled and computed cluster-wide:
                    // fold horizons sit below the folding server's own
                    // frontier, and this front-end's frontier is monotone.
                    bound = bound.max(valid_from).max(self.epoch.snapshot_timestamp());
                }
                Err(e) => return Err(e),
            }
        }
        Err(Error::Timeout(format!(
            "snapshot read kept racing compaction below {bound}"
        )))
    }

    /// Serves a latest-version read-only transaction from the snapshot-read
    /// fast path: externally consistent at the cluster compute frontier (or
    /// at `floor` when the caller's session has already observed state above
    /// the frontier), without waiting out the epoch. Returns the snapshot
    /// point actually served so the caller can advance its session floor.
    ///
    /// # Errors
    ///
    /// Fails on shutdown and transport errors, and with [`Error::Timeout`]
    /// if `floor` exceeds the visible bound and the epoch does not settle it
    /// within the deadline.
    pub fn snapshot_read_latest(
        self: &Arc<Self>,
        keys: &[Key],
        floor: Timestamp,
    ) -> Result<(Timestamp, Vec<VersionedRead>)> {
        let started = Instant::now();
        let frontier = self.epoch.snapshot_timestamp();
        let bound = if floor > frontier {
            // Read-your-writes: the session observed (usually: wrote) state
            // above the frontier, so external consistency demands waiting
            // until the frontier covers that floor and serving there. The
            // wait must be for the *frontier*, not mere visibility: a
            // settled epoch can still hold uncomputed functors whose §IV-E
            // deferred writes have not landed in their target chains yet.
            // This narrow window is the only place the fast path ever waits.
            if !self
                .epoch
                .wait_frontier(floor, Some(Instant::now() + SNAPSHOT_SESSION_DEADLINE))
            {
                return Err(Error::Timeout(format!(
                    "session floor {floor} did not settle"
                )));
            }
            floor
        } else {
            frontier
        };
        let served = self.snapshot_read_retry(keys, bound);
        self.stats
            .tracer
            .record_stage(Stage::SnapshotRead, duration_micros(started.elapsed()));
        served
    }

    /// Reads a historical snapshot at exactly `ts` through the fast path
    /// (no functor computing for settled history, grouped parallel fan-out).
    ///
    /// # Errors
    ///
    /// [`Error::Timeout`] if `ts` is not settled yet, and
    /// [`Error::VersionOutsideEpoch`] if compaction has folded history `ts`
    /// needs — unlike latest-version reads, an explicit timestamp cannot be
    /// bumped past the fold.
    pub fn snapshot_read_at(
        self: &Arc<Self>,
        keys: &[Key],
        ts: Timestamp,
    ) -> Result<Vec<VersionedRead>> {
        if ts > self.epoch.visible_bound() {
            return Err(Error::Timeout(format!("snapshot {ts} is not settled yet")));
        }
        let started = Instant::now();
        let reads = self.try_snapshot_read(keys, ts);
        self.stats
            .tracer
            .record_stage(Stage::SnapshotRead, duration_micros(started.elapsed()));
        reads
    }

    fn finish_ticket(&self, ticket: aloha_epoch::TxnTicket) {
        if let Some(epoch) = self.epoch.txn_finished(ticket) {
            // Group commit before the ack: once the EM hears this epoch is
            // complete it may settle it, and a settled epoch's records must
            // already be committed to the log (§III-A).
            self.commit_wal();
            let ack = RevokedAck {
                server: self.id,
                epoch,
                frontier: self.compute_frontier(),
            };
            let _ = self
                .net
                .send(Addr::EpochManager, ServerMsg::RevokedAck(ack));
        }
    }

    /// Resolves the record state of (key, version), computing as needed.
    pub(crate) fn resolve(&self, key: &Key, version: Timestamp) -> Result<VersionState> {
        if self.owner_of(key) == self.id {
            self.resolve_local(key, version)
        } else {
            self.rpc_batched(self.owner_of(key), |reply| ServerMsg::ResolveVersion {
                key: key.clone(),
                version,
                reply,
            })?
        }
    }

    // ------------------------------------------------------------------
    // Back-end: install, abort, compute.
    // ------------------------------------------------------------------

    pub(crate) fn install_batch(&self, version: Timestamp, writes: &[Write]) -> InstallOutcome {
        // A killed server must not accept installs into its about-to-be
        // discarded partition: the coordinator's retry lands on the restarted
        // incarnation instead, and a failed outcome here triggers the normal
        // abort round.
        if self.is_shutdown() {
            return InstallOutcome::CheckFailed("server is shut down".into());
        }
        // A version at or below the settled bound can no longer be installed:
        // its epoch has already been declared complete.
        if version <= self.epoch.visible_bound() {
            return InstallOutcome::OutsideEpoch;
        }
        // Evaluate checks before touching storage: per-partition installs are
        // all-or-nothing.
        for w in writes {
            if let Some(Check::KeyExists(key)) = &w.check {
                let exists = self
                    .partition
                    .store()
                    .chain(key)
                    .is_some_and(|c| !c.is_empty());
                if !exists {
                    return InstallOutcome::CheckFailed(format!("missing key {key:?}"));
                }
            }
        }
        // Log before installing, the whole batch atomically: a batch the log
        // rejects (closed by a concurrent kill) is failed wholesale, so no
        // acknowledged install can ever be missing from the log.
        if let Some(sink) = &self.wal {
            if sink.log_installs(version, writes).is_err() {
                return InstallOutcome::CheckFailed("wal closed during shutdown".into());
            }
            // Partial replication: mirror the logged frames into the ship
            // buffer (drained toward the standby at the epoch group commit).
            if self.ship.is_active() {
                for w in writes {
                    let mut buf = Vec::new();
                    WalRecord::Install {
                        key: w.key.clone(),
                        version,
                        functor: w.functor.clone(),
                    }
                    .encode_into(&mut buf);
                    self.ship.push(version.raw(), buf);
                }
            }
        }
        let installed_at = Instant::now();
        let mut mirrored = Vec::new();
        for w in writes {
            if self.replica.is_some() {
                mirrored.push((w.key.clone(), version, w.functor.clone()));
            }
            if self
                .partition
                .install(&w.key, version, w.functor.clone())
                .is_err()
            {
                return InstallOutcome::CheckFailed(format!("misrouted key {:?}", w.key));
            }
            self.stats.installs.incr();
            self.pending.lock().push(QueueEntry {
                key: w.key.clone(),
                version,
                installed_at,
                released_at: installed_at,
            });
        }
        // §III-A: acknowledge only once the backup holds the records too.
        if self.replicate(mirrored).is_err() {
            return InstallOutcome::CheckFailed("replication to backup failed".into());
        }
        InstallOutcome::Ok
    }

    /// The server holding this partition's backup (§III-A: one crash
    /// failure tolerated): the next server in the ring.
    pub fn backup_of(&self, id: ServerId) -> ServerId {
        ServerId((id.0 + 1) % self.total_servers)
    }

    /// Whether replication is enabled on this server.
    pub fn is_replicated(&self) -> bool {
        self.replica.is_some()
    }

    /// Synchronously mirrors write-only-phase records to this partition's
    /// backup; installs are acknowledged only once both copies exist.
    fn replicate(&self, records: Vec<(Key, Timestamp, Functor)>) -> Result<()> {
        if self.replica.is_none() || records.is_empty() {
            return Ok(());
        }
        let backup = self.backup_of(self.id);
        // Duplicated or retransmitted Replicate batches replay idempotently:
        // the backup's rebuild path first-write-wins per (key, version).
        self.rpc(backup, |reply| ServerMsg::Replicate {
            from: aloha_common::PartitionId(self.id.0),
            records: records.clone(),
            reply,
        })
    }

    /// Dump of the mirrored records this server holds for its predecessor's
    /// partition (empty when replication is off). Used to rebuild a lost
    /// partition.
    pub fn replica_dump(&self) -> Vec<(Key, Timestamp, Functor)> {
        self.replica
            .as_ref()
            .map(ReplicaStore::dump)
            .unwrap_or_default()
    }

    /// Rolls (key, version) back to ABORTED, logging the rollback when
    /// durability is enabled.
    ///
    /// If the durable log has been closed by a concurrent kill, the abort
    /// must not be lost — the version's *install* may already be durable and
    /// would replay as committed. The rollback is forwarded to this server's
    /// own address instead, where the restarted incarnation applies and logs
    /// it; the coordinator's ack ordering is preserved because forwarding
    /// blocks until the successor answers.
    pub(crate) fn abort_version_logged(&self, key: &Key, version: Timestamp) {
        if let Some(sink) = &self.wal {
            if sink.log_abort(key, version).is_err() {
                self.forward_abort_to_successor(key, version);
                return;
            }
            if self.ship.is_active() {
                let mut buf = Vec::new();
                WalRecord::Abort {
                    key: key.clone(),
                    version,
                }
                .encode_into(&mut buf);
                self.ship.push(version.raw(), buf);
            }
        }
        // Mirror the rollback as an ABORTED record (replays idempotently:
        // the backup's rebuild path force-aborts the version).
        let _ = self.replicate(vec![(key.clone(), version, Functor::Aborted)]);
        self.partition.abort_version(key, version);
    }

    /// Routes an abort this dead incarnation can no longer make durable to
    /// the server that replaced it on the transport. Retries through the restart
    /// window; `wait_retry` is not used because it gives up early once the
    /// shutdown flag — always set here — is raised.
    fn forward_abort_to_successor(&self, key: &Key, version: Timestamp) {
        let pairs: Arc<Vec<(Key, Timestamp)>> = Arc::new(vec![(key.clone(), version)]);
        for _ in 0..RPC_ATTEMPTS {
            let (slot, handle) = reply_pair();
            let sent = self.net.send(
                Addr::Server(self.id),
                ServerMsg::AbortVersion {
                    keys: Arc::clone(&pairs),
                    reply: slot,
                },
            );
            if sent.is_err() {
                // Instant network + endpoint still deregistered: wait out
                // part of the restart window and try again.
                std::thread::sleep(self.rpc_timeout);
                continue;
            }
            if handle.wait_timeout(self.rpc_timeout).is_ok() {
                return;
            }
        }
    }

    /// Snapshot of this server's write-ahead log (empty if durability is
    /// off). The in-memory sink clones chunk handles under its lock and
    /// assembles outside it; the disk sink reads its segments back.
    pub fn wal_snapshot(&self) -> Vec<u8> {
        self.wal.as_ref().map(WalSink::snapshot).unwrap_or_default()
    }

    /// Epoch group commit: makes the records accumulated this epoch durable
    /// (flush + policy fsync) before the epoch's completion is acknowledged.
    ///
    /// With a standby attached, the epoch's ship buffer is drained here too
    /// — on the transport's reliable lane, and strictly before the caller
    /// emits the `RevokedAck` — so "the epoch settled" implies "its frames
    /// reached the standby's apply queue". That ordering is the heart of the
    /// failover safety argument (DESIGN.md §14).
    pub(crate) fn commit_wal(&self) {
        if let Some(sink) = &self.wal {
            sink.commit();
        }
        if let Some(batch) = self.ship.drain() {
            // The epoch just settled, so every version it logged is final on
            // this partition: ship the final forms instead of the original
            // functors. The standby then holds settled values — promotion
            // re-seeds only the unsettled mid-epoch tail into the pending
            // set, not the entire shipped history, and never recomputes a
            // user functor whose remote read-set may since have been
            // compacted away on its owners. A frame that does NOT resolve
            // belongs to a later, still-open epoch that raced into this
            // drain; it is held back for that epoch's drain — shipping it
            // raw would leave a record on the standby that no later batch
            // ever settles, pinning its chain's watermark (and compaction)
            // forever.
            let mut frames = Vec::with_capacity(batch.frames.len());
            let mut held = Vec::new();
            for (version, buf) in batch.frames {
                match self.settle_frame(&buf) {
                    ShipFrame::AsIs => frames.push((version, buf)),
                    ShipFrame::Settled(out) => frames.push((version, out)),
                    ShipFrame::Hold => held.push((version, buf)),
                }
            }
            if !held.is_empty() {
                // Held frames are the buffer's newest; frames pushed after
                // the drain are newer still, so front-requeue keeps order.
                self.ship.requeue(held);
            }
            if frames.is_empty() {
                return;
            }
            let feed = Arc::clone(&self.ship);
            // The standby acks with its post-apply watermark; the primary
            // only records it (shipping is asynchronous — durability is the
            // WAL's job, the standby is for availability).
            let reply = ReplySlot::from_fn(move |wm| feed.note_acked(wm));
            let frames = Arc::new(frames);
            if self
                .net
                .send_reliable(
                    Addr::Replica(self.id),
                    ServerMsg::ShipBatch {
                        from: aloha_common::PartitionId(self.id.0),
                        watermark: batch.watermark,
                        frames: Arc::clone(&frames),
                        reply,
                    },
                )
                .is_err()
            {
                // Refused send (standby endpoint mid-swap): keep the frames
                // in the feed so promotion's leftover drain still sees them
                // — every logged frame must be applied, queued at the
                // standby, or buffered here.
                let frames = Arc::try_unwrap(frames).unwrap_or_else(|a| (*a).clone());
                self.ship.requeue(frames);
            }
        }
    }

    /// Classifies one buffered ship frame against the partition's record
    /// state: already final (aborts, values, re-settled requeues) frames
    /// ship as-is, a pending install whose record has since settled ships
    /// re-encoded with the final form, and one still uncomputed — a frame
    /// from a later, still-open epoch that raced into this drain — is held
    /// for that epoch's drain.
    fn settle_frame(&self, buf: &[u8]) -> ShipFrame {
        let Some(Ok(WalRecord::Install {
            key,
            version,
            functor,
        })) = read_log(buf).next()
        else {
            return ShipFrame::AsIs;
        };
        if functor.is_final() {
            return ShipFrame::AsIs;
        }
        let form = self
            .partition
            .store()
            .chain(&key)
            .and_then(|chain| chain.read_at(version))
            .and_then(|read| match read {
                ChainRead::Final(_, form) => Some(form),
                ChainRead::Live(rec) => rec.final_form(),
            });
        let Some(form) = form else {
            return ShipFrame::Hold;
        };
        let mut out = Vec::new();
        WalRecord::Install {
            key,
            version,
            functor: form.into_functor(),
        }
        .encode_into(&mut out);
        ShipFrame::Settled(out)
    }

    /// The partial-replication shipping tap (inactive unless the replica
    /// controller attached a standby for this partition).
    pub(crate) fn ship_feed(&self) -> &Arc<ShipFeed> {
        &self.ship
    }

    /// Replays a write-ahead log into this partition, skipping records at or
    /// below `checkpoint` (see [`aloha_storage::wal::replay_log`]). Returns
    /// the number of records applied and the highest version applied.
    ///
    /// # Errors
    ///
    /// Fails on corrupt logs.
    pub fn replay_wal(&self, log: &[u8], checkpoint: Timestamp) -> Result<(usize, Timestamp)> {
        aloha_storage::wal::replay_log(&self.partition, log, checkpoint)
    }

    pub(crate) fn resolve_local(&self, key: &Key, version: Timestamp) -> Result<VersionState> {
        self.partition.compute(key, version, self.as_env())?;
        let Some(chain) = self.partition.store().chain(key) else {
            return Ok(VersionState::Missing);
        };
        let form = match chain.read_at(version) {
            Some(ChainRead::Final(_, form)) => form,
            // After compute the record is final: read its outcome without
            // cloning the functor.
            Some(ChainRead::Live(rec)) => rec
                .final_form()
                .unwrap_or_else(|| unreachable!("compute left non-final record at {key:?}")),
            None if version <= chain.compacted_floor() => {
                // The version was folded by compaction. Aborted records are
                // never folded, so a folded version necessarily committed;
                // probes only consume the outcome, and its exact written
                // value has been superseded by the surviving base anyway.
                return Ok(match chain.floor(version) {
                    Some(ChainRead::Final(_, FinalForm::Value(v))) => VersionState::Committed(v),
                    _ => VersionState::Committed(Value::default()),
                });
            }
            None => return Ok(VersionState::Missing),
        };
        Ok(match form {
            FinalForm::Value(v) => VersionState::Committed(v),
            FinalForm::Aborted => VersionState::Aborted,
            FinalForm::Deleted => VersionState::Deleted,
        })
    }

    fn handle_grant(&self, grant: Grant) {
        self.epoch.on_grant(grant);
        // Everything at or below the settled bound is installed; release its
        // buffered metadata to the processors (§IV-D).
        let settled = grant.settled;
        let released_at = Instant::now();
        let mut pending = self.pending.lock();
        let mut keep = Vec::with_capacity(pending.len());
        // The pending lock is held across the inflight inserts and queue
        // sends, so a released entry is never outside both structures — the
        // compute frontier cannot advance past a functor in mid-handoff.
        let mut inflight = self.inflight.lock();
        for mut entry in pending.drain(..) {
            if entry.version <= settled {
                // The functor waited from install until its epoch settled:
                // that wait is the epoch-close stage (§III-D).
                self.stats.tracer.record_stage(
                    Stage::EpochClose,
                    duration_micros(released_at.duration_since(entry.installed_at)),
                );
                entry.released_at = released_at;
                inflight
                    .entry(entry.version)
                    .or_default()
                    .push(entry.key.clone());
                let _ = self.queue_tx.send(entry);
            } else {
                keep.push(entry);
            }
        }
        drop(inflight);
        *pending = keep;
        drop(pending);
        // Epoch close is the batching layer's hard boundary: whatever is
        // still queued belongs to work of the epoch that just settled (or
        // earlier) and must not wait out another deadline.
        if let Some(b) = &self.batcher {
            b.flush();
        }
        // Push-cache entries two grants old can no longer be needed.
        let mut prev = self.prev_settled.lock();
        self.partition.push_cache().clear_below(*prev);
        *prev = settled;
    }

    /// This backend's local compute frontier: every functor it hosts with a
    /// version strictly below the returned bound has been computed. The
    /// frontier is the minimum over the buffered (`pending`) and released
    /// (`inflight`) metadata, capped at the visible bound — with nothing
    /// outstanding a server vouches for everything settled so far.
    /// Piggybacked on each revoke ack; the EM min-merges the cluster and
    /// redistributes the result in grants as the compaction horizon.
    /// Re-buffers every still-uncomputed record in the store as pending
    /// compute work — the same seeding [`Server::new`] performs after
    /// recovery. Needed whenever records are reinstated into a *running*
    /// server behind `install_batch`'s back (a §III-A rebuild from a backup
    /// dump): without it the compute frontier keeps vouching for versions
    /// nothing will ever compute, and frontier snapshot reads serve stale
    /// floors below them. Duplicate entries are harmless — computes are
    /// idempotent and the processor turn dedups by key.
    pub(crate) fn reseed_uncomputed(&self) {
        let seeded_at = Instant::now();
        let mut pending = self.pending.lock();
        self.partition.store().for_each_chain(|key, chain| {
            for record in chain.uncomputed_in(Timestamp::ZERO, Timestamp::MAX) {
                pending.push(QueueEntry {
                    key: key.clone(),
                    version: record.version(),
                    installed_at: seeded_at,
                    released_at: seeded_at,
                });
            }
        });
    }

    pub(crate) fn compute_frontier(&self) -> Timestamp {
        let mut frontier = self.epoch.visible_bound();
        if let Some(min) = self.pending.lock().iter().map(|e| e.version).min() {
            frontier = frontier.min(min);
        }
        let mut inflight = self.inflight.lock();
        // Lazily retire versions whose computes landed through another path
        // (on-demand reads compute chains too): only the map's front matters
        // for the minimum. A version whose processor compute *failed* stays
        // put and pins the frontier — conservative, never unsound.
        while let Some((&version, keys)) = inflight.iter().next() {
            if version >= frontier {
                break;
            }
            let store = self.partition.store();
            let done = keys.iter().all(|k| {
                store
                    .chain(k)
                    .is_some_and(|c| c.uncomputed_in(version, version).is_empty())
            });
            if done {
                inflight.remove(&version);
            } else {
                frontier = version;
                break;
            }
        }
        frontier
    }

    pub(crate) fn as_env(&self) -> &dyn ComputeEnv {
        self
    }

    /// Serializes this partition's settled state at `at` (see
    /// [`aloha_storage::snapshot`]).
    ///
    /// # Errors
    ///
    /// Propagates transport failures from on-demand computing.
    pub fn write_checkpoint(&self, at: Timestamp) -> Result<Vec<u8>> {
        aloha_storage::snapshot::write_checkpoint(&self.partition, at, self.as_env())
    }

    /// Restores a checkpoint blob into this partition (before serving
    /// traffic).
    ///
    /// # Errors
    ///
    /// Fails on malformed blobs.
    pub fn restore_checkpoint(&self, blob: &[u8]) -> Result<Timestamp> {
        aloha_storage::snapshot::restore_checkpoint(&self.partition, blob)
    }
}

impl ComputeEnv for Server {
    fn remote_get(&self, key: &Key, bound: Timestamp) -> Result<VersionedRead> {
        let owner = self.owner_of(key);
        if owner == self.id {
            return self.partition.get(key, bound, self.as_env());
        }
        self.rpc_batched(owner, |reply| ServerMsg::RemoteGet {
            key: key.clone(),
            bound,
            reply,
        })?
    }

    /// The functor-computing phase's gather step: locally-owned keys read
    /// straight from the partition; remote keys are grouped by owner and
    /// fetched with one `RemoteGetBatch` round trip per owner, all requests
    /// in flight before the first reply is awaited (parallel fan-out).
    fn remote_get_many(&self, keys: &[Key], bound: Timestamp) -> Result<Vec<VersionedRead>> {
        // The grouped gather belongs to the destination-batched pipeline:
        // without a batcher the server keeps the classic one-RPC-per-key
        // gather, which is what the batching ablation measures against.
        if keys.len() <= 1 || self.batcher.is_none() {
            return keys.iter().map(|k| self.remote_get(k, bound)).collect();
        }
        let mut by_owner: HashMap<ServerId, Vec<usize>> = HashMap::new();
        for (i, key) in keys.iter().enumerate() {
            by_owner.entry(self.owner_of(key)).or_default().push(i);
        }
        let mut out: Vec<Option<VersionedRead>> = vec![None; keys.len()];
        let mut waits = Vec::new();
        for (owner, idxs) in by_owner {
            if owner == self.id {
                for &i in &idxs {
                    out[i] = Some(self.partition.get(&keys[i], bound, self.as_env())?);
                }
                continue;
            }
            let group: Arc<Vec<Key>> = Arc::new(idxs.iter().map(|&i| keys[i].clone()).collect());
            let (slot, handle) = reply_pair();
            self.send_msg(
                owner,
                ServerMsg::RemoteGetBatch {
                    keys: Arc::clone(&group),
                    bound,
                    reply: slot,
                },
            )?;
            waits.push((owner, idxs, group, handle));
        }
        for (owner, idxs, group, handle) in waits {
            let resend = |reply| ServerMsg::RemoteGetBatch {
                keys: Arc::clone(&group),
                bound,
                reply,
            };
            let reads = self.wait_retry(handle, owner, resend)??;
            if reads.len() != idxs.len() {
                return Err(Error::Config(format!(
                    "remote get batch answered {} reads for {} keys",
                    reads.len(),
                    idxs.len()
                )));
            }
            for (&i, read) in idxs.iter().zip(reads) {
                out[i] = Some(read);
            }
        }
        Ok(out
            .into_iter()
            .map(|read| read.expect("every key index is covered by exactly one owner group"))
            .collect())
    }

    fn install_deferred(&self, key: &Key, version: Timestamp, functor: Functor) -> Result<()> {
        let owner = self.owner_of(key);
        if owner == self.id {
            self.partition.store().put(key, version, functor);
            return Ok(());
        }
        self.rpc_batched(owner, |reply| ServerMsg::InstallDeferred {
            key: key.clone(),
            version,
            functor: functor.clone(),
            reply,
        })
    }

    fn ensure_computed(&self, key: &Key, upto: Timestamp) -> Result<()> {
        let owner = self.owner_of(key);
        if owner == self.id {
            return self.partition.compute(key, upto, self.as_env());
        }
        self.rpc_batched(owner, |reply| ServerMsg::ResolveVersion {
            key: key.clone(),
            version: upto,
            reply,
        })?
        .map(|_| ())
    }

    fn push_value(&self, recipient: &Key, version: Timestamp, source: &Key, read: &VersionedRead) {
        let owner = self.owner_of(recipient);
        if owner == self.id {
            self.partition
                .push_cache()
                .insert(version, source.clone(), read.clone());
        } else {
            let _ = self.send_msg(
                owner,
                ServerMsg::PushValue {
                    version,
                    source: source.clone(),
                    read: read.clone(),
                },
            );
        }
    }
}

/// RAII registration of an in-flight snapshot read (see
/// [`Server::register_snapshot_read`]): while alive, the compaction sweeper
/// will not fold history at or above the registered bound.
pub(crate) struct ReadGuard<'a> {
    server: &'a Server,
    bound: Timestamp,
}

impl Drop for ReadGuard<'_> {
    fn drop(&mut self) {
        let mut floors = self.server.read_floors.lock();
        if let Some(n) = floors.get_mut(&self.bound) {
            *n -= 1;
            if *n == 0 {
                floors.remove(&self.bound);
            }
        }
    }
}

/// FE-side settled-snapshot reader handed to transforms.
struct FeSnapshotReader<'a> {
    server: &'a Arc<Server>,
    bound: Timestamp,
    /// Whether to log (key, version) pairs for the history checker.
    record: bool,
    /// Versions observed by this transaction's transform, in read order.
    reads: Mutex<Vec<(Key, Timestamp)>>,
}

impl SnapshotReader for FeSnapshotReader<'_> {
    fn read(&self, key: &Key) -> Result<VersionedRead> {
        // `remote_get` already routes locally-owned keys to the partition, so
        // there is exactly one ownership check on this path.
        let read = self.server.as_env().remote_get(key, self.bound)?;
        if self.record {
            self.reads.lock().push((key.clone(), read.version));
        }
        Ok(read)
    }

    fn snapshot_bound(&self) -> Timestamp {
        self.bound
    }
}

/// Handle to a coordinated transaction: resolves the computing-phase outcome.
#[derive(Debug)]
pub struct TxnHandle {
    fe: Arc<Server>,
    ts: Timestamp,
    probe: Option<Key>,
    aborted_at_install: bool,
    issued_at: Instant,
    /// Lifecycle timer carried from [`Server::coordinate`]; consumed by the
    /// first [`TxnHandle::wait_processed`] to seal the transaction's trace.
    timer: Mutex<Option<TxnTimer>>,
    /// Admission token held while the transaction is in flight (`None` when
    /// the FE is ungated). Released when the handle drops, so the window
    /// covers the whole lifecycle — install through functor processing.
    permit: Mutex<Option<Permit>>,
}

impl TxnHandle {
    /// The transaction's timestamp (its version and serialization position).
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }

    /// Attaches the FE admission token this transaction was admitted under;
    /// the token returns to the gate when the handle drops.
    pub(crate) fn attach_permit(&self, permit: Permit) {
        *self.permit.lock() = Some(permit);
    }

    /// Whether the write-only phase already aborted the transaction.
    pub fn aborted_at_install(&self) -> bool {
        self.aborted_at_install
    }

    /// Blocks until the transaction's functors are fully processed and
    /// returns the outcome. This matches the paper's latency measurement:
    /// "from when the transaction is issued ... until its functors are fully
    /// processed" (§V-A3).
    ///
    /// # Errors
    ///
    /// Fails on shutdown or transport errors.
    pub fn wait_processed(&self) -> Result<TxnOutcome> {
        let outcome = self.wait_inner()?;
        self.fe
            .stats
            .latency
            .record(duration_micros(self.issued_at.elapsed()));
        let committed = outcome == TxnOutcome::Committed;
        match outcome {
            TxnOutcome::Committed => self.fe.stats.committed.incr(),
            TxnOutcome::Aborted => self.fe.stats.aborted.incr(),
        }
        if let Some(mut timer) = self.timer.lock().take() {
            // Everything after the write-only phase — waiting for the epoch
            // to settle and the outcome probe — is the commit stage from the
            // coordinator's viewpoint. BE-side stages (epoch close, functor
            // computing) are recorded by the backend that observes them, so
            // this trace carries only FE-observable stages.
            self.fe
                .stats
                .tracer
                .record_stage(Stage::Commit, timer.mark(Stage::Commit));
            self.fe.stats.tracer.record_trace(timer.finish(committed));
        }
        Ok(outcome)
    }

    fn wait_inner(&self) -> Result<TxnOutcome> {
        if self.aborted_at_install {
            return Ok(TxnOutcome::Aborted);
        }
        let Some(probe) = &self.probe else {
            return Ok(TxnOutcome::Committed); // empty write set
        };
        if !self.fe.epoch.wait_visible(self.ts, None) {
            return Err(Error::ShuttingDown);
        }
        match self.fe.resolve(probe, self.ts)? {
            VersionState::Committed(_) | VersionState::Deleted => Ok(TxnOutcome::Committed),
            VersionState::Aborted => Ok(TxnOutcome::Aborted),
            VersionState::Missing => Err(Error::KeyNotFound(probe.clone())),
        }
    }
}

/// Dispatcher thread body: routes transport messages to the server.
pub(crate) fn run_dispatcher(server: Arc<Server>, endpoint: Endpoint<ServerMsg>) {
    loop {
        let msg = match endpoint.recv() {
            Ok(m) => m,
            Err(_) => break, // transport gone
        };
        if handle_msg(&server, msg).is_break() {
            break;
        }
    }
}

/// Handles one dispatched message; `Break` means the dispatcher should exit.
fn handle_msg(server: &Arc<Server>, msg: ServerMsg) -> std::ops::ControlFlow<()> {
    use std::ops::ControlFlow;
    match msg {
        // A batch envelope is unpacked in order; its members are handled
        // exactly as if they had arrived individually. A Shutdown inside a
        // batch still stops the dispatcher (after the preceding members).
        ServerMsg::Batch(msgs) => {
            for inner in msgs {
                handle_msg(server, inner)?;
            }
        }
        ServerMsg::Grant(grant) => server.handle_grant(grant),
        ServerMsg::Revoke(epoch) => {
            if server.epoch.on_revoke(epoch) {
                // Group commit point: the revoke ack is what lets the EM
                // settle this epoch, so everything the epoch installed must
                // hit the log first (fsync per policy).
                server.commit_wal();
                let ack = RevokedAck {
                    server: server.id,
                    epoch,
                    frontier: server.compute_frontier(),
                };
                let _ = server
                    .net
                    .send(Addr::EpochManager, ServerMsg::RevokedAck(ack));
            }
        }
        ServerMsg::RevokedAck(_) => {} // only the EM endpoint receives these
        // Log shipping targets `Addr::Replica(_)` endpoints, which run the
        // standby apply loop (`replication::run_standby`) — a server
        // endpoint drops a stray batch and lets the unanswered reply age
        // out like a lost message.
        ServerMsg::ShipBatch { .. } => {}
        // Per-key work runs on the executor's key-sharded lane: one FIFO
        // queue per worker, routed by `ServerMsg::shard_hash`, so same-key
        // messages never reorder while distinct keys proceed in parallel.
        // With replication on, install_batch blocks on the backup's ack;
        // that is safe on a sharded worker because `Replicate` is answered
        // inline by the (never-blocking) dispatcher below, so a ring of
        // servers replicating to each other cannot deadlock.
        msg @ (ServerMsg::Install { .. }
        | ServerMsg::AbortVersion { .. }
        | ServerMsg::InstallDeferred { .. }
        | ServerMsg::PushValue { .. }) => {
            let hash = msg.shard_hash().unwrap_or(0);
            let s = Arc::clone(server);
            server.exec.submit_sharded(hash, move || match msg {
                ServerMsg::Install {
                    version,
                    writes,
                    reply,
                } => {
                    reply.send(s.install_batch(version, &writes));
                }
                ServerMsg::AbortVersion { keys, reply } => {
                    for (key, version) in keys.iter() {
                        s.abort_version_logged(key, *version);
                    }
                    reply.send(());
                }
                ServerMsg::InstallDeferred {
                    key,
                    version,
                    functor,
                    reply,
                } => {
                    s.partition.store().put(&key, version, functor);
                    reply.send(());
                }
                ServerMsg::PushValue {
                    version,
                    source,
                    read,
                } => s.partition.push_cache().insert(version, source, read),
                _ => unreachable!("only per-key messages are routed here"),
            });
        }
        // Requests that may themselves block on other partitions run on the
        // executor's blocking lane, which spills over to a fresh thread when
        // every pooled worker is busy — so the dispatcher never deadlocks
        // and, as before the pool, functor recursion (strictly decreasing
        // versions) bounds the blocked-thread depth. The time a request
        // waits for a worker is part of the asynchronous computing phase,
        // so it is recorded into the `functor_computing` stage: pool
        // saturation shows up in the cluster percentiles.
        ServerMsg::RemoteGet { key, bound, reply } => {
            let s = Arc::clone(server);
            let enqueued = Instant::now();
            server.exec.submit_blocking(move || {
                s.stats
                    .tracer
                    .record_stage(Stage::FunctorComputing, duration_micros(enqueued.elapsed()));
                reply.send(s.partition.get(&key, bound, s.as_env()));
            });
        }
        ServerMsg::RemoteGetBatch { keys, bound, reply } => {
            let s = Arc::clone(server);
            let enqueued = Instant::now();
            server.exec.submit_blocking(move || {
                s.stats
                    .tracer
                    .record_stage(Stage::FunctorComputing, duration_micros(enqueued.elapsed()));
                let reads = keys
                    .iter()
                    .map(|key| s.partition.get(key, bound, s.as_env()))
                    .collect::<Result<Vec<VersionedRead>>>();
                reply.send(reads);
            });
        }
        // Snapshot reads never compute functors, but the `Pending` fallback
        // inside `snapshot_read_local` can block on other partitions, so
        // they take the blocking lane too. No stage is recorded here — the
        // requesting front-end records the end-to-end `snapshot_read` stage.
        ServerMsg::SnapshotRead { key, bound, reply } => {
            let s = Arc::clone(server);
            server.exec.submit_blocking(move || {
                let _guard = s.register_snapshot_read(bound);
                reply.send(s.snapshot_read_local(&key, bound));
            });
        }
        ServerMsg::SnapshotReadBatch { keys, bound, reply } => {
            let s = Arc::clone(server);
            server.exec.submit_blocking(move || {
                let _guard = s.register_snapshot_read(bound);
                let reads = keys
                    .iter()
                    .map(|key| s.snapshot_read_local(key, bound))
                    .collect::<Result<Vec<VersionedRead>>>();
                reply.send(reads);
            });
        }
        ServerMsg::ResolveVersion {
            key,
            version,
            reply,
        } => {
            let s = Arc::clone(server);
            let enqueued = Instant::now();
            server.exec.submit_blocking(move || {
                s.stats
                    .tracer
                    .record_stage(Stage::FunctorComputing, duration_micros(enqueued.elapsed()));
                reply.send(s.resolve_local(&key, version));
            });
        }
        ServerMsg::Replicate {
            from: _,
            records,
            reply,
        } => {
            if let Some(replica) = &server.replica {
                replica.append(records);
            }
            reply.send(());
        }
        ServerMsg::Shutdown => return ControlFlow::Break(()),
    }
    ControlFlow::Continue(())
}

/// How many queued entries one processor turn drains at most, and how many
/// scoped workers it fans the distinct keys out to. Small on purpose: the
/// steady-state parallelism comes from the configured processor threads; the
/// crew only spreads the burst an epoch grant releases all at once.
const DRAIN_LIMIT: usize = 64;
const CREW_SIZE: usize = 4;

/// Processor thread body: the BE's asynchronous functor computing pool
/// (§IV-D), organized as a small work-crew.
///
/// An epoch grant releases a burst of entries at once; instead of computing
/// them strictly one at a time, a turn drains up to [`DRAIN_LIMIT`] entries,
/// deduplicates them by key (computing a chain to its highest released
/// version settles every lower version in order, so one call covers the
/// whole burst for that key), and resolves distinct keys concurrently on a
/// scoped crew. Dependency safety needs no extra machinery: version order
/// within a chain is enforced by the chain itself, and concurrent computes
/// of the same key are idempotent.
pub(crate) fn run_processor(server: Arc<Server>, queue: Receiver<QueueEntry>) {
    // The poll slice bounds how long a kill waits for idle processors to
    // notice the shutdown flag — it is the constant floor under every
    // failover/restart downtime figure, so keep it tight; an idle wakeup
    // every few ms costs nothing.
    while let Some(first) =
        aloha_net::recv_while(&queue, Duration::from_millis(2), || !server.is_shutdown())
    {
        let mut entries = vec![first];
        while entries.len() < DRAIN_LIMIT {
            match queue.try_recv() {
                Ok(entry) => entries.push(entry),
                Err(_) => break,
            }
        }
        // One compute target per distinct key: its highest released version.
        let mut targets: HashMap<&Key, Timestamp> = HashMap::new();
        for entry in &entries {
            let upto = targets.entry(&entry.key).or_insert(entry.version);
            if entry.version > *upto {
                *upto = entry.version;
            }
        }
        let targets: Vec<(&Key, Timestamp)> = targets.into_iter().collect();
        let failed: Mutex<Vec<Key>> = Mutex::new(Vec::new());
        if targets.len() == 1 {
            let (key, upto) = targets[0];
            if server
                .partition
                .compute(key, upto, server.as_env())
                .is_err()
            {
                failed.lock().push(key.clone());
            }
        } else {
            let crew = targets.len().min(CREW_SIZE);
            std::thread::scope(|scope| {
                for worker in 0..crew {
                    let targets = &targets;
                    let server = &server;
                    let failed = &failed;
                    scope.spawn(move || {
                        for (key, upto) in targets.iter().skip(worker).step_by(crew) {
                            if server
                                .partition
                                .compute(key, *upto, server.as_env())
                                .is_err()
                            {
                                failed.lock().push((*key).clone());
                            }
                        }
                    });
                }
            });
        }
        let failed = failed.into_inner();
        server.stats.compute_errors.add(failed.len() as u64);
        // Retire the drained entries from the frontier's inflight map.
        // Computing a key to its highest released version finalizes every
        // lower version too, so each successful key clears all its entries;
        // failed keys stay and (conservatively) pin the compute frontier
        // until an on-demand read computes them.
        let mut inflight = server.inflight.lock();
        for entry in &entries {
            if failed.contains(&entry.key) {
                continue;
            }
            if let Some(keys) = inflight.get_mut(&entry.version) {
                if let Some(pos) = keys.iter().position(|k| *k == entry.key) {
                    keys.swap_remove(pos);
                }
                if keys.is_empty() {
                    inflight.remove(&entry.version);
                }
            }
        }
        drop(inflight);
        // Queue wait plus the compute itself: everything after the epoch
        // released the functor is the computing stage (§IV-D). Recorded per
        // released entry, as before, so rollups keep per-functor semantics.
        for entry in &entries {
            server.stats.tracer.record_stage(
                Stage::FunctorComputing,
                duration_micros(entry.released_at.elapsed()),
            );
        }
    }
}
