//! Cluster message protocol: everything that travels on the bus.

use std::sync::Arc;

use aloha_common::{EpochId, Key, Result, Timestamp, Value};
use aloha_epoch::{Grant, RevokedAck};
use aloha_functor::{Functor, VersionedRead};
use aloha_net::ReplySlot;

use crate::program::Write;

/// Result of installing one transaction's writes on one partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstallOutcome {
    /// All writes installed.
    Ok,
    /// A pre-install check failed (e.g. TPC-C invalid item); the coordinator
    /// must run the second abort round (§V-A2).
    CheckFailed(String),
    /// The version was no longer inside an installable epoch (late message).
    OutsideEpoch,
}

impl InstallOutcome {
    /// Whether this partition accepted the writes.
    pub fn is_ok(&self) -> bool {
        matches!(self, InstallOutcome::Ok)
    }
}

/// Final state of one (key, version) record, reported by `ResolveVersion`.
///
/// Any single functor of a transaction suffices to learn the transaction's
/// outcome, "because any of the functors will result in abort if the
/// transaction is aborted" (§IV-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VersionState {
    /// The version committed with this value.
    Committed(Value),
    /// The version is an abort marker.
    Aborted,
    /// The version is a delete tombstone (a committed delete).
    Deleted,
    /// No record exists at that exact version.
    Missing,
}

/// Messages exchanged between servers, the epoch manager and coordinators.
///
/// Request/reply interactions carry a [`ReplySlot`]; everything else is
/// fire-and-forget.
///
/// Messages are `Clone` so the fault-injection layer can duplicate them in
/// flight: a duplicated request carries a clone of the same [`ReplySlot`],
/// and the requester consumes whichever reply lands first.
#[derive(Debug, Clone)]
pub enum ServerMsg {
    /// EM → FE: a new epoch's authorization.
    Grant(Grant),
    /// EM → FE: revoke the authorization of `EpochId`.
    Revoke(EpochId),
    /// FE → EM: the epoch has drained here.
    RevokedAck(RevokedAck),
    /// FE → BE: install a transaction's writes for this partition
    /// (the write-only phase).
    Install {
        /// The transaction's timestamp (the version to install at).
        version: Timestamp,
        /// Writes owned by the destination partition. Shared so the initial
        /// send, a retransmission and a fault-layer duplicate all reference
        /// one allocation instead of deep-cloning the write group.
        writes: Arc<Vec<Write>>,
        /// Install outcome back to the coordinator.
        reply: ReplySlot<InstallOutcome>,
    },
    /// FE → BE: second abort round — rewrite these versions to `ABORTED`.
    /// Acked so the coordinator can hold the epoch open until every
    /// participant has rolled back (otherwise sibling functors of the
    /// aborted transaction could become visible committed).
    AbortVersion {
        /// (key, version) pairs to abort, shared between the initial send
        /// and any retransmission.
        keys: Arc<Vec<(Key, Timestamp)>>,
        /// Rollback acknowledgement.
        reply: ReplySlot<()>,
    },
    /// BE → BE: read the latest final value of `key` at version `<= bound`
    /// (remote read during functor computing, or a delayed read-only
    /// transaction touching a remote partition).
    RemoteGet {
        /// Key owned by the destination partition.
        key: Key,
        /// Inclusive version bound.
        bound: Timestamp,
        /// The versioned read result.
        reply: ReplySlot<Result<VersionedRead>>,
    },
    /// BE → BE: read several keys of one destination partition at the same
    /// bound with a single round trip. The functor-computing phase groups a
    /// functor's remote read-set by owner and issues one of these per owner
    /// in parallel, replacing sequential per-key `RemoteGet`s.
    RemoteGetBatch {
        /// Keys owned by the destination partition, shared between the
        /// initial send and any retransmission.
        keys: Arc<Vec<Key>>,
        /// Inclusive version bound applied to every key.
        bound: Timestamp,
        /// Reads in `keys` order, or the first error (the caller fails the
        /// whole functor computation either way, so partial results carry no
        /// information).
        reply: ReplySlot<Result<Vec<VersionedRead>>>,
    },
    /// FE → BE: snapshot-read fast path — read the latest committed value of
    /// `key` at the cluster compute frontier (§III-B bypass). Unlike
    /// `RemoteGet`, the bound is a frontier timestamp, so the answer comes
    /// straight off the packed settled section of the version chain with no
    /// functor computing and no epoch wait.
    SnapshotRead {
        /// Key owned by the destination partition.
        key: Key,
        /// Inclusive snapshot timestamp (a frontier the sender absorbed).
        bound: Timestamp,
        /// The versioned read result.
        reply: ReplySlot<Result<VersionedRead>>,
    },
    /// FE → BE: several snapshot reads for one destination partition at the
    /// same frontier with a single round trip, mirroring `RemoteGetBatch`'s
    /// grouped fan-out.
    SnapshotReadBatch {
        /// Keys owned by the destination partition, shared between the
        /// initial send and any retransmission.
        keys: Arc<Vec<Key>>,
        /// Inclusive snapshot timestamp applied to every key.
        bound: Timestamp,
        /// Reads in `keys` order, or the first error.
        reply: ReplySlot<Result<Vec<VersionedRead>>>,
    },
    /// BE → BE: install a deferred write produced by a determinate functor
    /// (§IV-E). Acked so the producer can order its own finalization after
    /// the install.
    InstallDeferred {
        /// Dependent key owned by the destination partition.
        key: Key,
        /// The determinate functor's version.
        version: Timestamp,
        /// Final-form functor to install.
        functor: Functor,
        /// Ack.
        reply: ReplySlot<()>,
    },
    /// Coordinator/BE → BE: compute `key` up to `version` and report the
    /// state of the record at exactly `version` (used both to learn a
    /// transaction's outcome and to enforce the §IV-E watermark rule).
    ResolveVersion {
        /// Key owned by the destination partition.
        key: Key,
        /// Version to settle up to and inspect.
        version: Timestamp,
        /// Record state (or transport/compute error).
        reply: ReplySlot<Result<VersionState>>,
    },
    /// BE → BE: proactive value push for a recipient-set functor (§IV-B).
    PushValue {
        /// The functor version the push is for.
        version: Timestamp,
        /// The key whose value is being pushed.
        source: Key,
        /// The pushed versioned read.
        read: VersionedRead,
    },
    /// Primary → backup: mirror write-only-phase records (§III-A
    /// replication). Acked so the primary can make installs durable-on-two-
    /// nodes before acknowledging the coordinator.
    Replicate {
        /// The primary partition being mirrored.
        from: aloha_common::PartitionId,
        /// Install records: (key, version, functor); aborts are encoded as
        /// `ABORTED` functors at the version.
        records: Vec<(Key, Timestamp, Functor)>,
        /// Replication ack.
        reply: ReplySlot<()>,
    },
    /// Primary → standby: partial-replication log shipping. One epoch's WAL
    /// group commit — the exact `(version, encoded frame)` payloads the
    /// durable log just committed — stamped with the cumulative replicated
    /// watermark the standby covers once it applies them. Sent on the
    /// transport's reliable lane just *before* the epoch's `RevokedAck`, so
    /// a settled epoch implies its frames reached the standby's queue. An
    /// empty frame list is a flush barrier: the reply alone is wanted (the
    /// promotion path uses it to wait out the standby's apply queue).
    ShipBatch {
        /// The primary partition being replicated.
        from: aloha_common::PartitionId,
        /// Replicated watermark after this batch applies.
        watermark: Timestamp,
        /// `(version, encoded WAL frame)` in log order, shared so a
        /// fault-layer duplicate references the same allocation.
        frames: Arc<Vec<(u64, Vec<u8>)>>,
        /// The standby's post-apply watermark (the replication ack).
        reply: ReplySlot<Timestamp>,
    },
    /// Batch envelope produced by the [`aloha_net::Batcher`]: several
    /// messages coalesced toward one destination. The dispatcher unpacks it
    /// in order; the fault layer drops/duplicates/reorders whole envelopes,
    /// so retry semantics are those of the inner messages.
    Batch(Vec<ServerMsg>),
    /// Cluster shutdown: the dispatcher exits after processing this.
    Shutdown,
}

impl ServerMsg {
    /// The hash that routes this message onto the executor's key-sharded
    /// lane, or `None` for messages that are not per-key work (and are
    /// handled inline by the dispatcher or on the blocking lane).
    ///
    /// Multi-key messages route by their *first* key. A transaction's
    /// install group for one partition and its abort round for the same
    /// partition list keys in the same order, so both land on the same
    /// shard queue; correctness does not depend on it (aborts pre-abort and
    /// installs are first-write-wins), but it keeps the common case
    /// ordered.
    pub fn shard_hash(&self) -> Option<u64> {
        match self {
            ServerMsg::Install { writes, .. } => {
                Some(writes.first().map_or(0, |w| w.key.stable_hash()))
            }
            ServerMsg::AbortVersion { keys, .. } => {
                Some(keys.first().map_or(0, |(k, _)| k.stable_hash()))
            }
            ServerMsg::InstallDeferred { key, .. } => Some(key.stable_hash()),
            ServerMsg::PushValue { source, .. } => Some(source.stable_hash()),
            _ => None,
        }
    }

    /// Rough on-wire payload size, used by the [`aloha_net::Batcher`] byte
    /// threshold. Counts variable payload (keys, values, args) plus a fixed
    /// per-message overhead; exact framing doesn't matter for a threshold.
    pub fn approx_bytes(&self) -> usize {
        const HEADER: usize = 24;
        fn functor_bytes(f: &Functor) -> usize {
            match f {
                Functor::Value(v) => v.len(),
                Functor::User(u) => u.args.len() + u.read_set.iter().map(Key::len).sum::<usize>(),
                _ => 8,
            }
        }
        HEADER
            + match self {
                ServerMsg::Install { writes, .. } => writes
                    .iter()
                    .map(|w| w.key.len() + functor_bytes(&w.functor))
                    .sum(),
                ServerMsg::AbortVersion { keys, .. } => keys.iter().map(|(k, _)| k.len() + 8).sum(),
                ServerMsg::RemoteGet { key, .. } => key.len(),
                ServerMsg::RemoteGetBatch { keys, .. } => keys.iter().map(Key::len).sum(),
                ServerMsg::SnapshotRead { key, .. } => key.len(),
                ServerMsg::SnapshotReadBatch { keys, .. } => keys.iter().map(Key::len).sum(),
                ServerMsg::InstallDeferred { key, functor, .. } => {
                    key.len() + functor_bytes(functor)
                }
                ServerMsg::ResolveVersion { key, .. } => key.len(),
                ServerMsg::PushValue { source, read, .. } => {
                    source.len() + read.value.as_ref().map_or(0, Value::len)
                }
                ServerMsg::Replicate { records, .. } => records
                    .iter()
                    .map(|(k, _, f)| k.len() + functor_bytes(f))
                    .sum(),
                ServerMsg::ShipBatch { frames, .. } => {
                    frames.iter().map(|(_, f)| f.len() + 8).sum()
                }
                ServerMsg::Batch(msgs) => msgs.iter().map(ServerMsg::approx_bytes).sum(),
                ServerMsg::Grant(_)
                | ServerMsg::Revoke(_)
                | ServerMsg::RevokedAck(_)
                | ServerMsg::Shutdown => 0,
            }
    }
}
