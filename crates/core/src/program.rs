//! One-shot transaction programs (§IV-A).
//!
//! As in Calvin, clients submit transactions non-interactively: a program id
//! plus an argument blob. The front-end invokes the registered
//! [`TxnProgram`], which *transforms* the transaction into key-functor pairs
//! (§IV-B) — one [`Write`] per write-set key. Programs whose write set
//! depends on data (dependent transactions, §IV-E) either use determinate
//! functors with deferred writes, or read a snapshot through
//! the [`SnapshotReader`] on [`TransformCtx`] and install OCC-validated functors.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use aloha_common::{Error, Key, Result, Timestamp};
use aloha_functor::{Functor, VersionedRead};

/// Identifier of a registered transaction program (a stored procedure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramId(pub u32);

impl fmt::Display for ProgramId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prog{}", self.0)
    }
}

/// A pre-install check evaluated by the backend before accepting a write
/// (§V-A2: the aborting transaction "includes an item that cannot be found in
/// the corresponding partition").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Check {
    /// The given key must have at least one version on the destination
    /// partition. The key must be co-located with the write it guards.
    KeyExists(Key),
}

/// One element of a transaction's write set: the key, its functor, and an
/// optional install-time check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Write {
    /// The written key.
    pub key: Key,
    /// The functor placeholder for the key's new value.
    pub functor: Functor,
    /// Optional pre-install check on the owning partition.
    pub check: Option<Check>,
}

/// The transformed form of a transaction: its key-functor pairs.
///
/// # Examples
///
/// ```
/// use aloha_common::Key;
/// use aloha_core::TxnPlan;
/// use aloha_functor::Functor;
///
/// let plan = TxnPlan::new()
///     .write(Key::from("a"), Functor::subtr(10))
///     .write(Key::from("b"), Functor::add(10));
/// assert_eq!(plan.writes().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxnPlan {
    writes: Vec<Write>,
}

impl TxnPlan {
    /// An empty plan (e.g. a read-only transaction).
    pub fn new() -> TxnPlan {
        TxnPlan::default()
    }

    /// Adds a write without a check.
    pub fn write(mut self, key: Key, functor: Functor) -> TxnPlan {
        self.writes.push(Write {
            key,
            functor,
            check: None,
        });
        self
    }

    /// Adds a write guarded by an install-time check.
    pub fn write_checked(mut self, key: Key, functor: Functor, check: Check) -> TxnPlan {
        self.writes.push(Write {
            key,
            functor,
            check: Some(check),
        });
        self
    }

    /// The planned writes.
    pub fn writes(&self) -> &[Write] {
        &self.writes
    }

    /// Consumes the plan, returning the writes.
    pub fn into_writes(self) -> Vec<Write> {
        self.writes
    }

    /// Whether the plan writes nothing.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }
}

/// Read access to the settled snapshot, available during transform.
///
/// Reads observe the current visibility bound — the finish timestamp of the
/// last completed epoch — which is exactly the snapshot an optimistic
/// dependent transaction validates against (§IV-E).
pub trait SnapshotReader {
    /// Reads `key` at the snapshot bound; reports the version found.
    ///
    /// # Errors
    ///
    /// Transport failures when the key lives on an unreachable partition.
    fn read(&self, key: &Key) -> Result<VersionedRead>;

    /// The snapshot's inclusive upper version bound.
    fn snapshot_bound(&self) -> Timestamp;
}

/// Everything a program sees while transforming a transaction.
pub struct TransformCtx<'a> {
    /// The transaction's timestamp (all functors share it, §IV-A).
    pub ts: Timestamp,
    /// The client-supplied argument blob.
    pub args: &'a [u8],
    /// Settled-snapshot reader for optimistic dependent transactions.
    pub reader: &'a dyn SnapshotReader,
}

impl fmt::Debug for TransformCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransformCtx")
            .field("ts", &self.ts)
            .field("args_len", &self.args.len())
            .finish()
    }
}

/// A one-shot transaction program: transforms a request into functors.
///
/// Programs run on the coordinating front-end. They must be deterministic
/// given the context (the snapshot reader is the only data access) and fast:
/// everything data-dependent belongs in functor handlers, which run in the
/// asynchronous computing phase.
pub trait TxnProgram: Send + Sync {
    /// Produces the transaction's write plan.
    ///
    /// # Errors
    ///
    /// Returning an error rejects the transaction before the write-only phase
    /// (no versions are installed anywhere).
    fn transform(&self, ctx: &TransformCtx<'_>) -> Result<TxnPlan>;

    /// Short name for diagnostics.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// Wraps a closure as a [`TxnProgram`].
///
/// # Examples
///
/// ```
/// use aloha_core::program::{fn_program, TxnPlan};
/// use aloha_common::Key;
/// use aloha_functor::Functor;
///
/// let program = fn_program(|ctx| {
///     Ok(TxnPlan::new().write(Key::from("counter"), Functor::add(1)))
/// });
/// ```
pub fn fn_program<F>(f: F) -> FnProgram<F>
where
    F: Fn(&TransformCtx<'_>) -> Result<TxnPlan> + Send + Sync,
{
    FnProgram(f)
}

/// A [`TxnProgram`] backed by a closure; see [`fn_program`].
pub struct FnProgram<F>(F);

impl<F> TxnProgram for FnProgram<F>
where
    F: Fn(&TransformCtx<'_>) -> Result<TxnPlan> + Send + Sync,
{
    fn transform(&self, ctx: &TransformCtx<'_>) -> Result<TxnPlan> {
        (self.0)(ctx)
    }

    fn name(&self) -> &str {
        "fn-program"
    }
}

/// Registry of transaction programs, immutable after cluster start.
#[derive(Default)]
pub struct ProgramRegistry {
    programs: HashMap<ProgramId, Arc<dyn TxnProgram>>,
}

impl ProgramRegistry {
    /// Creates an empty registry.
    pub fn new() -> ProgramRegistry {
        ProgramRegistry::default()
    }

    /// Registers `program` under `id`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate ids.
    pub fn register(&mut self, id: ProgramId, program: impl TxnProgram + 'static) {
        let prev = self.programs.insert(id, Arc::new(program));
        assert!(prev.is_none(), "duplicate program registration for {id}");
    }

    /// Looks up a program.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownProgram`] for unregistered ids.
    pub fn get(&self, id: ProgramId) -> Result<&Arc<dyn TxnProgram>> {
        self.programs.get(&id).ok_or(Error::UnknownProgram(id.0))
    }

    /// Number of registered programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }
}

impl fmt::Debug for ProgramRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut ids: Vec<_> = self.programs.keys().collect();
        ids.sort();
        f.debug_struct("ProgramRegistry")
            .field("ids", &ids)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NullReader;
    impl SnapshotReader for NullReader {
        fn read(&self, _key: &Key) -> Result<VersionedRead> {
            Ok(VersionedRead::missing())
        }
        fn snapshot_bound(&self) -> Timestamp {
            Timestamp::ZERO
        }
    }

    #[test]
    fn plan_builder_collects_writes_in_order() {
        let plan = TxnPlan::new()
            .write(Key::from("a"), Functor::add(1))
            .write_checked(
                Key::from("b"),
                Functor::value_i64(0),
                Check::KeyExists(Key::from("item")),
            );
        assert_eq!(plan.writes().len(), 2);
        assert_eq!(plan.writes()[0].key, Key::from("a"));
        assert!(plan.writes()[1].check.is_some());
    }

    #[test]
    fn registry_round_trips_programs() {
        let mut reg = ProgramRegistry::new();
        reg.register(ProgramId(1), fn_program(|_| Ok(TxnPlan::new())));
        let ctx = TransformCtx {
            ts: Timestamp::from_raw(1),
            args: &[],
            reader: &NullReader,
        };
        let plan = reg.get(ProgramId(1)).unwrap().transform(&ctx).unwrap();
        assert!(plan.is_empty());
        assert!(matches!(
            reg.get(ProgramId(2)),
            Err(Error::UnknownProgram(2))
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate program")]
    fn duplicate_program_panics() {
        let mut reg = ProgramRegistry::new();
        reg.register(ProgramId(1), fn_program(|_| Ok(TxnPlan::new())));
        reg.register(ProgramId(1), fn_program(|_| Ok(TxnPlan::new())));
    }

    #[test]
    fn program_sees_args_and_timestamp() {
        let program = fn_program(|ctx| {
            assert_eq!(ctx.args, b"payload");
            assert_eq!(ctx.ts, Timestamp::from_raw(42));
            Ok(TxnPlan::new())
        });
        let ctx = TransformCtx {
            ts: Timestamp::from_raw(42),
            args: b"payload",
            reader: &NullReader,
        };
        program.transform(&ctx).unwrap();
    }
}
