//! End-to-end engine tests on small clusters with short epochs.

use std::sync::Arc;
use std::time::Duration;

use aloha_common::{Key, ServerId, Value};
use aloha_core::{fn_program, Check, Cluster, ClusterConfig, ProgramId, TxnOutcome, TxnPlan};
use aloha_functor::{ComputeInput, Functor, HandlerId, HandlerOutput, UserFunctor};
use aloha_net::NetConfig;

fn fast_config(servers: u16) -> ClusterConfig {
    ClusterConfig::new(servers).with_epoch_duration(Duration::from_millis(2))
}

/// Finds `count` distinct keys owned by the given partition.
fn keys_on_partition(partition: u16, total: u16, count: usize) -> Vec<Key> {
    (0..)
        .map(|i: u32| Key::from_parts(&[b"k", &i.to_be_bytes()]))
        .filter(|k| k.partition(total).0 == partition)
        .take(count)
        .collect()
}

#[test]
fn write_then_read_round_trip() {
    let mut builder = Cluster::builder(fast_config(2));
    builder.register_program(
        ProgramId(1),
        fn_program(|ctx| {
            Ok(TxnPlan::new().write(
                Key::from("greeting"),
                Functor::Value(Value::new(ctx.args.to_vec())),
            ))
        }),
    );
    let cluster = builder.start().unwrap();
    let db = cluster.database();
    let handle = db.execute(ProgramId(1), b"aloha").unwrap();
    assert_eq!(handle.wait_processed().unwrap(), TxnOutcome::Committed);
    let values = db.read_latest(&[Key::from("greeting")]).unwrap();
    assert_eq!(values[0].as_ref().unwrap().as_bytes(), b"aloha");
    cluster.shutdown();
}

#[test]
fn cross_partition_transfer_conserves_money() {
    let total_servers = 4u16;
    let mut builder = Cluster::builder(fast_config(total_servers));
    builder.register_program(
        ProgramId(1),
        fn_program(|ctx| {
            // args: [key_a bytes len u8][key_a][key_b][amount i64] — simplest
            // fixed layout: two 8-byte keys then amount.
            let a = Key::from(&ctx.args[0..8]);
            let b = Key::from(&ctx.args[8..16]);
            let amount = i64::from_be_bytes(ctx.args[16..24].try_into().unwrap());
            Ok(TxnPlan::new()
                .write(a, Functor::subtr(amount))
                .write(b, Functor::add(amount)))
        }),
    );
    let cluster = builder.start().unwrap();

    // Pick accounts on distinct partitions.
    let accounts: Vec<Key> = (0..4u16)
        .map(|p| keys_on_partition(p, total_servers, 1).remove(0))
        .collect();
    for account in &accounts {
        cluster.load(account.clone(), Value::from_i64(1000));
    }

    let db = cluster.database();
    let mut handles = Vec::new();
    for i in 0..40usize {
        let from = &accounts[i % 4];
        let to = &accounts[(i + 1) % 4];
        let mut args = Vec::new();
        args.extend_from_slice(from.as_bytes());
        args.extend_from_slice(to.as_bytes());
        args.extend_from_slice(&(7i64).to_be_bytes());
        handles.push(db.execute(ProgramId(1), args).unwrap());
    }
    for h in handles {
        assert_eq!(h.wait_processed().unwrap(), TxnOutcome::Committed);
    }
    let values = db.read_latest(&accounts).unwrap();
    let total: i64 = values
        .iter()
        .map(|v| v.as_ref().unwrap().as_i64().unwrap())
        .sum();
    assert_eq!(total, 4000, "money must be conserved");
    cluster.shutdown();
}

#[test]
fn failed_install_check_aborts_all_partitions() {
    let total_servers = 2u16;
    let mut builder = Cluster::builder(fast_config(total_servers));
    let good_key = keys_on_partition(0, total_servers, 1).remove(0);
    let other_key = keys_on_partition(1, total_servers, 1).remove(0);
    let missing = Key::from("never-loaded");
    // Make sure the check runs on the partition that owns `other_key`.
    let check_key = keys_on_partition(other_key.partition(total_servers).0, total_servers, 2)
        .into_iter()
        .find(|k| *k != other_key)
        .unwrap();
    assert_eq!(
        check_key.partition(total_servers),
        other_key.partition(total_servers)
    );
    let _ = missing;

    let gk = good_key.clone();
    let ok_ = other_key.clone();
    let ck = check_key;
    builder.register_program(
        ProgramId(1),
        fn_program(move |_ctx| {
            Ok(TxnPlan::new()
                .write(gk.clone(), Functor::add(1))
                .write_checked(ok_.clone(), Functor::add(1), Check::KeyExists(ck.clone())))
        }),
    );
    let cluster = builder.start().unwrap();
    cluster.load(good_key.clone(), Value::from_i64(100));
    cluster.load(other_key.clone(), Value::from_i64(100));
    // NOTE: check_key is intentionally never loaded, so the install fails.

    let db = cluster.database();
    let handle = db.execute(ProgramId(1), b"").unwrap();
    assert!(handle.aborted_at_install());
    assert_eq!(handle.wait_processed().unwrap(), TxnOutcome::Aborted);

    // Neither partition's value moved: the second round rolled both back.
    let values = db.read_latest(&[good_key, other_key]).unwrap();
    assert_eq!(values[0].as_ref().unwrap().as_i64(), Some(100));
    assert_eq!(values[1].as_ref().unwrap().as_i64(), Some(100));
    cluster.shutdown();
}

#[test]
fn user_functor_reads_remote_partition() {
    let total_servers = 2u16;
    let mut builder = Cluster::builder(fast_config(total_servers));
    let src = keys_on_partition(0, total_servers, 1).remove(0);
    let dst = keys_on_partition(1, total_servers, 1).remove(0);
    assert_ne!(src.partition(total_servers), dst.partition(total_servers));

    // Handler: dst := value of src (a cross-partition copy).
    let src_for_handler = src.clone();
    builder.register_handler(HandlerId(1), move |input: &ComputeInput<'_>| {
        let v = input.reads.i64(&src_for_handler).unwrap_or(-1);
        HandlerOutput::commit(Value::from_i64(v))
    });
    let src_for_program = src.clone();
    let dst_for_program = dst.clone();
    builder.register_program(
        ProgramId(1),
        fn_program(move |_ctx| {
            Ok(TxnPlan::new().write(
                dst_for_program.clone(),
                Functor::User(UserFunctor::new(
                    HandlerId(1),
                    vec![src_for_program.clone()],
                    Vec::new(),
                )),
            ))
        }),
    );
    let cluster = builder.start().unwrap();
    cluster.load(src, Value::from_i64(4242));

    let db = cluster.database();
    let handle = db.execute(ProgramId(1), b"").unwrap();
    assert_eq!(handle.wait_processed().unwrap(), TxnOutcome::Committed);
    let values = db.read_latest(&[dst]).unwrap();
    assert_eq!(values[0].as_ref().unwrap().as_i64(), Some(4242));
    cluster.shutdown();
}

#[test]
fn handler_abort_is_visible_to_client() {
    let mut builder = Cluster::builder(fast_config(2));
    builder.register_handler(HandlerId(1), |_: &ComputeInput<'_>| HandlerOutput::abort());
    builder.register_program(
        ProgramId(1),
        fn_program(|_ctx| {
            Ok(TxnPlan::new().write(
                Key::from("doomed"),
                Functor::User(UserFunctor::new(HandlerId(1), vec![], Vec::new())),
            ))
        }),
    );
    let cluster = builder.start().unwrap();
    cluster.load(Key::from("doomed"), Value::from_i64(1));
    let db = cluster.database();
    let handle = db.execute(ProgramId(1), b"").unwrap();
    assert!(
        !handle.aborted_at_install(),
        "install succeeds; compute aborts"
    );
    assert_eq!(handle.wait_processed().unwrap(), TxnOutcome::Aborted);
    // The pre-transaction value is still visible.
    let values = db.read_latest(&[Key::from("doomed")]).unwrap();
    assert_eq!(values[0].as_ref().unwrap().as_i64(), Some(1));
    cluster.shutdown();
}

#[test]
fn read_latest_observes_all_prior_commits() {
    let mut builder = Cluster::builder(fast_config(2));
    builder.register_program(
        ProgramId(1),
        fn_program(|_ctx| Ok(TxnPlan::new().write(Key::from("ctr"), Functor::add(1)))),
    );
    let cluster = builder.start().unwrap();
    cluster.load(Key::from("ctr"), Value::from_i64(0));
    let db = cluster.database();
    for _ in 0..10 {
        db.execute(ProgramId(1), b"")
            .unwrap()
            .wait_processed()
            .unwrap();
    }
    let values = db.read_latest(&[Key::from("ctr")]).unwrap();
    assert_eq!(values[0].as_ref().unwrap().as_i64(), Some(10));
    cluster.shutdown();
}

#[test]
fn concurrent_increments_from_many_clients_are_all_applied() {
    let mut builder = Cluster::builder(fast_config(3));
    builder.register_program(
        ProgramId(1),
        fn_program(|ctx| {
            let key = Key::from(ctx.args);
            Ok(TxnPlan::new().write(key, Functor::add(1)))
        }),
    );
    let cluster = builder.start().unwrap();
    let keys: Vec<Key> = (0..3u16)
        .map(|p| keys_on_partition(p, 3, 1).remove(0))
        .collect();
    for k in &keys {
        cluster.load(k.clone(), Value::from_i64(0));
    }
    let db = cluster.database();
    let threads: Vec<_> = (0..6)
        .map(|t| {
            let db = db.clone();
            let key = keys[t % 3].clone();
            std::thread::spawn(move || {
                let mut handles = Vec::new();
                for _ in 0..20 {
                    handles.push(db.execute(ProgramId(1), key.as_bytes()).unwrap());
                }
                for h in handles {
                    assert_eq!(h.wait_processed().unwrap(), TxnOutcome::Committed);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let values = db.read_latest(&keys).unwrap();
    let total: i64 = values
        .iter()
        .map(|v| v.as_ref().unwrap().as_i64().unwrap())
        .sum();
    assert_eq!(total, 120, "every increment must be applied exactly once");
    cluster.shutdown();
}

#[test]
fn historical_reads_return_old_snapshots() {
    let mut builder = Cluster::builder(fast_config(2));
    builder.register_program(
        ProgramId(1),
        fn_program(|_ctx| Ok(TxnPlan::new().write(Key::from("x"), Functor::add(1)))),
    );
    let cluster = builder.start().unwrap();
    cluster.load(Key::from("x"), Value::from_i64(0));
    let db = cluster.database();
    let h1 = db.execute(ProgramId(1), b"").unwrap();
    h1.wait_processed().unwrap();
    let snapshot = h1.timestamp();
    for _ in 0..5 {
        db.execute(ProgramId(1), b"")
            .unwrap()
            .wait_processed()
            .unwrap();
    }
    let old = db.read_at(&[Key::from("x")], snapshot).unwrap();
    assert_eq!(old[0].as_ref().unwrap().as_i64(), Some(1));
    let new = db.read_latest(&[Key::from("x")]).unwrap();
    assert_eq!(new[0].as_ref().unwrap().as_i64(), Some(6));
    cluster.shutdown();
}

#[test]
fn works_with_network_latency_and_clock_skew() {
    let config = ClusterConfig::new(2)
        .with_epoch_duration(Duration::from_millis(5))
        .with_net(NetConfig::with_jitter(
            Duration::from_micros(100),
            Duration::from_micros(50),
            7,
        ))
        .with_clock_skew(vec![150, -150]);
    let mut builder = Cluster::builder(config);
    builder.register_program(
        ProgramId(1),
        fn_program(|ctx| {
            let key = Key::from(ctx.args);
            Ok(TxnPlan::new().write(key, Functor::add(1)))
        }),
    );
    let cluster = builder.start().unwrap();
    let keys: Vec<Key> = (0..2u16)
        .map(|p| keys_on_partition(p, 2, 1).remove(0))
        .collect();
    for k in &keys {
        cluster.load(k.clone(), Value::from_i64(0));
    }
    let db = cluster.database();
    let mut handles = Vec::new();
    for i in 0..20 {
        handles.push(db.execute(ProgramId(1), keys[i % 2].as_bytes()).unwrap());
    }
    for h in handles {
        assert_eq!(h.wait_processed().unwrap(), TxnOutcome::Committed);
    }
    let values = db.read_latest(&keys).unwrap();
    let total: i64 = values
        .iter()
        .map(|v| v.as_ref().unwrap().as_i64().unwrap())
        .sum();
    assert_eq!(total, 20);
    cluster.shutdown();
}

#[test]
fn stats_reflect_outcomes() {
    let mut builder = Cluster::builder(fast_config(2));
    builder.register_handler(HandlerId(1), |_: &ComputeInput<'_>| HandlerOutput::abort());
    builder.register_program(
        ProgramId(1),
        fn_program(|_ctx| Ok(TxnPlan::new().write(Key::from("ok"), Functor::add(1)))),
    );
    builder.register_program(
        ProgramId(2),
        fn_program(|_ctx| {
            Ok(TxnPlan::new().write(
                Key::from("bad"),
                Functor::User(UserFunctor::new(HandlerId(1), vec![], Vec::new())),
            ))
        }),
    );
    let cluster = builder.start().unwrap();
    cluster.load(Key::from("ok"), Value::from_i64(0));
    cluster.load(Key::from("bad"), Value::from_i64(0));
    let db = cluster.database();
    for _ in 0..3 {
        db.execute(ProgramId(1), b"")
            .unwrap()
            .wait_processed()
            .unwrap();
    }
    db.execute(ProgramId(2), b"")
        .unwrap()
        .wait_processed()
        .unwrap();
    let snapshot = cluster.snapshot();
    assert_eq!(snapshot.counter("committed"), Some(3));
    assert_eq!(snapshot.counter("aborted"), Some(1));
    assert!(snapshot.counter("installs").unwrap() >= 4);
    let e2e = snapshot.stage("e2e").expect("e2e rollup");
    assert_eq!(e2e.count, 4);
    assert!(e2e.mean_micros > 0.0);
    cluster.shutdown();
}

#[test]
fn shutdown_is_clean_and_idempotent_under_load() {
    let mut builder = Cluster::builder(fast_config(2));
    builder.register_program(
        ProgramId(1),
        fn_program(|_ctx| Ok(TxnPlan::new().write(Key::from("y"), Functor::add(1)))),
    );
    let cluster = builder.start().unwrap();
    cluster.load(Key::from("y"), Value::from_i64(0));
    let db = cluster.database();
    let worker = std::thread::spawn(move || {
        // Hammer until shutdown; errors after shutdown are expected.
        while let Ok(h) = db.execute(ProgramId(1), b"") {
            if h.wait_processed().is_err() {
                break;
            }
        }
    });
    std::thread::sleep(Duration::from_millis(30));
    cluster.shutdown();
    worker.join().unwrap();
}

#[test]
fn pinned_coordinator_executes_locally() {
    let total_servers = 3u16;
    let mut builder = Cluster::builder(fast_config(total_servers));
    builder.register_program(
        ProgramId(1),
        fn_program(|ctx| {
            let key = Key::from(ctx.args);
            Ok(TxnPlan::new().write(key, Functor::add(5)))
        }),
    );
    let cluster = builder.start().unwrap();
    let key = keys_on_partition(2, total_servers, 1).remove(0);
    cluster.load(key.clone(), Value::from_i64(0));
    let db = cluster.database();
    let handle = db
        .execute_at(ServerId(2), ProgramId(1), key.as_bytes())
        .unwrap();
    assert_eq!(handle.wait_processed().unwrap(), TxnOutcome::Committed);
    let v = db.read_latest(std::slice::from_ref(&key)).unwrap();
    assert_eq!(v[0].as_ref().unwrap().as_i64(), Some(5));
    cluster.shutdown();
}

#[test]
fn gc_reclaims_settled_versions() {
    let mut builder = Cluster::builder(fast_config(1));
    builder.register_program(
        ProgramId(1),
        fn_program(|_ctx| Ok(TxnPlan::new().write(Key::from("gc"), Functor::add(1)))),
    );
    let cluster = builder.start().unwrap();
    cluster.load(Key::from("gc"), Value::from_i64(0));
    let db = cluster.database();
    let mut last = None;
    for _ in 0..10 {
        let h = db.execute(ProgramId(1), b"").unwrap();
        h.wait_processed().unwrap();
        last = Some(h.timestamp());
    }
    let dropped = cluster.gc(last.unwrap());
    assert!(
        dropped >= 9,
        "expected most settled versions dropped, got {dropped}"
    );
    let values = db.read_latest(&[Key::from("gc")]).unwrap();
    assert_eq!(values[0].as_ref().unwrap().as_i64(), Some(10));
    cluster.shutdown();
}

#[test]
fn empty_write_set_commits_trivially() {
    let mut builder = Cluster::builder(fast_config(1));
    builder.register_program(ProgramId(1), fn_program(|_ctx| Ok(TxnPlan::new())));
    let cluster = builder.start().unwrap();
    let db = cluster.database();
    let handle = db.execute(ProgramId(1), b"").unwrap();
    assert_eq!(handle.wait_processed().unwrap(), TxnOutcome::Committed);
    cluster.shutdown();
}

#[test]
fn transform_error_rejects_before_install() {
    let mut builder = Cluster::builder(fast_config(1));
    builder.register_program(
        ProgramId(1),
        fn_program(|_ctx| {
            Err(aloha_common::Error::Rejected {
                txn: aloha_common::TxnId(0),
                reason: "bad args".into(),
            })
        }),
    );
    let cluster = builder.start().unwrap();
    let db = cluster.database();
    assert!(db.execute(ProgramId(1), b"").is_err());
    // The cluster keeps running afterwards (the ticket was released).
    let snapshot = cluster.snapshot();
    assert_eq!(snapshot.counter("installs"), Some(0));
    cluster.shutdown();
}

#[test]
fn snapshot_reader_sees_settled_data_during_transform() {
    let mut builder = Cluster::builder(fast_config(2));
    let probe = Arc::new(parking_lot::Mutex::new(None));
    let probe_in = Arc::clone(&probe);
    builder.register_program(
        ProgramId(1),
        fn_program(move |ctx| {
            let read = ctx.reader.read(&Key::from("seed"))?;
            *probe_in.lock() = Some(read.value.and_then(|v| v.as_i64()));
            Ok(TxnPlan::new())
        }),
    );
    let cluster = builder.start().unwrap();
    cluster.load(Key::from("seed"), Value::from_i64(77));
    let db = cluster.database();
    // Wait for the first epoch to settle the loaded data.
    db.read_latest(&[Key::from("seed")]).unwrap();
    db.execute(ProgramId(1), b"")
        .unwrap()
        .wait_processed()
        .unwrap();
    assert_eq!(*probe.lock(), Some(Some(77)));
    cluster.shutdown();
}
