//! Checkpoint/restore at cluster level: the §III-A fault-tolerance hook.

use std::time::Duration;

use aloha_common::{Key, Value};
use aloha_core::{fn_program, Cluster, ClusterConfig, ProgramId, TxnPlan};
use aloha_functor::Functor;

const INCR: ProgramId = ProgramId(1);

fn build(servers: u16) -> Cluster {
    build_with_offset(servers, 0)
}

/// Recovered clusters must resume the timestamp domain beyond the
/// checkpoint (see `ClusterConfig::with_clock_offset`).
fn build_with_offset(servers: u16, clock_offset_micros: u64) -> Cluster {
    let mut builder = Cluster::builder(
        ClusterConfig::new(servers)
            .with_epoch_duration(Duration::from_millis(3))
            .with_clock_offset(clock_offset_micros),
    );
    builder.register_program(
        INCR,
        fn_program(|ctx| {
            let key = Key::from(ctx.args);
            Ok(TxnPlan::new().write(key, Functor::add(1)))
        }),
    );
    builder.start().unwrap()
}

fn keys(total: u16, count: usize) -> Vec<Key> {
    let keys: Vec<Key> = (0..count as u32)
        .map(|i| Key::from_parts(&[b"ck", &i.to_be_bytes()]))
        .collect();
    // Sanity: keys spread over more than one partition when possible.
    if total > 1 {
        let parts: std::collections::HashSet<_> = keys.iter().map(|k| k.partition(total)).collect();
        assert!(parts.len() > 1);
    }
    keys
}

#[test]
fn checkpoint_restore_preserves_state_across_clusters() {
    let total = 3u16;
    let cluster = build(total);
    let key_list = keys(total, 12);
    for k in &key_list {
        cluster.load(k.clone(), Value::from_i64(100));
    }
    let db = cluster.database();
    let mut handles = Vec::new();
    for (i, k) in key_list.iter().enumerate() {
        for _ in 0..=i {
            handles.push(db.execute(INCR, k.as_bytes()).unwrap());
        }
    }
    for h in handles {
        h.wait_processed().unwrap();
    }
    // Make sure everything is settled, then checkpoint.
    let expected = db.read_latest(&key_list).unwrap();
    let (at, blobs) = cluster.checkpoint().unwrap();
    assert_eq!(blobs.len(), total as usize);
    cluster.shutdown();

    // Boot a replacement cluster from the checkpoint, resuming the
    // timestamp domain past the checkpoint.
    let recovered = build_with_offset(total, at.micros() + 1);
    recovered.restore(&blobs).unwrap();
    let rdb = recovered.database();
    let got = rdb.read_latest(&key_list).unwrap();
    for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
        assert_eq!(
            e.as_ref().unwrap().as_i64(),
            g.as_ref().unwrap().as_i64(),
            "key {i} diverged after recovery (checkpoint at {at})"
        );
    }
    // And the recovered cluster keeps serving writes on top.
    let h = rdb.execute(INCR, key_list[0].as_bytes()).unwrap();
    h.wait_processed().unwrap();
    let after = rdb.read_latest(&key_list[..1]).unwrap();
    assert_eq!(
        after[0].as_ref().unwrap().as_i64().unwrap(),
        expected[0].as_ref().unwrap().as_i64().unwrap() + 1
    );
    recovered.shutdown();
}

#[test]
fn restore_rejects_wrong_partition_count() {
    let cluster = build(2);
    let (_at, blobs) = cluster.checkpoint().unwrap();
    cluster.shutdown();
    let other = build(3);
    assert!(other.restore(&blobs).is_err());
    other.shutdown();
}

#[test]
fn checkpoint_is_consistent_under_concurrent_load() {
    // Transfers conserve a total; a checkpoint taken mid-load must capture
    // a consistent cut (total preserved) because it reads a settled snapshot.
    const TRANSFER: ProgramId = ProgramId(2);
    let total_servers = 2u16;
    let mut builder = Cluster::builder(
        ClusterConfig::new(total_servers).with_epoch_duration(Duration::from_millis(3)),
    );
    builder.register_program(
        TRANSFER,
        fn_program(|ctx| {
            let a = Key::from(&ctx.args[0..ctx.args.len() / 2]);
            let b = Key::from(&ctx.args[ctx.args.len() / 2..]);
            Ok(TxnPlan::new()
                .write(a, Functor::subtr(5))
                .write(b, Functor::add(5)))
        }),
    );
    let cluster = builder.start().unwrap();
    let key_list = keys(total_servers, 4);
    for k in &key_list {
        cluster.load(k.clone(), Value::from_i64(1000));
    }
    let db = cluster.database();
    let stop = std::sync::atomic::AtomicBool::new(false);
    let blobs = std::thread::scope(|scope| {
        let writer_db = db.clone();
        let stop_ref = &stop;
        let kl = key_list.clone();
        scope.spawn(move || {
            let mut i = 0usize;
            while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                let a = &kl[i % 4];
                let b = &kl[(i + 1) % 4];
                let mut args = a.as_bytes().to_vec();
                args.extend_from_slice(b.as_bytes());
                if let Ok(h) = writer_db.execute(TRANSFER, args) {
                    let _ = h.wait_processed();
                }
                i += 1;
            }
        });
        std::thread::sleep(Duration::from_millis(50));
        let (_at, blobs) = cluster.checkpoint().unwrap();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        blobs
    });
    cluster.shutdown();

    let recovered = build_with_offset(total_servers, u64::MAX >> 30);
    recovered.restore(&blobs).unwrap();
    let rdb = recovered.database();
    let values = rdb.read_latest(&key_list).unwrap();
    let sum: i64 = values
        .iter()
        .map(|v| v.as_ref().unwrap().as_i64().unwrap())
        .sum();
    assert_eq!(
        sum, 4000,
        "checkpoint must capture a transactionally consistent cut"
    );
    recovered.shutdown();
}
