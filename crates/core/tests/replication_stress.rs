//! Replication under concurrent cross-partition load: exercises the ring of
//! synchronous backup acks from many coordinators at once (the scenario that
//! would deadlock if dispatchers blocked on replication).

use std::time::Duration;

use aloha_common::{Key, Value};
use aloha_core::{fn_program, Cluster, ClusterConfig, ProgramId, TxnOutcome, TxnPlan};
use aloha_functor::Functor;

const TRANSFER: ProgramId = ProgramId(1);

#[test]
fn concurrent_replicated_transfers_complete_and_conserve() {
    let total = 3u16;
    let mut builder = Cluster::builder(
        ClusterConfig::new(total)
            .with_epoch_duration(Duration::from_millis(3))
            .with_ring_replication(),
    );
    builder.register_program(
        TRANSFER,
        fn_program(|ctx| {
            let half = ctx.args.len() / 2;
            let a = Key::from(&ctx.args[..half]);
            let b = Key::from(&ctx.args[half..]);
            Ok(TxnPlan::new()
                .write(a, Functor::subtr(1))
                .write(b, Functor::add(1)))
        }),
    );
    let cluster = builder.start().unwrap();
    let keys: Vec<Key> = (0..)
        .map(|i: u32| Key::from_parts(&[b"rs", &i.to_be_bytes()]))
        .scan([false; 3], |seen, k| {
            let p = k.partition(total).index();
            if seen.iter().all(|&s| s) {
                return None;
            }
            if seen[p] {
                Some(None)
            } else {
                seen[p] = true;
                Some(Some(k))
            }
        })
        .flatten()
        .collect();
    assert_eq!(keys.len(), 3, "one account per partition");
    for k in &keys {
        cluster.load(k.clone(), Value::from_i64(100));
    }
    let db = cluster.database();

    // Many client threads, transfers crossing every pair of partitions in
    // both directions simultaneously — a full replication ring.
    std::thread::scope(|scope| {
        for t in 0..6usize {
            let db = db.clone();
            let keys = keys.clone();
            scope.spawn(move || {
                let mut handles = Vec::new();
                for i in 0..15usize {
                    let a = &keys[(t + i) % 3];
                    let b = &keys[(t + i + 1) % 3];
                    let mut args = a.as_bytes().to_vec();
                    args.extend_from_slice(b.as_bytes());
                    handles.push(db.execute(TRANSFER, args).unwrap());
                }
                for h in handles {
                    assert_eq!(h.wait_processed().unwrap(), TxnOutcome::Committed);
                }
            });
        }
    });

    let values = db.read_latest(&keys).unwrap();
    let sum: i64 = values
        .iter()
        .map(|v| v.as_ref().unwrap().as_i64().unwrap())
        .sum();
    assert_eq!(sum, 300, "replication must not lose or duplicate transfers");
    // Every partition's installs were mirrored somewhere.
    let mirrored: usize = cluster
        .servers()
        .iter()
        .map(|s| s.replica_dump().len())
        .sum();
    assert_eq!(mirrored, 6 * 15 * 2, "every write mirrored exactly once");
    cluster.shutdown();
}
