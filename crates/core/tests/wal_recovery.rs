//! Full recovery path: checkpoint + write-ahead-log replay reproduces the
//! primary's state, including transactions after the checkpoint and
//! rolled-back versions.

use std::time::Duration;

use aloha_common::{Key, Timestamp, Value};
use aloha_core::{fn_program, Check, Cluster, ClusterConfig, ProgramId, TxnOutcome, TxnPlan};
use aloha_functor::Functor;

const INCR: ProgramId = ProgramId(1);
const DOOMED: ProgramId = ProgramId(2);

fn build(servers: u16, clock_offset: u64) -> Cluster {
    let mut builder = Cluster::builder(
        ClusterConfig::new(servers)
            .with_epoch_duration(Duration::from_millis(3))
            .with_memory_wal()
            .with_clock_offset(clock_offset),
    );
    builder.register_program(
        INCR,
        fn_program(|ctx| {
            let key = Key::from(ctx.args);
            Ok(TxnPlan::new().write(key, Functor::add(1)))
        }),
    );
    // A transaction that always fails its install check (missing key) and
    // therefore exercises the logged second-round abort.
    builder.register_program(
        DOOMED,
        fn_program(|ctx| {
            let key = Key::from(ctx.args);
            Ok(TxnPlan::new().write_checked(
                key,
                Functor::add(1_000_000),
                Check::KeyExists(Key::from("nonexistent-guard")),
            ))
        }),
    );
    builder.start().unwrap()
}

fn keys(count: usize) -> Vec<Key> {
    (0..count as u32)
        .map(|i| Key::from_parts(&[b"wk", &i.to_be_bytes()]))
        .collect()
}

#[test]
fn checkpoint_plus_wal_replay_recovers_exact_state() {
    let total = 2u16;
    let cluster = build(total, 0);
    let key_list = keys(6);
    for k in &key_list {
        cluster.load(k.clone(), Value::from_i64(0));
    }
    let db = cluster.database();

    // Phase 1: some committed work, then a checkpoint.
    for k in &key_list {
        db.execute(INCR, k.as_bytes())
            .unwrap()
            .wait_processed()
            .unwrap();
    }
    let (checkpoint_at, checkpoint) = cluster.checkpoint().unwrap();

    // Phase 2: more commits and some aborted transactions after the
    // checkpoint — all of it only in the WAL.
    for k in &key_list[..3] {
        db.execute(INCR, k.as_bytes())
            .unwrap()
            .wait_processed()
            .unwrap();
    }
    for k in &key_list[3..] {
        let h = db.execute(DOOMED, k.as_bytes()).unwrap();
        assert_eq!(h.wait_processed().unwrap(), TxnOutcome::Aborted);
    }
    let expected: Vec<Option<i64>> = db
        .read_latest(&key_list)
        .unwrap()
        .iter()
        .map(|v| v.as_ref().and_then(Value::as_i64))
        .collect();
    let logs = cluster.wal_snapshots();
    assert!(
        logs.iter().any(|l| !l.is_empty()),
        "durability must produce log records"
    );
    let highest = db.visible_bound();
    cluster.shutdown();

    // Recover: restore the checkpoint, replay the log suffix.
    let recovered = build(total, highest.micros() + 1);
    recovered.restore(&checkpoint).unwrap();
    let applied = recovered.replay_wals(&logs, checkpoint_at).unwrap();
    assert!(applied > 0, "post-checkpoint records must replay");
    let rdb = recovered.database();
    let got: Vec<Option<i64>> = rdb
        .read_latest(&key_list)
        .unwrap()
        .iter()
        .map(|v| v.as_ref().and_then(Value::as_i64))
        .collect();
    assert_eq!(
        got, expected,
        "recovered state must match the primary exactly"
    );
    // Keys 0..3 were incremented twice; 3..6 once (the doomed txns aborted).
    assert_eq!(got[0], Some(2));
    assert_eq!(got[5], Some(1));
    recovered.shutdown();
}

#[test]
fn wal_replay_alone_recovers_from_empty_database() {
    // No checkpoint at all: replay the full log from Timestamp::ZERO.
    let total = 2u16;
    let cluster = build(total, 0);
    let key = Key::from("solo");
    cluster.load(key.clone(), Value::from_i64(0));
    let db = cluster.database();
    for _ in 0..5 {
        db.execute(INCR, key.as_bytes())
            .unwrap()
            .wait_processed()
            .unwrap();
    }
    let logs = cluster.wal_snapshots();
    let highest = db.visible_bound();
    cluster.shutdown();

    let recovered = build(total, highest.micros() + 1);
    // The loader's row is below any logged version; reload it first (a real
    // deployment checkpoints the load, this test keeps it minimal).
    recovered.load(key.clone(), Value::from_i64(0));
    recovered.replay_wals(&logs, Timestamp::ZERO).unwrap();
    let v = recovered.database().read_latest(&[key]).unwrap()[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(v, 5);
    recovered.shutdown();
}

#[test]
fn durability_off_produces_empty_logs() {
    let mut builder =
        Cluster::builder(ClusterConfig::new(1).with_epoch_duration(Duration::from_millis(3)));
    builder.register_program(
        INCR,
        fn_program(|ctx| {
            let key = Key::from(ctx.args);
            Ok(TxnPlan::new().write(key, Functor::add(1)))
        }),
    );
    let cluster = builder.start().unwrap();
    cluster.load(Key::from("k"), Value::from_i64(0));
    let db = cluster.database();
    db.execute(INCR, Key::from("k").as_bytes())
        .unwrap()
        .wait_processed()
        .unwrap();
    assert!(cluster.wal_snapshots().iter().all(Vec::is_empty));
    cluster.shutdown();
}
