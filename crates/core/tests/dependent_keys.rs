//! Cluster-level tests of the §IV-E key-dependency method when the
//! determinate key and its dependent keys live on *different* partitions —
//! exercising the `InstallDeferred` and `ResolveVersion`/`ensure_computed`
//! RPC paths and the cross-partition watermark rule.

use std::time::Duration;

use aloha_common::{Key, Value};
use aloha_core::{fn_program, Cluster, ClusterConfig, ProgramId, TxnOutcome, TxnPlan};
use aloha_functor::{ComputeInput, Functor, HandlerId, HandlerOutput, UserFunctor};

const APPEND: ProgramId = ProgramId(1);
const H_APPEND: HandlerId = HandlerId(1);

fn keys_on_partition(partition: u16, total: u16, count: usize) -> Vec<Key> {
    (0..)
        .map(|i: u32| Key::from_parts(&[b"probe", &i.to_be_bytes()]))
        .filter(|k| k.partition(total).0 == partition)
        .take(count)
        .collect()
}

/// Builds a cluster with an append-log workload: a counter key on one
/// partition determines the id of a log-entry key that hashes to wherever
/// (usually another partition).
fn log_cluster(total: u16, counter: Key, entry_prefix: &'static [u8]) -> Cluster {
    let mut builder =
        Cluster::builder(ClusterConfig::new(total).with_epoch_duration(Duration::from_millis(3)));
    builder.register_handler(H_APPEND, move |input: &ComputeInput<'_>| {
        let id = input.reads.i64(input.key).unwrap_or(0);
        let entry_key = Key::from_parts(&[entry_prefix, &id.to_be_bytes()]);
        HandlerOutput::commit(Value::from_i64(id + 1)).with_deferred(vec![(
            entry_key,
            Functor::Value(Value::new(input.args.to_vec())),
        )])
    });
    let counter_for_program = counter.clone();
    builder.register_program(
        APPEND,
        fn_program(move |ctx| {
            Ok(TxnPlan::new().write(
                counter_for_program.clone(),
                Functor::User(UserFunctor::new(
                    H_APPEND,
                    vec![counter_for_program.clone()],
                    ctx.args.to_vec(),
                )),
            ))
        }),
    );
    // §IV-E rule: log entries depend on the counter.
    let counter_for_rule = counter;
    builder.add_dependency_rule(move |key: &Key| {
        key.parts()
            .and_then(|p| p.first().map(|head| *head == entry_prefix))
            .unwrap_or(false)
            .then(|| counter_for_rule.clone())
    });
    builder.start().unwrap()
}

fn entry_key(prefix: &[u8], id: i64) -> Key {
    Key::from_parts(&[prefix, &id.to_be_bytes()])
}

#[test]
fn deferred_writes_land_on_remote_partitions() {
    let total = 4u16;
    let counter = keys_on_partition(0, total, 1).remove(0);
    let cluster = log_cluster(total, counter.clone(), b"logent");
    cluster.load(counter.clone(), Value::from_i64(0));
    let db = cluster.database();

    for i in 0..12u8 {
        let h = db.execute(APPEND, [i]).unwrap();
        assert_eq!(h.wait_processed().unwrap(), TxnOutcome::Committed);
    }

    // Entries 0..12 exist, wherever they hash to; at least one must live on
    // a partition other than the counter's (overwhelmingly likely with 12
    // hash-placed keys over 4 partitions).
    let keys: Vec<Key> = (0..12).map(|i| entry_key(b"logent", i)).collect();
    assert!(
        keys.iter()
            .any(|k| k.partition(total) != counter.partition(total)),
        "test setup: entries must spread beyond the counter's partition"
    );
    let values = db.read_latest(&keys).unwrap();
    for (i, v) in values.iter().enumerate() {
        let payload = v.as_ref().expect("log entry must exist");
        assert_eq!(payload.as_bytes(), &[i as u8]);
    }
    let count = db.read_latest(std::slice::from_ref(&counter)).unwrap()[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(count, 12);
    cluster.shutdown();
}

#[test]
fn dependent_reads_from_any_fe_wait_for_the_determinate_key() {
    // Read the dependent key through an FE that owns neither the entry nor
    // the counter: the read triggers remote ensure_computed before looking
    // at the (possibly not yet installed) entry.
    let total = 3u16;
    let counter = keys_on_partition(1, total, 1).remove(0);
    let cluster = log_cluster(total, counter.clone(), b"evt");
    cluster.load(counter, Value::from_i64(0));
    let db = cluster.database();

    let mut handles = Vec::new();
    for i in 0..8u8 {
        handles.push(db.execute(APPEND, [i]).unwrap());
    }
    // Do not wait for processing: read as soon as visibility allows. The
    // dependency rule must still produce complete answers.
    let last_ts = handles.iter().map(|h| h.timestamp()).max().unwrap();
    for h in &handles {
        assert!(!h.aborted_at_install());
    }
    // Wait only for epoch visibility (not functor processing).
    while db.visible_bound() < last_ts {
        std::thread::sleep(Duration::from_millis(1));
    }
    let keys: Vec<Key> = (0..8).map(|i| entry_key(b"evt", i)).collect();
    let values = db.read_latest(&keys).unwrap();
    for (i, v) in values.iter().enumerate() {
        assert_eq!(
            v.as_ref().map(|p| p.as_bytes().to_vec()),
            Some(vec![i as u8]),
            "entry {i} must be visible once the counter's watermark covers it"
        );
    }
    cluster.shutdown();
}

#[test]
fn chained_determinate_functors_preserve_order_under_concurrency() {
    // Concurrent appends from several client threads: ids must be dense and
    // every entry unique — the determinate functor chain serializes them.
    let total = 2u16;
    let counter = keys_on_partition(0, total, 1).remove(0);
    let cluster = log_cluster(total, counter.clone(), b"seq");
    cluster.load(counter.clone(), Value::from_i64(0));
    let db = cluster.database();

    std::thread::scope(|scope| {
        for t in 0..4u8 {
            let db = db.clone();
            scope.spawn(move || {
                let mut handles = Vec::new();
                for i in 0..10u8 {
                    handles.push(db.execute(APPEND, [t * 10 + i]).unwrap());
                }
                for h in handles {
                    assert_eq!(h.wait_processed().unwrap(), TxnOutcome::Committed);
                }
            });
        }
    });

    let count = db.read_latest(std::slice::from_ref(&counter)).unwrap()[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(count, 40, "dense ids: every append got exactly one slot");
    let keys: Vec<Key> = (0..40).map(|i| entry_key(b"seq", i)).collect();
    let values = db.read_latest(&keys).unwrap();
    let mut payloads: Vec<u8> = values
        .iter()
        .map(|v| v.as_ref().unwrap().as_bytes()[0])
        .collect();
    payloads.sort_unstable();
    payloads.dedup();
    assert_eq!(payloads.len(), 40, "every payload appended exactly once");
    cluster.shutdown();
}
