//! Partial replication and epoch-boundary failover, deterministically:
//! attach/detach lifecycle, hotness-driven placement, standby promotion on
//! `kill_server`, and the shipping protocol over real TCP sockets.
//!
//! The seeded end-to-end failover runs (faults + live load + checkers) live
//! in the workspace-level chaos suite; these tests pin down each mechanism
//! in isolation.

use std::sync::Arc;
use std::time::{Duration, Instant};

use aloha_common::{Error, Key, PartitionId, ServerId, Timestamp, Value};
use aloha_core::{
    fn_program, Cluster, ClusterConfig, PartialReplicationSpec, ProgramId, ServerMsg,
    ServerMsgCodec, TxnPlan,
};
use aloha_functor::{
    ComputeInput, Functor, HandlerId, HandlerOutput, HandlerRegistry, UserFunctor,
};
use aloha_net::{reply_pair, Addr, TcpTransport, Transport};
use aloha_replica::Standby;
use aloha_storage::partition::LocalOnlyEnv;
use aloha_storage::wal::WalRecord;
use aloha_storage::Partition;

const INCR: ProgramId = ProgramId(1);
const COPY: ProgramId = ProgramId(2);
const H_COPY: HandlerId = HandlerId(7);

/// One key per partition of a `total`-server cluster.
fn key_on(partition: u16, total: u16) -> Key {
    (0..)
        .map(|i: u32| Key::from_parts(&[b"pr", &i.to_be_bytes()]))
        .find(|k| k.partition(total).0 == partition)
        .expect("some key maps to the partition")
}

/// `dst := src` via a user functor, so the destination partition's processor
/// resolves a cross-partition read (push-cache traffic on `dst`'s BE).
fn copy_handler(input: &ComputeInput<'_>) -> HandlerOutput {
    let src = Key::from(input.args);
    let v = input.reads.i64(&src).unwrap_or(0);
    HandlerOutput::commit(Value::from_i64(v))
}

fn builder_with_programs(config: ClusterConfig) -> aloha_core::ClusterBuilder {
    let mut builder = Cluster::builder(config);
    builder.register_program(
        INCR,
        fn_program(|ctx| Ok(TxnPlan::new().write(Key::from(ctx.args), Functor::add(1)))),
    );
    builder.register_handler(H_COPY, copy_handler);
    builder.register_program(
        COPY,
        fn_program(|ctx| {
            let dst_len = u16::from_be_bytes(ctx.args[0..2].try_into().unwrap()) as usize;
            let dst = Key::from(&ctx.args[2..2 + dst_len]);
            let src = Key::from(&ctx.args[2 + dst_len..]);
            Ok(TxnPlan::new().write(
                dst,
                Functor::User(UserFunctor::new(
                    H_COPY,
                    vec![src.clone()],
                    src.as_bytes().to_vec(),
                )),
            ))
        }),
    );
    builder
}

fn encode_copy(dst: &Key, src: &Key) -> Vec<u8> {
    let mut args = Vec::new();
    args.extend_from_slice(&(dst.as_bytes().len() as u16).to_be_bytes());
    args.extend_from_slice(dst.as_bytes());
    args.extend_from_slice(src.as_bytes());
    args
}

fn increment_n(db: &aloha_core::Database, key: &Key, n: usize) {
    let handles: Vec<_> = (0..n)
        .map(|_| db.execute(INCR, key.as_bytes()).unwrap())
        .collect();
    for h in handles {
        h.wait_processed().unwrap();
    }
}

fn wait_until(deadline: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    probe()
}

#[test]
fn promotion_preserves_state_and_serves_without_restart() {
    let total = 3u16;
    let victim = ServerId(1);
    let spec = PartialReplicationSpec::new(1)
        .with_pinned(vec![victim.0])
        .with_rebalance_interval(Duration::from_millis(10));
    let cluster = builder_with_programs(
        ClusterConfig::new(total)
            .with_epoch_duration(Duration::from_millis(2))
            .with_partial_replication_spec(spec),
    )
    .start()
    .unwrap();
    // The pin attached at start, before any traffic.
    assert_eq!(cluster.replicated_partitions(), vec![victim]);

    let db = cluster.database();
    let keys: Vec<Key> = (0..total).map(|p| key_on(p, total)).collect();
    for k in &keys {
        increment_n(&db, k, 10);
    }
    let pre = db.read_latest(&keys).unwrap();
    for v in &pre {
        assert_eq!(v.as_ref().and_then(Value::as_i64), Some(10));
    }
    // Partial replication auto-enabled the in-memory WAL it ships from.
    assert!(
        cluster.wal_snapshots().iter().all(|w| !w.is_empty()),
        "partial replication must auto-enable a WAL to ship"
    );
    // The standby acked a replicated watermark covering real traffic.
    assert!(
        wait_until(Duration::from_secs(2), || {
            cluster.standby_watermark(victim).unwrap_or(Timestamp::ZERO) > Timestamp::ZERO
        }),
        "shipped batches must advance the standby watermark"
    );

    cluster.kill_server(victim).unwrap();
    // `kill_server` promoted the standby before returning: the slot is up,
    // no restart happened (and none is possible — the slot is not down).
    assert_eq!(cluster.availability().kills(), 1);
    assert_eq!(cluster.availability().failovers(), 1);
    assert_eq!(cluster.availability().restarts(), 0);
    assert!(cluster.availability().downtime_micros(victim.0) > 0);
    assert!(matches!(
        cluster.restart_server(victim),
        Err(Error::Config(_))
    ));

    // Every pre-kill commit survives through the promoted standby.
    let post = db.read_latest(&keys).unwrap();
    assert_eq!(pre, post, "promotion lost committed state");
    // And the promoted server keeps serving writes.
    increment_n(&db, &keys[victim.0 as usize], 10);
    let after = db.read_latest(&keys).unwrap();
    assert_eq!(
        after[victim.0 as usize].as_ref().and_then(Value::as_i64),
        Some(20)
    );

    let snapshot = cluster.snapshot();
    let replication = snapshot.child("replication").expect("replication subtree");
    assert_eq!(replication.counter("promotions"), Some(1));
    let availability = snapshot
        .child("availability")
        .expect("availability subtree");
    let p = availability
        .child(&format!("p{}", victim.0))
        .expect("victim availability child");
    assert_eq!(p.counter("failovers"), Some(1));
    assert!(p.counter("downtime_micros").unwrap_or(0) > 0);

    // The promotion consumed the pinned partition's standby; the controller
    // attaches a fresh one to the promoted incumbent.
    assert!(
        wait_until(Duration::from_secs(2), || {
            cluster.replicated_partitions() == vec![victim]
        }),
        "pinned partition must regain a standby after promotion"
    );
    cluster.shutdown();
}

#[test]
fn unreplicated_partition_stays_down_until_restart() {
    let total = 3u16;
    // Budget 1, pinned elsewhere: ServerId(0) holds no standby.
    let spec = PartialReplicationSpec::new(1).with_pinned(vec![2]);
    let cluster = builder_with_programs(
        ClusterConfig::new(total)
            .with_epoch_duration(Duration::from_millis(2))
            .with_partial_replication_spec(spec),
    )
    .start()
    .unwrap();
    let db = cluster.database();
    increment_n(&db, &key_on(0, total), 3);

    cluster.kill_server(ServerId(0)).unwrap();
    // No standby, no promotion: the slot stays down (a second kill reports
    // "already down") until the documented restart fallback brings it back.
    assert_eq!(cluster.availability().failovers(), 0);
    assert!(matches!(
        cluster.kill_server(ServerId(0)),
        Err(Error::Config(_))
    ));
    cluster.restart_server(ServerId(0)).unwrap();
    assert_eq!(cluster.availability().restarts(), 1);
    cluster.shutdown();
}

#[test]
fn detached_pin_is_reattached_by_the_controller() {
    let total = 3u16;
    let spec = PartialReplicationSpec::new(1)
        .with_pinned(vec![0])
        .with_rebalance_interval(Duration::from_millis(25));
    let cluster = builder_with_programs(
        ClusterConfig::new(total)
            .with_epoch_duration(Duration::from_millis(2))
            .with_partial_replication_spec(spec),
    )
    .start()
    .unwrap();
    // Attach is idempotent on an already-replicated partition.
    assert!(!cluster.attach_standby(ServerId(0)).unwrap());
    assert!(cluster.detach_standby(ServerId(0)));
    assert!(!cluster.detach_standby(ServerId(0)));
    // The controller notices the missing pin and re-attaches online.
    assert!(
        wait_until(Duration::from_secs(2), || {
            cluster.replicated_partitions() == vec![ServerId(0)]
        }),
        "controller must re-attach a detached pin"
    );
    assert!(matches!(
        cluster.attach_standby(ServerId(9)),
        Err(Error::NoSuchPartition(_))
    ));
    cluster.shutdown();

    // Without partial replication configured, the API says so.
    let bare =
        builder_with_programs(ClusterConfig::new(1).with_epoch_duration(Duration::from_millis(2)))
            .start()
            .unwrap();
    assert!(matches!(
        bare.attach_standby(ServerId(0)),
        Err(Error::Config(_))
    ));
    assert!(!bare.detach_standby(ServerId(0)));
    assert!(bare.replicated_partitions().is_empty());
    bare.shutdown();
}

#[test]
fn hotness_controller_moves_the_standby_to_the_hot_partition() {
    let total = 3u16;
    let hot = 2u16;
    let spec = PartialReplicationSpec::new(1).with_rebalance_interval(Duration::from_millis(25));
    let cluster = builder_with_programs(
        ClusterConfig::new(total)
            .with_epoch_duration(Duration::from_millis(2))
            .with_partial_replication_spec(spec),
    )
    .start()
    .unwrap();
    let db = cluster.database();
    // Seed the sources, then hammer partition `hot` with cross-partition
    // copies: its BE resolves every remote read, so its push-cache signal
    // dwarfs the others and the budget's single standby must move there.
    let dst = key_on(hot, total);
    let srcs = [key_on(0, total), key_on(1, total)];
    for s in &srcs {
        increment_n(&db, s, 2);
    }
    let moved = wait_until(Duration::from_secs(5), || {
        for s in &srcs {
            let h = db.execute(COPY, encode_copy(&dst, s)).unwrap();
            let _ = h.wait_processed();
        }
        cluster.replicated_partitions() == vec![ServerId(hot)]
    });
    let snapshot = cluster.snapshot();
    let hotness = snapshot.child("hotness").expect("hotness subtree");
    assert!(
        moved,
        "standby must follow the hotness signal to partition {hot}: {snapshot:?}"
    );
    // The gauge subtree scores every live partition and flags the placement.
    // (Ranks are instantaneous: once the load drains they decay, so only the
    // placement flag is stable enough to assert.)
    for p in 0..total {
        let child = hotness
            .child(&format!("p{p}"))
            .expect("per-partition hotness child");
        assert_eq!(
            child.gauge("replicated"),
            Some(u64::from(p == hot)),
            "replicated flag must track the standby placement"
        );
        assert!(child.gauge("score").is_some());
        assert!(child.gauge("hit_rate_pct").is_some());
    }
    cluster.shutdown();
}

/// The shipping protocol over real sockets: a `ShipBatch` with WAL-encoded
/// frames crosses a genuine TCP connection to a standby applier on another
/// transport, and the replicated-watermark ack crosses back — the
/// correlation the primary's feed and the promotion flush barrier rely on.
#[test]
fn ship_batches_traverse_real_tcp_sockets() {
    let id = ServerId(1);
    let a = TcpTransport::bind("127.0.0.1:0", Arc::new(ServerMsgCodec)).unwrap();
    let b = TcpTransport::bind("127.0.0.1:0", Arc::new(ServerMsgCodec)).unwrap();
    a.add_peer(Addr::Replica(id), b.local_addr());
    let endpoint = b.register(Addr::Replica(id));

    let standby = Arc::new(Standby::new(Arc::new(Partition::new(
        PartitionId(id.0),
        3,
        Arc::new(HandlerRegistry::new()),
    ))));
    let applier = {
        let standby = Arc::clone(&standby);
        std::thread::spawn(move || loop {
            match endpoint.recv() {
                Ok(ServerMsg::ShipBatch {
                    watermark,
                    frames,
                    reply,
                    ..
                }) => {
                    standby.apply_batch(watermark, &frames).unwrap();
                    reply.send(standby.watermark());
                }
                Ok(ServerMsg::Shutdown) | Err(_) => break,
                Ok(_) => {}
            }
        })
    };

    let keys: Vec<Key> = (0..3u32)
        .map(|i| Key::from_parts(&[b"tcp", &i.to_be_bytes()]))
        .collect();
    let frames: Vec<(u64, Vec<u8>)> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| {
            let record = WalRecord::Install {
                key: k.clone(),
                version: Timestamp::from_raw((i as u64 + 1) * 7),
                functor: Functor::Value(Value::from_i64(i as i64 + 100)),
            };
            let mut buf = Vec::new();
            record.encode_into(&mut buf);
            (record.version().raw(), buf)
        })
        .collect();
    let watermark = Timestamp::from_raw(21);
    let (reply, handle) = reply_pair::<Timestamp>();
    a.send_reliable(
        Addr::Replica(id),
        ServerMsg::ShipBatch {
            from: PartitionId(id.0),
            watermark,
            frames: Arc::new(frames),
            reply,
        },
    )
    .unwrap();
    let acked = handle
        .wait_timeout(Duration::from_secs(5))
        .expect("watermark ack over TCP");
    assert_eq!(acked, watermark);
    assert!(
        a.stats().bytes_out() > 0,
        "the batch must actually cross the wire"
    );

    // The promotion flush barrier: an empty batch queued FIFO behind the
    // real ones, whose ack proves everything before it was applied.
    let (reply, handle) = reply_pair::<Timestamp>();
    a.send_reliable(
        Addr::Replica(id),
        ServerMsg::ShipBatch {
            from: PartitionId(id.0),
            watermark,
            frames: Arc::new(Vec::new()),
            reply,
        },
    )
    .unwrap();
    assert_eq!(
        handle
            .wait_timeout(Duration::from_secs(5))
            .expect("barrier ack over TCP"),
        watermark
    );

    for (i, k) in keys.iter().enumerate() {
        let read = standby
            .partition()
            .get(k, Timestamp::from_raw(1_000), &LocalOnlyEnv)
            .unwrap();
        assert_eq!(read.value, Some(Value::from_i64(i as i64 + 100)));
    }

    let _ = a.send_reliable(Addr::Replica(id), ServerMsg::Shutdown);
    applier.join().unwrap();
    a.shutdown();
    b.shutdown();
}
