//! §III-A primary-backup replication: every install is mirrored to the next
//! server in the ring before it is acknowledged, so a single crashed
//! partition can be rebuilt from its backup.

use std::time::Duration;

use aloha_common::{Key, ServerId, Value};
use aloha_core::{fn_program, Cluster, ClusterConfig, ProgramId, TxnOutcome, TxnPlan};
use aloha_functor::Functor;

const INCR: ProgramId = ProgramId(1);

fn build(servers: u16, replicated: bool, clock_offset: u64) -> Cluster {
    let mut config = ClusterConfig::new(servers)
        .with_epoch_duration(Duration::from_millis(3))
        .with_clock_offset(clock_offset);
    if replicated {
        config = config.with_ring_replication();
    }
    let mut builder = Cluster::builder(config);
    builder.register_program(
        INCR,
        fn_program(|ctx| {
            let key = Key::from(ctx.args);
            Ok(TxnPlan::new().write(key, Functor::add(1)))
        }),
    );
    builder.start().unwrap()
}

fn keys_on_partition(partition: u16, total: u16, count: usize) -> Vec<Key> {
    (0..)
        .map(|i: u32| Key::from_parts(&[b"rk", &i.to_be_bytes()]))
        .filter(|k| k.partition(total).0 == partition)
        .take(count)
        .collect()
}

#[test]
fn installs_are_mirrored_on_the_backup() {
    let total = 3u16;
    let cluster = build(total, true, 0);
    let key = keys_on_partition(0, total, 1).remove(0);
    cluster.load(key.clone(), Value::from_i64(0));
    let db = cluster.database();
    for _ in 0..5 {
        assert_eq!(
            db.execute(INCR, key.as_bytes())
                .unwrap()
                .wait_processed()
                .unwrap(),
            TxnOutcome::Committed
        );
    }
    // Partition 0's backup is server 1; it must hold the 5 mirrored functors.
    let backup = cluster.server(ServerId(1));
    let mirrored = backup.replica_dump();
    assert_eq!(mirrored.len(), 5);
    assert!(mirrored
        .iter()
        .all(|(k, _, f)| *k == key && *f == Functor::Add(1)));
    cluster.shutdown();
}

#[test]
fn lost_partition_rebuilds_from_backup_exactly() {
    let total = 3u16;
    let cluster = build(total, true, 0);
    // Work across all partitions so the rebuild is selective.
    let keys: Vec<Key> = (0..total)
        .map(|p| keys_on_partition(p, total, 1).remove(0))
        .collect();
    for k in &keys {
        cluster.load(k.clone(), Value::from_i64(0));
    }
    let db = cluster.database();
    for (i, k) in keys.iter().enumerate() {
        for _ in 0..=i {
            db.execute(INCR, k.as_bytes())
                .unwrap()
                .wait_processed()
                .unwrap();
        }
    }
    let expected: Vec<i64> = db
        .read_latest(&keys)
        .unwrap()
        .iter()
        .map(|v| v.as_ref().unwrap().as_i64().unwrap())
        .collect();
    let highest = db.visible_bound();

    // "Crash" partition 0: build a fresh cluster, reload the loader rows
    // (base data is durable via checkpoints in a real deployment), then
    // rebuild partition 0 from the old cluster's backup copy.
    let recovered = build(total, true, highest.micros() + 1);
    for k in &keys {
        recovered.load(k.clone(), Value::from_i64(0));
    }
    let applied = recovered
        .rebuild_from_replica(&cluster, ServerId(0))
        .unwrap();
    assert_eq!(applied, 1, "partition 0 received exactly one increment");
    // The other partitions are rebuilt through their own backups as well.
    recovered
        .rebuild_from_replica(&cluster, ServerId(1))
        .unwrap();
    recovered
        .rebuild_from_replica(&cluster, ServerId(2))
        .unwrap();
    cluster.shutdown();

    let rdb = recovered.database();
    let got: Vec<i64> = rdb
        .read_latest(&keys)
        .unwrap()
        .iter()
        .map(|v| v.as_ref().unwrap().as_i64().unwrap())
        .collect();
    assert_eq!(got, expected, "rebuilt cluster must match the primary");
    recovered.shutdown();
}

#[test]
fn aborted_transactions_replicate_their_rollback() {
    use aloha_core::Check;
    const DOOMED: ProgramId = ProgramId(2);
    let total = 2u16;
    let mut builder = Cluster::builder(
        ClusterConfig::new(total)
            .with_epoch_duration(Duration::from_millis(3))
            .with_ring_replication(),
    );
    builder.register_program(
        DOOMED,
        fn_program(|ctx| {
            let key = Key::from(ctx.args);
            Ok(TxnPlan::new().write_checked(
                key,
                Functor::add(1),
                Check::KeyExists(Key::from("guard-that-never-exists")),
            ))
        }),
    );
    let cluster = builder.start().unwrap();
    let key = keys_on_partition(0, total, 1).remove(0);
    cluster.load(key.clone(), Value::from_i64(7));
    let db = cluster.database();
    let h = db.execute(DOOMED, key.as_bytes()).unwrap();
    assert_eq!(h.wait_processed().unwrap(), TxnOutcome::Aborted);
    // The backup saw the rollback marker (an ABORTED record).
    let backup = cluster.server(ServerId(1));
    let mirrored = backup.replica_dump();
    assert!(
        mirrored.iter().any(|(_, _, f)| *f == Functor::Aborted),
        "rollback must be mirrored, got {mirrored:?}"
    );
    cluster.shutdown();
}

#[test]
fn replication_off_keeps_replica_empty() {
    let cluster = build(2, false, 0);
    let key = keys_on_partition(0, 2, 1).remove(0);
    cluster.load(key.clone(), Value::from_i64(0));
    let db = cluster.database();
    db.execute(INCR, key.as_bytes())
        .unwrap()
        .wait_processed()
        .unwrap();
    assert!(cluster.server(ServerId(1)).replica_dump().is_empty());
    assert!(cluster.rebuild_from_replica(&cluster, ServerId(0)).is_err());
    cluster.shutdown();
}

#[test]
fn single_server_cluster_disables_replication_gracefully() {
    let cluster = build(1, true, 0);
    cluster.load(Key::from("x"), Value::from_i64(0));
    let db = cluster.database();
    db.execute(INCR, Key::from("x").as_bytes())
        .unwrap()
        .wait_processed()
        .unwrap();
    // No second server to mirror to: the flag is a no-op, not a hang.
    assert!(cluster.server(ServerId(0)).replica_dump().is_empty());
    cluster.shutdown();
}
