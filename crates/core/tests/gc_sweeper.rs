//! Background garbage collection: settled history is reclaimed without
//! disturbing current reads or recent snapshots.

use std::time::Duration;

use aloha_common::{Key, Value};
use aloha_core::{fn_program, Cluster, ClusterConfig, ProgramId, TxnPlan};
use aloha_functor::Functor;

const INCR: ProgramId = ProgramId(1);

#[test]
fn sweeper_reclaims_old_versions_and_preserves_latest() {
    let mut builder = Cluster::builder(
        ClusterConfig::new(2)
            .with_epoch_duration(Duration::from_millis(3))
            // Sweep aggressively: keep only ~20 ms of history.
            .with_gc(Duration::from_millis(10), 20_000),
    );
    builder.register_program(
        INCR,
        fn_program(|_| Ok(TxnPlan::new().write(Key::from("hot"), Functor::add(1)))),
    );
    let cluster = builder.start().unwrap();
    cluster.load(Key::from("hot"), Value::from_i64(0));
    let db = cluster.database();

    // Generate a long version chain over several sweep intervals.
    for _ in 0..10 {
        let handles: Vec<_> = (0..10).map(|_| db.execute(INCR, b"").unwrap()).collect();
        for h in handles {
            h.wait_processed().unwrap();
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // Let the sweeper catch up with the settled tail.
    std::thread::sleep(Duration::from_millis(50));

    // The value is exact despite truncation...
    let v = db.read_latest(&[Key::from("hot")]).unwrap()[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(v, 100);
    // ...and the chain is much shorter than the 101 versions written.
    let owner = cluster.server(aloha_common::ServerId(Key::from("hot").partition(2).0));
    let chain_len = owner
        .partition()
        .store()
        .chain(&Key::from("hot"))
        .unwrap()
        .len();
    assert!(
        chain_len < 70,
        "sweeper should have truncated, chain still has {chain_len}"
    );
    cluster.shutdown();
}

#[test]
fn sweeper_never_breaks_recent_snapshots() {
    let mut builder = Cluster::builder(
        ClusterConfig::new(1)
            .with_epoch_duration(Duration::from_millis(3))
            .with_gc(Duration::from_millis(5), 200_000), // keep 200 ms
    );
    builder.register_program(
        INCR,
        fn_program(|_| Ok(TxnPlan::new().write(Key::from("x"), Functor::add(1)))),
    );
    let cluster = builder.start().unwrap();
    cluster.load(Key::from("x"), Value::from_i64(0));
    let db = cluster.database();
    let h = db.execute(INCR, b"").unwrap();
    h.wait_processed().unwrap();
    let snapshot = h.timestamp();
    for _ in 0..20 {
        db.execute(INCR, b"").unwrap().wait_processed().unwrap();
    }
    // The snapshot is well inside the retention window: still readable.
    let old = db.read_at(&[Key::from("x")], snapshot).unwrap();
    assert_eq!(old[0].as_ref().unwrap().as_i64(), Some(1));
    cluster.shutdown();
}
