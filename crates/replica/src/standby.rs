//! The standby: a shadow partition fed by shipped WAL frames.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use aloha_common::metrics::Counter;
use aloha_common::stats::StatsSnapshot;
use aloha_common::{Key, Result, Timestamp};
use aloha_storage::wal::{apply_records, read_log, WalRecord};
use aloha_storage::{restore_checkpoint, Partition};

/// A warm replica of one primary partition.
///
/// The standby applies the primary's shipped WAL batches through the exact
/// idempotent replay path recovery uses: installs are first-write-wins puts
/// (final forms settle pending duplicates in place) and aborts pre-insert
/// `ABORTED`, so re-applied frames (bootstrap overlap, transport duplicates)
/// are no-ops.
///
/// Group-commit frames carry *final forms* (the primary resolves them at the
/// epoch drain, when the epoch has settled), so each applied final record
/// also advances its chain's value watermark and the chains stay compactable
/// — the standby's memory stays bounded like a primary's, and promotion's
/// `Server::new` re-seeds only the uncomputed mid-epoch tail into its
/// pending set, not the whole shipped history.
#[derive(Debug)]
pub struct Standby {
    partition: Arc<Partition>,
    /// Raw timestamp below which this standby covers every primary record.
    watermark: AtomicU64,
    batches: Counter,
    records: Counter,
    bytes: Counter,
    /// Records applied since the last chain-compaction sweep.
    since_compact: AtomicU64,
}

/// Applied records between standby compaction sweeps.
const COMPACT_EVERY_RECORDS: u64 = 32_768;

/// Committed versions each standby chain keeps when compacting — a small
/// floor for snapshot reads that land just below the promotion frontier.
const COMPACT_KEEP_VERSIONS: usize = 4;

impl Standby {
    /// Wraps an (empty) shadow partition.
    pub fn new(partition: Arc<Partition>) -> Standby {
        Standby {
            partition,
            watermark: AtomicU64::new(0),
            batches: Counter::new(),
            records: Counter::new(),
            bytes: Counter::new(),
            since_compact: AtomicU64::new(0),
        }
    }

    /// The shadow partition (consumed by promotion).
    pub fn partition(&self) -> &Arc<Partition> {
        &self.partition
    }

    /// Applies one shipped batch and advances the replicated watermark.
    /// Returns the number of records applied.
    ///
    /// # Errors
    ///
    /// Fails on an undecodable frame — the reliable transport lane and the
    /// WAL checksums make that a bug, not an expected fault.
    pub fn apply_batch(&self, watermark: Timestamp, frames: &[(u64, Vec<u8>)]) -> Result<usize> {
        let mut decoded = Vec::with_capacity(frames.len());
        for (_, payload) in frames {
            for record in read_log(payload) {
                decoded.push(record?);
            }
        }
        let applied = apply_records(&self.partition, &decoded, Timestamp::ZERO);
        // Each applied final record tries to raise its chain's value
        // watermark — *checked*, not assumed: batches can carry records out
        // of settle order (a mid-epoch abort drained with the previous
        // epoch, a promotion's unsettled tail), and covering a pending
        // sibling would strand it forever. `try_advance_watermark` refuses
        // exactly those; the pending record stays above its chain watermark
        // and the promoted server's re-seed recomputes it. The advance keeps
        // standby chains compactable and that re-seed scan bounded by the
        // unsettled tail instead of the whole shipped history.
        let mut advances: HashMap<&Key, Timestamp> = HashMap::new();
        for record in &decoded {
            let is_final = match record {
                WalRecord::Install { functor, .. } => functor.is_final(),
                WalRecord::Abort { .. } => true,
            };
            if is_final {
                let upto = advances.entry(record.key()).or_insert(record.version());
                *upto = (*upto).max(record.version());
            }
        }
        for (key, upto) in advances {
            if let Some(chain) = self.partition.store().chain(key) {
                chain.try_advance_watermark(upto);
            }
        }
        self.batches.incr();
        self.records.add(applied as u64);
        self.bytes
            .add(frames.iter().map(|(_, f)| f.len() as u64).sum());
        self.watermark.fetch_max(watermark.raw(), Ordering::AcqRel);
        if self
            .since_compact
            .fetch_add(applied as u64, Ordering::Relaxed)
            + (applied as u64)
            >= COMPACT_EVERY_RECORDS
        {
            self.since_compact.store(0, Ordering::Relaxed);
            self.partition
                .store()
                .compact(self.watermark(), COMPACT_KEEP_VERSIONS);
        }
        Ok(applied)
    }

    /// Applies the attach-time WAL snapshot: records at or below the
    /// checkpoint cut are skipped (the checkpoint already covers them —
    /// identical to the restart path's suffix replay), the rest install
    /// idempotently.
    ///
    /// # Errors
    ///
    /// Fails on an undecodable payload.
    pub fn apply_wal_snapshot(&self, at: Timestamp, payload: &[u8]) -> Result<usize> {
        let mut decoded = Vec::new();
        for record in read_log(payload) {
            decoded.push(record?);
        }
        let applied = apply_records(&self.partition, &decoded, at);
        self.records.add(applied as u64);
        self.bytes.add(payload.len() as u64);
        self.watermark.fetch_max(at.raw(), Ordering::AcqRel);
        Ok(applied)
    }

    /// Restores a checkpoint blob into the shadow partition (initial state
    /// transfer at attach). Safe concurrently with `apply_batch`: restore
    /// puts are first-write-wins at their original versions, so frames that
    /// raced ahead of the bootstrap are never overwritten.
    ///
    /// # Errors
    ///
    /// Fails on a malformed blob.
    pub fn bootstrap(&self, blob: &[u8]) -> Result<Timestamp> {
        let at = restore_checkpoint(&self.partition, blob)?;
        self.watermark.fetch_max(at.raw(), Ordering::AcqRel);
        Ok(at)
    }

    /// The highest timestamp at or below which this standby covers every
    /// record the primary logged.
    pub fn watermark(&self) -> Timestamp {
        Timestamp::from_raw(self.watermark.load(Ordering::Acquire))
    }

    /// Total shipped bytes this standby applied (the replication bandwidth
    /// it consumed).
    pub fn applied_bytes(&self) -> u64 {
        self.bytes.get()
    }

    /// Total shipped records this standby applied.
    pub fn applied_records(&self) -> u64 {
        self.records.get()
    }

    /// Exports this standby as one stats node.
    pub fn snapshot(&self, name: impl Into<String>) -> StatsSnapshot {
        let mut node = StatsSnapshot::new(name);
        node.set_counter("applied_batches", self.batches.get());
        node.set_counter("applied_records", self.records.get());
        node.set_counter("applied_bytes", self.bytes.get());
        node.set_gauge(
            "replicated_watermark",
            self.watermark.load(Ordering::Acquire),
        );
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aloha_common::{Key, PartitionId, Value};
    use aloha_functor::{Functor, HandlerRegistry};
    use aloha_storage::partition::LocalOnlyEnv;
    use aloha_storage::wal::WalRecord;

    fn frame(record: &WalRecord) -> (u64, Vec<u8>) {
        let mut buf = Vec::new();
        record.encode_into(&mut buf);
        (record.version().raw(), buf)
    }

    fn install(key: &str, version: u64, value: i64) -> WalRecord {
        WalRecord::Install {
            key: Key::from(key.as_bytes()),
            version: Timestamp::from_raw(version),
            functor: Functor::Value(Value::from_i64(value)),
        }
    }

    #[test]
    fn apply_batch_is_idempotent_and_advances_watermark() {
        let standby = Standby::new(Arc::new(Partition::new(
            PartitionId(0),
            1,
            Arc::new(HandlerRegistry::new()),
        )));
        let frames = vec![frame(&install("a", 3, 10)), frame(&install("b", 5, 20))];
        assert_eq!(
            standby
                .apply_batch(Timestamp::from_raw(5), &frames)
                .unwrap(),
            2
        );
        // Re-applying the same batch (duplicate delivery) changes nothing.
        standby
            .apply_batch(Timestamp::from_raw(5), &frames)
            .unwrap();
        assert_eq!(standby.watermark(), Timestamp::from_raw(5));
        let read = standby
            .partition()
            .get(
                &Key::from("a".as_bytes()),
                Timestamp::from_raw(9),
                &LocalOnlyEnv,
            )
            .unwrap();
        assert_eq!(read.value, Some(Value::from_i64(10)));
    }

    #[test]
    fn aborts_apply_through_the_replay_path() {
        let standby = Standby::new(Arc::new(Partition::new(
            PartitionId(0),
            1,
            Arc::new(HandlerRegistry::new()),
        )));
        let abort = WalRecord::Abort {
            key: Key::from("k".as_bytes()),
            version: Timestamp::from_raw(4),
        };
        let frames = vec![frame(&install("k", 2, 1)), frame(&abort)];
        standby
            .apply_batch(Timestamp::from_raw(4), &frames)
            .unwrap();
        let read = standby
            .partition()
            .get(
                &Key::from("k".as_bytes()),
                Timestamp::from_raw(9),
                &LocalOnlyEnv,
            )
            .unwrap();
        // The abort at 4 is skipped; the committed install at 2 shows.
        assert_eq!(read.version, Timestamp::from_raw(2));
    }
}
