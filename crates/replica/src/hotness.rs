//! The hotness policy: which partitions deserve a standby under a budget.

use std::collections::BTreeSet;

/// One controller sampling round's raw signals for a partition, taken from
/// counters the engines already export: the partition's push-cache hit/miss
/// counters (§IV-B recipient-set pushes — a high hit rate means this
/// partition's values are in many read sets, i.e. it is *hot*) and the
/// server's functor-computing backlog (the same per-partition pressure the
/// adaptive pacer folds into its control signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSignal {
    /// The partition (== server) id.
    pub id: u16,
    /// Push-cache hits since start.
    pub cache_hits: u64,
    /// Push-cache misses since start.
    pub cache_misses: u64,
    /// Uncomputed/queued work at sampling time.
    pub backlog: u64,
}

/// A ranked hotness score, exported per partition on the cluster's
/// `hotness` stats subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotnessScore {
    /// The partition id.
    pub id: u16,
    /// Push-cache hit rate in percent (0 when never probed).
    pub hit_rate_pct: u64,
    /// Backlog pressure at sampling time.
    pub backlog: u64,
    /// Combined score (higher = hotter).
    pub score: u64,
    /// Dense rank, 0 = hottest.
    pub rank: usize,
}

/// Deterministic replica-placement policy.
///
/// The score is `hit_rate_pct * 100 + min(backlog, 10_000)`: the cache
/// signal dominates (it is bounded and stable), backlog breaks ties and
/// lifts partitions whose compute pipeline is drowning. Hysteresis keeps an
/// incumbent its standby until a challenger beats it by `margin_pct`
/// percent, so standbys are not torn down and rebuilt on signal noise —
/// every attach costs a checkpoint transfer.
#[derive(Debug, Clone)]
pub struct HotnessPolicy {
    budget: usize,
    margin_pct: u64,
}

/// Backlog contribution cap, so one stalled queue cannot outvote the cache
/// signal forever.
const BACKLOG_CAP: u64 = 10_000;

impl HotnessPolicy {
    /// A policy replicating at most `budget` partitions, 20% hysteresis.
    pub fn new(budget: usize) -> HotnessPolicy {
        HotnessPolicy {
            budget,
            margin_pct: 20,
        }
    }

    /// Overrides the hysteresis margin (percent a challenger must win by).
    pub fn with_margin_pct(mut self, margin_pct: u64) -> HotnessPolicy {
        self.margin_pct = margin_pct;
        self
    }

    /// The replica budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Scores and ranks the partitions, hottest first; ties break toward
    /// the lower id so the ranking is total and deterministic.
    pub fn rank(&self, signals: &[PartitionSignal]) -> Vec<HotnessScore> {
        let mut scored: Vec<HotnessScore> = signals
            .iter()
            .map(|s| {
                let probes = s.cache_hits + s.cache_misses;
                let hit_rate_pct = (s.cache_hits * 100).checked_div(probes).unwrap_or(0);
                HotnessScore {
                    id: s.id,
                    hit_rate_pct,
                    backlog: s.backlog,
                    score: hit_rate_pct * 100 + s.backlog.min(BACKLOG_CAP),
                    rank: 0,
                }
            })
            .collect();
        scored.sort_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));
        for (i, s) in scored.iter_mut().enumerate() {
            s.rank = i;
        }
        scored
    }

    /// Picks the partitions that should hold a standby: the top `budget` by
    /// score, except an incumbent keeps its slot unless some unreplicated
    /// challenger's score exceeds the incumbent's by the hysteresis margin.
    pub fn desired(
        &self,
        incumbents: &BTreeSet<u16>,
        signals: &[PartitionSignal],
    ) -> BTreeSet<u16> {
        let ranked = self.rank(signals);
        if self.budget == 0 {
            return BTreeSet::new();
        }
        if self.budget >= ranked.len() {
            return ranked.iter().map(|s| s.id).collect();
        }
        let mut chosen: Vec<&HotnessScore> = Vec::with_capacity(self.budget);
        // Incumbents first, hottest first, while the budget lasts.
        for s in &ranked {
            if chosen.len() < self.budget && incumbents.contains(&s.id) {
                chosen.push(s);
            }
        }
        // Challengers fill free slots outright; a full budget they must
        // earn by beating the weakest incumbent by the margin.
        for s in &ranked {
            if incumbents.contains(&s.id) || chosen.iter().any(|c| c.id == s.id) {
                continue;
            }
            if chosen.len() < self.budget {
                chosen.push(s);
                continue;
            }
            let (weakest_at, weakest) = chosen
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| (c.score, std::cmp::Reverse(c.id)))
                .map(|(i, c)| (i, *c))
                .expect("budget > 0");
            if s.score * 100 > weakest.score * (100 + self.margin_pct) {
                chosen[weakest_at] = s;
            }
        }
        chosen.iter().map(|s| s.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(id: u16, hits: u64, misses: u64, backlog: u64) -> PartitionSignal {
        PartitionSignal {
            id,
            cache_hits: hits,
            cache_misses: misses,
            backlog,
        }
    }

    #[test]
    fn rank_orders_by_score_then_id() {
        let policy = HotnessPolicy::new(1);
        let ranked = policy.rank(&[sig(0, 0, 0, 5), sig(1, 90, 10, 0), sig(2, 90, 10, 0)]);
        assert_eq!(
            ranked.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![1, 2, 0]
        );
        assert_eq!(ranked[0].rank, 0);
        assert_eq!(ranked[0].hit_rate_pct, 90);
    }

    #[test]
    fn desired_respects_budget() {
        let policy = HotnessPolicy::new(2);
        let signals = [sig(0, 10, 90, 0), sig(1, 80, 20, 0), sig(2, 50, 50, 0)];
        let desired = policy.desired(&BTreeSet::new(), &signals);
        assert_eq!(desired, BTreeSet::from([1, 2]));
    }

    #[test]
    fn hysteresis_protects_incumbents_from_noise() {
        let policy = HotnessPolicy::new(1).with_margin_pct(20);
        let incumbents = BTreeSet::from([0]);
        // Challenger barely ahead: incumbent keeps the standby.
        let close = [sig(0, 50, 50, 0), sig(1, 55, 45, 0)];
        assert_eq!(policy.desired(&incumbents, &close), BTreeSet::from([0]));
        // Challenger decisively hotter: the standby moves.
        let clear = [sig(0, 10, 90, 0), sig(1, 90, 10, 0)];
        assert_eq!(policy.desired(&incumbents, &clear), BTreeSet::from([1]));
    }

    #[test]
    fn budget_covering_everything_replicates_everything() {
        let policy = HotnessPolicy::new(8);
        let signals = [sig(0, 0, 0, 0), sig(1, 0, 0, 0), sig(2, 0, 0, 0)];
        assert_eq!(
            policy.desired(&BTreeSet::new(), &signals),
            BTreeSet::from([0, 1, 2])
        );
    }

    #[test]
    fn zero_budget_never_replicates() {
        let policy = HotnessPolicy::new(0);
        assert!(policy
            .desired(&BTreeSet::from([1]), &[sig(1, 9, 1, 0)])
            .is_empty());
    }
}
