//! The primary-side shipping tap: buffered WAL frames + watermarks.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use aloha_common::metrics::Counter;
use aloha_common::stats::StatsSnapshot;
use aloha_common::Timestamp;
use parking_lot::Mutex;

/// One drained batch of WAL frames ready to ship to the standby.
#[derive(Debug, Clone)]
pub struct ShippedBatch {
    /// Cumulative replicated watermark: once the standby applies this batch
    /// it covers every record the primary ever logged with version at or
    /// below this timestamp (shipping is in log order and reliable).
    pub watermark: Timestamp,
    /// `(version, encoded frame)` pairs in log order — the exact payloads
    /// the [`aloha_storage::DurableLog`] group-commits.
    pub frames: Vec<(u64, Vec<u8>)>,
}

/// The per-primary ship buffer.
///
/// The server's WAL sink pushes a copy of every encoded frame here while the
/// feed is active; `Server::commit_wal` (the epoch group commit, which runs
/// just before the `RevokedAck`) drains the buffer into one [`ShippedBatch`]
/// per epoch. Because the drain happens *before* the ack, a settled epoch
/// implies its frames were handed to the transport's reliable lane — the
/// invariant the promotion safety argument rests on.
///
/// Inactive feeds cost one relaxed atomic load per logged record.
#[derive(Debug, Default)]
pub struct ShipFeed {
    active: AtomicBool,
    buf: Mutex<Vec<(u64, Vec<u8>)>>,
    /// Highest version ever drained into a batch (raw timestamp).
    shipped_watermark: AtomicU64,
    /// Highest watermark the standby has acknowledged applying.
    acked_watermark: AtomicU64,
    batches: Counter,
    records: Counter,
    bytes: Counter,
}

impl ShipFeed {
    /// Creates an inactive feed.
    pub fn new() -> ShipFeed {
        ShipFeed::default()
    }

    /// Whether frames are currently being buffered for shipping.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Starts buffering frames (idempotent).
    pub fn activate(&self) {
        self.active.store(true, Ordering::Release);
    }

    /// Stops buffering and discards anything not yet drained.
    pub fn deactivate(&self) {
        self.active.store(false, Ordering::Release);
        self.buf.lock().clear();
    }

    /// Buffers one encoded WAL frame, if the feed is active.
    pub fn push(&self, version: u64, frame: Vec<u8>) {
        if !self.is_active() {
            return;
        }
        self.buf.lock().push((version, frame));
    }

    /// Drains the buffered frames into one shipped batch, or `None` when
    /// nothing was logged since the last drain (write-free epochs ship
    /// nothing; the watermark only advances with actual records).
    pub fn drain(&self) -> Option<ShippedBatch> {
        if !self.is_active() {
            return None;
        }
        let frames: Vec<(u64, Vec<u8>)> = std::mem::take(&mut *self.buf.lock());
        if frames.is_empty() {
            return None;
        }
        let high = frames.iter().map(|(v, _)| *v).max().unwrap_or(0);
        let watermark = self
            .shipped_watermark
            .fetch_max(high, Ordering::AcqRel)
            .max(high);
        self.batches.incr();
        self.records.add(frames.len() as u64);
        self.bytes
            .add(frames.iter().map(|(_, f)| f.len() as u64).sum());
        Some(ShippedBatch {
            watermark: Timestamp::from_raw(watermark),
            frames,
        })
    }

    /// Puts drained frames back at the *front* of the buffer. Used when the
    /// transport refuses a ship send (e.g. the standby endpoint is being
    /// swapped): the frames stay in the feed buffer, preserving the
    /// promotion invariant that every logged frame is applied, queued at the
    /// standby, or still sitting here.
    pub fn requeue(&self, frames: Vec<(u64, Vec<u8>)>) {
        if !self.is_active() || frames.is_empty() {
            return;
        }
        let mut buf = self.buf.lock();
        let tail = std::mem::replace(&mut *buf, frames);
        buf.extend(tail);
    }

    /// Highest version ever drained for shipping.
    pub fn shipped_watermark(&self) -> Timestamp {
        Timestamp::from_raw(self.shipped_watermark.load(Ordering::Acquire))
    }

    /// Records the standby's applied-watermark acknowledgement (monotone).
    pub fn note_acked(&self, watermark: Timestamp) {
        self.acked_watermark
            .fetch_max(watermark.raw(), Ordering::AcqRel);
    }

    /// Highest watermark the standby has acknowledged.
    pub fn acked_watermark(&self) -> Timestamp {
        Timestamp::from_raw(self.acked_watermark.load(Ordering::Acquire))
    }

    /// Total bytes drained for shipping (the replication bandwidth cost).
    pub fn bytes_shipped(&self) -> u64 {
        self.bytes.get()
    }

    /// Exports this feed as one stats node.
    pub fn snapshot(&self, name: impl Into<String>) -> StatsSnapshot {
        let mut node = StatsSnapshot::new(name);
        node.set_counter("ship_batches", self.batches.get());
        node.set_counter("ship_records", self.records.get());
        node.set_counter("ship_bytes", self.bytes.get());
        node.set_gauge(
            "shipped_watermark",
            self.shipped_watermark.load(Ordering::Acquire),
        );
        node.set_gauge(
            "acked_watermark",
            self.acked_watermark.load(Ordering::Acquire),
        );
        node.set_gauge("active", u64::from(self.is_active()));
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_feed_buffers_nothing() {
        let feed = ShipFeed::new();
        feed.push(3, vec![1, 2, 3]);
        assert!(feed.drain().is_none());
    }

    #[test]
    fn drain_returns_frames_in_order_with_cumulative_watermark() {
        let feed = ShipFeed::new();
        feed.activate();
        feed.push(5, vec![0xa]);
        feed.push(3, vec![0xb]);
        let batch = feed.drain().expect("first batch");
        assert_eq!(batch.watermark, Timestamp::from_raw(5));
        assert_eq!(batch.frames, vec![(5, vec![0xa]), (3, vec![0xb])]);

        // Empty epoch: nothing to ship, watermark holds.
        assert!(feed.drain().is_none());
        assert_eq!(feed.shipped_watermark(), Timestamp::from_raw(5));

        feed.push(9, vec![0xc]);
        let batch = feed.drain().expect("second batch");
        assert_eq!(batch.watermark, Timestamp::from_raw(9));
        assert_eq!(feed.bytes_shipped(), 3);
    }

    #[test]
    fn deactivate_discards_pending_frames() {
        let feed = ShipFeed::new();
        feed.activate();
        feed.push(1, vec![0xff]);
        feed.deactivate();
        feed.activate();
        assert!(feed.drain().is_none());
    }

    #[test]
    fn acked_watermark_is_monotone() {
        let feed = ShipFeed::new();
        feed.note_acked(Timestamp::from_raw(7));
        feed.note_acked(Timestamp::from_raw(4));
        assert_eq!(feed.acked_watermark(), Timestamp::from_raw(7));
    }
}
