//! Hot-partition replication: log shipping, standby apply, failover policy.
//!
//! PR 6 made a backend crash survivable (restart replays the WAL) and the
//! §III-A ring mirror protects against data loss, but neither keeps the
//! partition *available*: a dead BE takes its keys offline until
//! `restart_server` finishes a checkpoint restore plus WAL-suffix replay.
//! This crate holds the engine-independent half of the fix — partial
//! replication of only the *hot* partitions:
//!
//! * [`ShipFeed`] — the primary-side tap. When active, the server buffers a
//!   copy of every WAL frame it group-commits and drains them into one
//!   shipped batch per epoch close, stamped with a cumulative replicated
//!   watermark.
//! * [`Standby`] — the receive side. A shadow partition that applies shipped
//!   frames through the same idempotent replay path recovery uses
//!   ([`aloha_storage::wal::replay_records`]) and tracks the highest
//!   watermark it fully covers.
//! * [`HotnessPolicy`] — the controller's brain. Ranks partitions by
//!   push-cache hit rate and backlog pressure and picks which ones deserve
//!   a standby under a fixed replica budget, with hysteresis so the set
//!   doesn't flap.
//! * [`AvailabilityStats`] — downtime bookkeeping across kill, failover and
//!   restart, exported as the cluster's `availability` stats subtree.
//!
//! The transport wiring (the `ShipBatch` message, attach/detach at epoch
//! boundaries, standby promotion inside `kill_server`) lives in
//! `aloha-core::replication`, which composes these pieces; Calvin does not
//! support partial replication and keeps the restart-from-WAL path (see its
//! `supports_partial_replication` note).

#![warn(missing_docs)]

pub mod availability;
pub mod feed;
pub mod hotness;
pub mod standby;

pub use availability::AvailabilityStats;
pub use feed::{ShipFeed, ShippedBatch};
pub use hotness::{HotnessPolicy, HotnessScore, PartitionSignal};
pub use standby::Standby;
