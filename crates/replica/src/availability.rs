//! Downtime bookkeeping across kill, failover and restart.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use aloha_common::stats::StatsSnapshot;
use parking_lot::Mutex;

/// One partition's availability record.
#[derive(Debug, Default, Clone, Copy)]
struct PartitionAvailability {
    downtime_micros: u64,
    failovers: u64,
    restarts: u64,
}

#[derive(Debug, Default)]
struct Inner {
    per: BTreeMap<u16, PartitionAvailability>,
    down_since: BTreeMap<u16, Instant>,
    kills: u64,
    failovers: u64,
    restarts: u64,
}

/// Cluster-wide availability accounting, exported as the `availability`
/// stats subtree: per-partition downtime in microseconds accumulated across
/// kill→failover and kill→restart windows, plus failover/restart counts.
///
/// The clock starts at [`AvailabilityStats::note_down`] (called by
/// `kill_server` before teardown begins) and stops when the partition's slot
/// holds a serving server again — either a promoted standby
/// ([`AvailabilityStats::note_failover`]) or a WAL-restored restart
/// ([`AvailabilityStats::note_restart`]).
#[derive(Debug, Default)]
pub struct AvailabilityStats {
    inner: Mutex<Inner>,
}

impl AvailabilityStats {
    /// Creates empty accounting.
    pub fn new() -> AvailabilityStats {
        AvailabilityStats::default()
    }

    /// Marks partition `id` down (a kill began). Starts its downtime clock.
    pub fn note_down(&self, id: u16) {
        let mut inner = self.inner.lock();
        inner.kills += 1;
        inner.down_since.insert(id, Instant::now());
    }

    /// Marks partition `id` back up via standby promotion; returns the
    /// downtime window just closed.
    pub fn note_failover(&self, id: u16) -> Duration {
        self.note_up(id, true)
    }

    /// Marks partition `id` back up via restart-from-WAL; returns the
    /// downtime window just closed.
    pub fn note_restart(&self, id: u16) -> Duration {
        self.note_up(id, false)
    }

    fn note_up(&self, id: u16, failover: bool) -> Duration {
        let mut inner = self.inner.lock();
        let down = inner
            .down_since
            .remove(&id)
            .map(|t| t.elapsed())
            .unwrap_or_default();
        let entry = inner.per.entry(id).or_default();
        entry.downtime_micros += down.as_micros() as u64;
        if failover {
            entry.failovers += 1;
        } else {
            entry.restarts += 1;
        }
        if failover {
            inner.failovers += 1;
        } else {
            inner.restarts += 1;
        }
        down
    }

    /// Total kills observed.
    pub fn kills(&self) -> u64 {
        self.inner.lock().kills
    }

    /// Total standby promotions.
    pub fn failovers(&self) -> u64 {
        self.inner.lock().failovers
    }

    /// Total restart-from-WAL recoveries.
    pub fn restarts(&self) -> u64 {
        self.inner.lock().restarts
    }

    /// Accumulated downtime of partition `id` in microseconds.
    pub fn downtime_micros(&self, id: u16) -> u64 {
        self.inner
            .lock()
            .per
            .get(&id)
            .map_or(0, |p| p.downtime_micros)
    }

    /// Exports the `availability` stats subtree.
    pub fn snapshot(&self) -> StatsSnapshot {
        let inner = self.inner.lock();
        let mut node = StatsSnapshot::new("availability");
        node.set_counter("kills", inner.kills);
        node.set_counter("failovers", inner.failovers);
        node.set_counter("restarts", inner.restarts);
        for (id, p) in &inner.per {
            let mut child = StatsSnapshot::new(format!("p{id}"));
            child.set_counter("downtime_micros", p.downtime_micros);
            child.set_counter("failovers", p.failovers);
            child.set_counter("restarts", p.restarts);
            node.push_child(child);
        }
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_and_restart_accumulate_separately() {
        let stats = AvailabilityStats::new();
        stats.note_down(2);
        let d = stats.note_failover(2);
        stats.note_down(2);
        stats.note_restart(2);
        assert_eq!(stats.kills(), 2);
        assert_eq!(stats.failovers(), 1);
        assert_eq!(stats.restarts(), 1);
        assert!(stats.downtime_micros(2) >= d.as_micros() as u64);

        let snap = stats.snapshot();
        assert_eq!(snap.counter("failovers"), Some(1));
        let p2 = snap.child("p2").expect("partition child");
        assert_eq!(p2.counter("failovers"), Some(1));
        assert_eq!(p2.counter("restarts"), Some(1));
    }

    #[test]
    fn up_without_down_is_a_zero_window() {
        let stats = AvailabilityStats::new();
        assert_eq!(stats.note_restart(0), Duration::ZERO);
        assert_eq!(stats.downtime_micros(0), 0);
    }
}
