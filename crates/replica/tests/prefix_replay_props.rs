//! The shipping-protocol safety property promotion rests on: a standby that
//! applied any prefix of the shipped batches holds exactly the primary's
//! state at that prefix's watermark — and duplicate deliveries (transport
//! retries, bootstrap overlap) never change it.

use std::sync::Arc;

use aloha_common::{Key, PartitionId, Timestamp, Value};
use aloha_functor::{Functor, HandlerRegistry};
use aloha_replica::Standby;
use aloha_storage::partition::LocalOnlyEnv;
use aloha_storage::wal::WalRecord;
use aloha_storage::Partition;
use proptest::prelude::*;

/// A ship batch as the wire carries it: watermark plus versioned frames.
type Batch = (Timestamp, Vec<(u64, Vec<u8>)>);

const KEYS: usize = 4;

fn key(i: usize) -> Key {
    Key::from_parts(&[b"pp", &(i as u32).to_be_bytes()])
}

fn fresh_standby() -> Standby {
    Standby::new(Arc::new(Partition::new(
        PartitionId(0),
        1,
        Arc::new(HandlerRegistry::new()),
    )))
}

fn frame(record: &WalRecord) -> (u64, Vec<u8>) {
    let mut buf = Vec::new();
    record.encode_into(&mut buf);
    (record.version().raw(), buf)
}

/// Observable state: every key's newest committed version and value, read
/// far past any generated version.
fn state(standby: &Standby) -> Vec<Option<(u64, Option<i64>)>> {
    (0..KEYS)
        .map(|i| {
            standby
                .partition()
                .get(&key(i), Timestamp::from_raw(u64::MAX / 2), &LocalOnlyEnv)
                .ok()
                .map(|r| (r.version.raw(), r.value.as_ref().and_then(Value::as_i64)))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn standby_prefix_equals_primary_state_at_watermark(
        ops in proptest::collection::vec(
            (0usize..KEYS, any::<bool>(), -100i64..100),
            1..40,
        ),
        splits in proptest::collection::vec(1usize..5, 1..12),
        prefix_hint in any::<u64>(),
    ) {
        // A primary's log: strictly increasing versions, installs and
        // aborts interleaved over a small key set.
        let records: Vec<WalRecord> = ops
            .iter()
            .enumerate()
            .map(|(i, &(k, abort, v))| {
                let version = Timestamp::from_raw((i as u64 + 1) * 3);
                if abort {
                    WalRecord::Abort { key: key(k), version }
                } else {
                    WalRecord::Install {
                        key: key(k),
                        version,
                        functor: Functor::Value(Value::from_i64(v)),
                    }
                }
            })
            .collect();
        // Group-commit boundaries: chunk the log into ShipBatch-shaped
        // batches, each stamped with its highest version as the watermark.
        let mut batches: Vec<Batch> = Vec::new();
        let mut rest = &records[..];
        let mut si = 0;
        while !rest.is_empty() {
            let take = splits[si % splits.len()].min(rest.len());
            si += 1;
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            let wm = chunk.last().unwrap().version();
            batches.push((wm, chunk.iter().map(frame).collect()));
        }
        let prefix = (prefix_hint as usize) % (batches.len() + 1);
        let watermark = if prefix == 0 {
            Timestamp::ZERO
        } else {
            batches[prefix - 1].0
        };

        // Ship the prefix batch by batch, as the epoch group commits would.
        let shipped = fresh_standby();
        for (wm, frames) in &batches[..prefix] {
            prop_assert!(shipped.apply_batch(*wm, frames).is_ok());
        }
        prop_assert_eq!(shipped.watermark(), watermark);

        // The primary's state at that watermark: every logged record at or
        // below it, replayed in one go (the recovery path's view).
        let reference = fresh_standby();
        let covered: Vec<(u64, Vec<u8>)> = records
            .iter()
            .filter(|r| r.version() <= watermark)
            .map(frame)
            .collect();
        reference.apply_batch(watermark, &covered).unwrap();
        prop_assert_eq!(state(&shipped), state(&reference));

        // Duplicate delivery in any order is a no-op: re-apply the whole
        // prefix backwards and nothing may change (first-write-wins).
        for (wm, frames) in batches[..prefix].iter().rev() {
            shipped.apply_batch(*wm, frames).unwrap();
        }
        prop_assert_eq!(state(&shipped), state(&reference));
        prop_assert_eq!(shipped.watermark(), watermark);
    }
}
