//! The paper's Figure 5 walk-through: three consecutive transactions over
//! two accounts, including a conditional transfer that aborts in the functor
//! computing phase. Prints the version chains before and after computing —
//! the left/right sides of Figure 5.
//!
//! Run with: `cargo run --example bank_transfer`

use std::sync::Arc;

use aloha_common::{Key, PartitionId, Timestamp, Value};
use aloha_functor::{
    ComputeInput, Functor, HandlerId, HandlerOutput, HandlerRegistry, UserFunctor,
};
use aloha_storage::{LocalOnlyEnv, Partition};

fn dump(partition: &Partition, name: &str, key: &Key) {
    println!("  account {name}:");
    let chain = partition.store().chain(key).expect("account exists");
    for (version, functor) in chain.dump() {
        println!("    version {:>6}  {functor}", version.raw());
    }
}

fn main() {
    // Handlers for the conditional transfer (T3): both functors read account
    // A and agree on the abort decision — "any keys that influence the abort
    // decision must be in the read sets of all the functors" (§IV-C).
    let a = Key::from("account-a");
    let b = Key::from("account-b");
    let mut registry = HandlerRegistry::new();
    let a_ref = a.clone();
    registry.register(HandlerId(1), move |input: &ComputeInput<'_>| {
        let balance = input.reads.i64(&a_ref).unwrap_or(0);
        let amount = i64::from_be_bytes(input.args.try_into().unwrap());
        if balance < amount {
            HandlerOutput::abort() // insufficient funds
        } else {
            HandlerOutput::commit(Value::from_i64(balance - amount))
        }
    });
    let a_ref = a.clone();
    let b_ref = b.clone();
    registry.register(HandlerId(2), move |input: &ComputeInput<'_>| {
        let a_balance = input.reads.i64(&a_ref).unwrap_or(0);
        let b_balance = input.reads.i64(&b_ref).unwrap_or(0);
        let amount = i64::from_be_bytes(input.args.try_into().unwrap());
        if a_balance < amount {
            HandlerOutput::abort()
        } else {
            HandlerOutput::commit(Value::from_i64(b_balance + amount))
        }
    });

    let partition = Partition::new(PartitionId(0), 1, Arc::new(registry));
    let ts = Timestamp::from_raw;

    // T1 (version 10000): multi-write $150 to A, $100 to B.
    partition
        .install(&a, ts(10_000), Functor::value_i64(150))
        .unwrap();
    partition
        .install(&b, ts(10_000), Functor::value_i64(100))
        .unwrap();
    // T2 (version 15480): transfer $100 from A to B via numeric functors.
    partition
        .install(&a, ts(15_480), Functor::subtr(100))
        .unwrap();
    partition
        .install(&b, ts(15_480), Functor::add(100))
        .unwrap();
    // T3 (version 19600): transfer $100 from A to B *if* the remaining
    // balance is non-negative — must abort, because A holds only $50.
    let amount = 100i64.to_be_bytes().to_vec();
    partition
        .install(
            &a,
            ts(19_600),
            Functor::User(UserFunctor::new(
                HandlerId(1),
                vec![a.clone()],
                amount.clone(),
            )),
        )
        .unwrap();
    partition
        .install(
            &b,
            ts(19_600),
            Functor::User(UserFunctor::new(
                HandlerId(2),
                vec![a.clone(), b.clone()],
                amount,
            )),
        )
        .unwrap();

    println!("before functor computation (left side of Fig 5):");
    dump(&partition, "A", &a);
    dump(&partition, "B", &b);

    // The computing phase: a single Get drives Algorithm 1 through the whole
    // chain — T2's functors become VALUEs and T3 aborts on both keys.
    let env = LocalOnlyEnv;
    let read_a = partition.get(&a, Timestamp::MAX, &env).unwrap();
    let read_b = partition.get(&b, Timestamp::MAX, &env).unwrap();

    println!("\nafter functor computation (right side of Fig 5):");
    dump(&partition, "A", &a);
    dump(&partition, "B", &b);

    println!(
        "\nlatest balances: A = {} (at version {}), B = {} (at version {})",
        read_a.value.as_ref().unwrap().as_i64().unwrap(),
        read_a.version.raw(),
        read_b.value.as_ref().unwrap().as_i64().unwrap(),
        read_b.version.raw(),
    );
    assert_eq!(read_a.value.unwrap().as_i64(), Some(50));
    assert_eq!(read_b.value.unwrap().as_i64(), Some(200));
    println!("T3 aborted on both keys, T2's transfer stands: exactly Figure 5.");
}
