//! A miniature TPC-C run on ALOHA-DB: loads a 2-server warehouse-partitioned
//! database, pushes a burst of distributed NewOrder transactions (including
//! the 1 % invalid-item aborts) and a few Payments, then verifies the
//! database invariants and prints throughput.
//!
//! Run with: `cargo run --release --example tpcc_demo`

use std::time::{Duration, Instant};

use aloha_core::{Cluster, ClusterConfig, TxnOutcome};
use aloha_workloads::tpcc::{self, gen, TpccConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = TpccConfig::by_warehouse(2, 1)
        .with_items(500)
        .with_customers(30);
    let mut builder = Cluster::builder(
        ClusterConfig::new(cfg.partitions).with_epoch_duration(Duration::from_millis(10)),
    );
    tpcc::aloha::install(&mut builder, &cfg);
    let cluster = builder.start()?;
    print!(
        "loading TPC-C database ({} warehouses, {} items)... ",
        cfg.warehouses, cfg.items
    );
    tpcc::aloha::load(&cluster, &cfg);
    println!("done");

    let db = cluster.database();
    let mut rng = SmallRng::seed_from_u64(2018);

    // A burst of NewOrders — every one touches a second server, and about
    // 1 % reference an invalid item and must abort (§V-A2).
    let started = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..400 {
        let req = gen::gen_new_order(&mut rng, &cfg, true);
        handles.push((
            req.clone(),
            db.execute(tpcc::aloha::NEW_ORDER, req.encode())?,
        ));
    }
    let mut committed = 0;
    let mut aborted = 0;
    for (req, handle) in handles {
        match handle.wait_processed()? {
            TxnOutcome::Committed => {
                assert!(!req.has_invalid_item());
                committed += 1;
            }
            TxnOutcome::Aborted => {
                assert!(req.has_invalid_item(), "only invalid items may abort");
                aborted += 1;
            }
        }
    }
    let elapsed = started.elapsed();
    println!(
        "NewOrder: {committed} committed, {aborted} aborted in {:.0} ms ({:.1} k txn/s)",
        elapsed.as_secs_f64() * 1000.0,
        (committed + aborted) as f64 / elapsed.as_secs_f64() / 1000.0
    );

    // Consistency: district counters advanced by exactly the commit count.
    let mut orders_created = 0i64;
    for w in 0..cfg.warehouses {
        for d in 0..cfg.districts {
            let noid = db.read_latest(&[cfg.district_noid_key(w, d)])?[0]
                .as_ref()
                .unwrap()
                .as_i64()
                .unwrap();
            orders_created += noid - TpccConfig::INITIAL_NEXT_O_ID;
        }
    }
    assert_eq!(
        orders_created, committed as i64,
        "district counters must match commits"
    );
    println!("district next_o_id counters advanced by exactly {orders_created} — consistent");

    // A few Payments, checked by conservation of totals.
    let mut total = 0i64;
    let mut handles = Vec::new();
    for _ in 0..50 {
        let req = gen::gen_payment(&mut rng, &cfg);
        total += req.amount_cents;
        handles.push(db.execute(tpcc::aloha::PAYMENT, req.encode())?);
    }
    for h in handles {
        assert_eq!(h.wait_processed()?, TxnOutcome::Committed);
    }
    let wytd_keys: Vec<_> = (0..cfg.warehouses).map(|w| cfg.wytd_key(w)).collect();
    let wsum: i64 = db
        .read_latest(&wytd_keys)?
        .iter()
        .map(|v| v.as_ref().unwrap().as_i64().unwrap())
        .sum();
    assert_eq!(wsum, total);
    println!("Payment: warehouse YTD sum {wsum} cents equals total paid — conserved");

    let snapshot = cluster.snapshot();
    let mean = |stage: &str| snapshot.stage(stage).map_or(0.0, |s| s.mean_micros);
    println!(
        "stage breakdown (mean µs): install={:.0} wait={:.0} process={:.0}",
        mean("functor_install"),
        mean("epoch_close"),
        mean("functor_computing")
    );
    cluster.shutdown();
    println!("done.");
    Ok(())
}
