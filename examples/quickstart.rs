//! Quickstart: start a 2-server ALOHA-DB cluster, run a read-write
//! transaction expressed as functors, and read the result back.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use aloha_common::{Key, Value};
use aloha_core::{fn_program, Cluster, ClusterConfig, ProgramId, TxnOutcome, TxnPlan};
use aloha_functor::Functor;

const TRANSFER: ProgramId = ProgramId(1);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-server cluster with short epochs so the demo is snappy
    // (the paper's production setting is 25 ms).
    let mut builder =
        Cluster::builder(ClusterConfig::new(2).with_epoch_duration(Duration::from_millis(5)));

    // A transfer program: args = [amount i64]. The read-modify-write on each
    // account collapses into a numeric functor — no locks, no 2PC.
    builder.register_program(
        TRANSFER,
        fn_program(|ctx| {
            let amount = i64::from_be_bytes(ctx.args.try_into().expect("8-byte amount"));
            Ok(TxnPlan::new()
                .write(Key::from("alice"), Functor::subtr(amount))
                .write(Key::from("bob"), Functor::add(amount)))
        }),
    );
    let cluster = builder.start()?;

    // Initial balances.
    cluster.load(Key::from("alice"), Value::from_i64(100));
    cluster.load(Key::from("bob"), Value::from_i64(0));

    let db = cluster.database();
    println!("transferring 30 from alice to bob, three times...");
    for i in 1..=3 {
        // execute_wait = submit + block until the functors are processed.
        let outcome = db.execute_wait(TRANSFER, 30i64.to_be_bytes())?;
        assert_eq!(outcome, TxnOutcome::Committed);
        println!("  transfer #{i} committed");
    }

    let alice = db.read_one(&Key::from("alice"))?.unwrap().as_i64().unwrap();
    let bob = db.read_one(&Key::from("bob"))?.unwrap().as_i64().unwrap();
    println!("final balances: alice={alice} bob={bob}");
    assert_eq!((alice, bob), (10, 90));

    // One stats tree for the whole cluster: counters, per-stage latency
    // percentiles, and per-server subtrees. `.to_json()` exports the same
    // structure machine-readably.
    let snapshot = cluster.snapshot();
    println!(
        "cluster stats: {} committed, e2e p99 {:.1} ms",
        snapshot.counter("committed").unwrap_or(0),
        snapshot.stage("e2e").map_or(0.0, |s| s.p99_micros as f64) / 1000.0
    );
    cluster.shutdown();
    println!("done.");
    Ok(())
}
