//! Quickstart: start a 2-server ALOHA-DB cluster, run a read-write
//! transaction expressed as functors, and read the result back.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use aloha_common::{Key, Value};
use aloha_core::{fn_program, Cluster, ClusterConfig, ProgramId, TxnOutcome, TxnPlan};
use aloha_functor::Functor;

const TRANSFER: ProgramId = ProgramId(1);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-server cluster with short epochs so the demo is snappy
    // (the paper's production setting is 25 ms).
    let mut builder =
        Cluster::builder(ClusterConfig::new(2).with_epoch_duration(Duration::from_millis(5)));

    // A transfer program: args = [amount i64]. The read-modify-write on each
    // account collapses into a numeric functor — no locks, no 2PC.
    builder.register_program(
        TRANSFER,
        fn_program(|ctx| {
            let amount = i64::from_be_bytes(ctx.args.try_into().expect("8-byte amount"));
            Ok(TxnPlan::new()
                .write(Key::from("alice"), Functor::subtr(amount))
                .write(Key::from("bob"), Functor::add(amount)))
        }),
    );
    let cluster = builder.start()?;

    // Initial balances.
    cluster.load(Key::from("alice"), Value::from_i64(100));
    cluster.load(Key::from("bob"), Value::from_i64(0));

    let db = cluster.database();
    println!("transferring 30 from alice to bob, three times...");
    for i in 1..=3 {
        let handle = db.execute(TRANSFER, 30i64.to_be_bytes())?;
        let outcome = handle.wait_processed()?;
        assert_eq!(outcome, TxnOutcome::Committed);
        println!(
            "  transfer #{i} committed at version {}",
            handle.timestamp()
        );
    }

    let balances = db.read_latest(&[Key::from("alice"), Key::from("bob")])?;
    let alice = balances[0].as_ref().unwrap().as_i64().unwrap();
    let bob = balances[1].as_ref().unwrap().as_i64().unwrap();
    println!("final balances: alice={alice} bob={bob}");
    assert_eq!((alice, bob), (10, 90));

    let stats = cluster.stats();
    println!(
        "cluster stats: {} committed, mean latency {:.1} ms",
        stats.committed,
        stats.latency_mean_micros / 1000.0
    );
    cluster.shutdown();
    println!("done.");
    Ok(())
}
