//! Chaos-run walkthrough: a seeded fault plan disrupting a live cluster,
//! the recorded history, and the serializability checker's verdict.
//!
//! Run with an optional seed (default 7):
//!
//! ```text
//! cargo run --release --example chaos_demo -- 1011
//! ```
//!
//! The run prints its one-line `FaultPlan` — the complete reproduction
//! recipe — plus the injected-fault counters and the checker's diff of the
//! cluster state against a sequential replay of the commit history.

use std::collections::HashMap;
use std::time::Duration;

use aloha_db::common::{Key, ServerId, Value};
use aloha_db::core_engine::{
    diff_states, fn_program, replay_history, Cluster, ClusterConfig, ProgramId, TxnPlan,
};
use aloha_db::functor::{
    ComputeInput, Functor, HandlerId, HandlerOutput, HandlerRegistry, UserFunctor,
};
use aloha_db::net::{FaultPlan, LinkFault, NetConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const AFFINE: ProgramId = ProgramId(1);
const H_AFFINE: HandlerId = HandlerId(1);
const KEYS: usize = 8;
const TXNS: usize = 120;

fn key(i: usize) -> Key {
    Key::from_parts(&[b"reg", &(i as u32).to_be_bytes()])
}

/// `dst := 2*src + c` — non-commutative across keys, so any lost, duplicated
/// or reordered effect shows up in the final state.
fn affine_handler(input: &ComputeInput<'_>) -> HandlerOutput {
    let src = Key::from(&input.args[0..input.args.len() - 8]);
    let c = i64::from_be_bytes(input.args[input.args.len() - 8..].try_into().unwrap());
    let v = input.reads.i64(&src).unwrap_or(0);
    HandlerOutput::commit(Value::from_i64(v.wrapping_mul(2).wrapping_add(c)))
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(7);

    let plan = FaultPlan::new(seed)
        .with_default_link(LinkFault::lossy(0.03, 0.03, 0.05, Duration::from_millis(1)))
        .with_partition(
            Duration::from_millis(25),
            Duration::from_millis(55),
            vec![ServerId(1)],
        );
    println!("fault schedule: {plan}");

    let mut builder = Cluster::builder(
        ClusterConfig::new(3)
            .with_epoch_duration(Duration::from_millis(2))
            .with_net(NetConfig::instant().with_fault(plan.clone()))
            .with_rpc_timeout(Duration::from_millis(25))
            .with_history(),
    );
    builder.register_handler(H_AFFINE, affine_handler);
    builder.register_program(
        AFFINE,
        fn_program(|ctx| {
            let dst_len = u16::from_be_bytes(ctx.args[0..2].try_into().unwrap()) as usize;
            let dst = Key::from(&ctx.args[2..2 + dst_len]);
            let src = Key::from(&ctx.args[2 + dst_len..ctx.args.len() - 8]);
            let mut handler_args = src.as_bytes().to_vec();
            handler_args.extend_from_slice(&ctx.args[ctx.args.len() - 8..]);
            Ok(TxnPlan::new().write(
                dst,
                Functor::User(UserFunctor::new(H_AFFINE, vec![src], handler_args)),
            ))
        }),
    );
    let cluster = builder.start().expect("cluster starts");
    let db = cluster.database();

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut handles = Vec::new();
    let mut gave_up = 0usize;
    for i in 0..TXNS {
        let dst = key(rng.gen_range(0..KEYS));
        let src = key(rng.gen_range(0..KEYS));
        let c: i64 = rng.gen_range(-100..=100);
        let mut args = Vec::new();
        args.extend_from_slice(&(dst.as_bytes().len() as u16).to_be_bytes());
        args.extend_from_slice(dst.as_bytes());
        args.extend_from_slice(src.as_bytes());
        args.extend_from_slice(&c.to_be_bytes());
        match db.execute(AFFINE, args) {
            Ok(h) => handles.push(h),
            Err(_) => gave_up += 1,
        }
        if i % 8 == 0 {
            std::thread::sleep(Duration::from_millis(3));
        }
    }
    for h in handles {
        if h.wait_processed().is_err() {
            gave_up += 1;
        }
    }

    let snapshot = cluster.snapshot();
    let net = snapshot.child("net").expect("snapshot has a net subtree");
    let count = |c: &str| net.counter(c).unwrap_or(0);
    println!(
        "network: {} delivered, {} injected drops, {} dups, {} reorders",
        count("messages"),
        count("injected_drops"),
        count("injected_dups"),
        count("injected_reorders")
    );
    println!("transactions: {TXNS} submitted, {gave_up} gave up (aborted cleanly)");

    let mut records = cluster.history().expect("history recording on").snapshot();
    records.sort_by_key(|r| r.ts);
    let committed = records.iter().filter(|r| !r.aborted_at_install).count();
    println!(
        "history: {} records ({} committed, {} install-aborted)",
        records.len(),
        committed,
        records.len() - committed
    );

    let key_list: Vec<Key> = (0..KEYS).map(key).collect();
    let finals = db.read_latest(&key_list).expect("final read");
    let actual: HashMap<Key, Option<Value>> = key_list.iter().cloned().zip(finals).collect();
    cluster.shutdown();

    let mut handlers = HandlerRegistry::new();
    handlers.register(H_AFFINE, affine_handler);
    let expected = replay_history(&records, &handlers).expect("replay");
    let divergences = diff_states(&expected, &actual);
    if divergences.is_empty() {
        println!("checker: cluster state matches the serial replay — serializable ✓");
    } else {
        println!("checker: DIVERGED under seed {seed} with {plan}");
        for d in &divergences {
            println!(
                "  key {:?}: expected {:?}, cluster holds {:?}",
                d.key,
                d.expected.as_ref().and_then(Value::as_i64),
                d.actual.as_ref().and_then(Value::as_i64)
            );
        }
        std::process::exit(1);
    }

    // What a violation looks like: hand the checker a state with one lost
    // effect and show the diff it would print.
    let mut corrupted = actual;
    if let Some(slot) = corrupted.values_mut().find(|v| v.is_some()) {
        *slot = None;
        let diff = diff_states(&expected, &corrupted);
        println!(
            "forced corruption (one value erased) is flagged: {} divergence",
            diff.len()
        );
    }
}
