//! A look under the hood of epoch-based concurrency control: watch grants,
//! visibility, and the write→visible delay of unified epochs (§II, §III-B).
//!
//! Run with: `cargo run --example ecc_epochs`

use std::time::{Duration, Instant};

use aloha_common::{Key, Value};
use aloha_core::{fn_program, Cluster, ClusterConfig, ProgramId, TxnPlan};
use aloha_functor::Functor;

const SET: ProgramId = ProgramId(1);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let epoch = Duration::from_millis(50);
    let mut builder = Cluster::builder(ClusterConfig::new(2).with_epoch_duration(epoch));
    builder.register_program(
        SET,
        fn_program(|ctx| {
            let v = i64::from_be_bytes(ctx.args.try_into().expect("8 bytes"));
            Ok(TxnPlan::new().write(Key::from("x"), Functor::value_i64(v)))
        }),
    );
    let cluster = builder.start()?;
    cluster.load(Key::from("x"), Value::from_i64(0));
    let db = cluster.database();

    println!("epoch duration: {epoch:?}\n");

    // 1. A write is invisible within its own epoch.
    let handle = db.execute(SET, 42i64.to_be_bytes())?;
    let ts = handle.timestamp();
    println!("write installed at version {ts}");
    println!("visible bound right after install: {}", db.visible_bound());
    assert!(
        db.visible_bound() < ts,
        "write must not be visible in its own epoch"
    );

    // 2. Waiting for processing spans the epoch switch.
    let started = Instant::now();
    handle.wait_processed()?;
    println!(
        "functors processed after {:?} (bounded by the epoch remainder)",
        started.elapsed()
    );
    assert!(db.visible_bound() >= ts);

    // 3. Latest-version reads are delayed reads of a historical snapshot;
    //    their extra latency is bounded by the epoch duration (§III-B).
    let started = Instant::now();
    let value = db.read_latest(&[Key::from("x")])?;
    let read_latency = started.elapsed();
    println!(
        "latest read -> {} in {:?} (penalty bounded by one epoch)",
        value[0].as_ref().unwrap().as_i64().unwrap(),
        read_latency
    );

    // 4. Throughput across epoch switches: transactions keep flowing — the
    //    §III-C straggler window lets servers start transactions even while
    //    an epoch is being revoked.
    let started = Instant::now();
    let mut count = 0u64;
    while started.elapsed() < epoch * 4 {
        let batch: Vec<_> = (0..32)
            .map(|i| db.execute(SET, (i as i64).to_be_bytes()).unwrap())
            .collect();
        for h in batch {
            h.wait_processed()?;
            count += 1;
        }
    }
    println!(
        "sustained {count} transactions over {:?} (~{:.0} txn/s) across {} epoch switches",
        started.elapsed(),
        count as f64 / started.elapsed().as_secs_f64(),
        started.elapsed().as_millis() / epoch.as_millis()
    );

    let snapshot = cluster.snapshot();
    let mean = |stage: &str| snapshot.stage(stage).map_or(0.0, |s| s.mean_micros);
    println!(
        "\nstage means: install {:.0} µs | wait-for-epoch {:.0} µs | computing {:.0} µs",
        mean("functor_install"),
        mean("epoch_close"),
        mean("functor_computing")
    );
    println!("(waiting for the epoch dominates — Fig 10's shape)");
    cluster.shutdown();
    Ok(())
}
