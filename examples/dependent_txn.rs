//! Dependent transactions (§IV-E): both supported methods, side by side.
//!
//! 1. **Key dependency**: an order-insertion transaction whose row keys
//!    depend on a counter value unknown until the computing phase. The
//!    counter key carries a *determinate functor* whose handler emits the
//!    row as a deferred write; readers of the row table wait on the
//!    counter's value watermark via a registered dependency rule.
//! 2. **Optimistic (Hyder-style)**: a transaction reads a settled snapshot
//!    during transform, pre-computes its write, and installs an
//!    `OccValidate` functor that aborts if the read set changed between the
//!    snapshot and the write timestamp.
//!
//! Run with: `cargo run --example dependent_txn`

use std::time::Duration;

use aloha_common::{Key, Value};
use aloha_core::{fn_program, Cluster, ClusterConfig, ProgramId, TxnOutcome, TxnPlan};
use aloha_functor::builtin::OccValidateHandler;
use aloha_functor::{ComputeInput, Functor, HandlerId, HandlerOutput, UserFunctor};

const INSERT_ROW: ProgramId = ProgramId(1);
const OCC_DOUBLE: ProgramId = ProgramId(2);
const H_COUNTER: HandlerId = HandlerId(1);
const H_OCC: HandlerId = HandlerId(2);

fn row_key(id: i64) -> Key {
    Key::from_parts(&[b"row", &id.to_be_bytes()])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let counter = Key::from("row-counter");
    let mut builder =
        Cluster::builder(ClusterConfig::new(2).with_epoch_duration(Duration::from_millis(5)));

    // --- Method 1: key dependency -------------------------------------
    // Determinate functor on the counter: reads its own previous value,
    // writes row-<id> as a deferred write, commits id+1.
    builder.register_handler(H_COUNTER, move |input: &ComputeInput<'_>| {
        let id = input.reads.i64(input.key).unwrap_or(0);
        let payload = Value::new(input.args.to_vec());
        HandlerOutput::commit(Value::from_i64(id + 1))
            .with_deferred(vec![(row_key(id), Functor::Value(payload))])
    });
    let counter_for_program = counter.clone();
    builder.register_program(
        INSERT_ROW,
        fn_program(move |ctx| {
            Ok(TxnPlan::new().write(
                counter_for_program.clone(),
                Functor::User(UserFunctor::new(
                    H_COUNTER,
                    vec![counter_for_program.clone()],
                    ctx.args.to_vec(),
                )),
            ))
        }),
    );
    // The §IV-E rule: reading any row-<id> key first waits until the counter
    // (the determinate key) is computed up to the requested version.
    let counter_for_rule = counter.clone();
    builder.add_dependency_rule(move |key: &Key| {
        key.parts()
            .and_then(|p| p.first().copied().map(|head| head == b"row"))
            .unwrap_or(false)
            .then(|| counter_for_rule.clone())
    });

    // --- Method 2: optimistic validation -------------------------------
    builder.register_handler(H_OCC, OccValidateHandler);
    builder.register_program(
        OCC_DOUBLE,
        fn_program(move |ctx| {
            // Read the snapshot, compute target*2, validate at commit time.
            let target = Key::from("occ-target");
            let read = ctx.reader.read(&target)?;
            let old = read.value.as_ref().and_then(Value::as_i64).unwrap_or(0);
            let args = OccValidateHandler::encode_args(
                &[(target.clone(), read.version)],
                &Value::from_i64(old * 2),
            );
            Ok(TxnPlan::new().write(
                target.clone(),
                Functor::User(UserFunctor::new(H_OCC, vec![target], args)),
            ))
        }),
    );

    let cluster = builder.start()?;
    cluster.load(counter.clone(), Value::from_i64(0));
    cluster.load(Key::from("occ-target"), Value::from_i64(21));
    let db = cluster.database();

    println!("== key-dependency method ==");
    for payload in ["first row", "second row", "third row"] {
        let h = db.execute(INSERT_ROW, payload.as_bytes())?;
        assert_eq!(h.wait_processed()?, TxnOutcome::Committed);
    }
    // Rows 0..2 exist even though their keys were never named at transform
    // time; the dependency rule makes the reads wait for the counter.
    let rows = db.read_latest(&[row_key(0), row_key(1), row_key(2), counter])?;
    for (i, row) in rows.iter().take(3).enumerate() {
        let text = String::from_utf8_lossy(row.as_ref().unwrap().as_bytes()).to_string();
        println!("  row {i}: {text:?}");
    }
    let count = rows[3].as_ref().unwrap().as_i64().unwrap();
    println!("  counter is now {count}");
    assert_eq!(count, 3);

    println!("== optimistic method ==");
    // Uncontended: the snapshot is still fresh at compute time → commits.
    let h = db.execute(OCC_DOUBLE, b"")?;
    let outcome = h.wait_processed()?;
    println!("  uncontended doubling: {outcome:?}");
    assert_eq!(outcome, TxnOutcome::Committed);
    let v = db.read_latest(&[Key::from("occ-target")])?[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(v, 42);
    println!("  occ-target = {v}");

    // Contended: two OCC transactions race; serializability guarantees at
    // least one commits, and a validation failure shows up as an abort, not
    // as a wrong value.
    let h1 = db.execute(OCC_DOUBLE, b"")?;
    let h2 = db.execute(OCC_DOUBLE, b"")?;
    let o1 = h1.wait_processed()?;
    let o2 = h2.wait_processed()?;
    println!("  racing doublings: {o1:?} / {o2:?}");
    let v = db.read_latest(&[Key::from("occ-target")])?[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    println!("  occ-target = {v} (84 if one committed, 168 if both did)");
    assert!(v == 84 || v == 168);

    cluster.shutdown();
    println!("done.");
    Ok(())
}
