/root/repo/target/debug/examples/tpcc_demo-8c434ae5f48db493.d: examples/tpcc_demo.rs Cargo.toml

/root/repo/target/debug/examples/libtpcc_demo-8c434ae5f48db493.rmeta: examples/tpcc_demo.rs Cargo.toml

examples/tpcc_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
