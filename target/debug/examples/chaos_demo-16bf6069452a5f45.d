/root/repo/target/debug/examples/chaos_demo-16bf6069452a5f45.d: examples/chaos_demo.rs Cargo.toml

/root/repo/target/debug/examples/libchaos_demo-16bf6069452a5f45.rmeta: examples/chaos_demo.rs Cargo.toml

examples/chaos_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
