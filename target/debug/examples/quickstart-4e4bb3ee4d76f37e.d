/root/repo/target/debug/examples/quickstart-4e4bb3ee4d76f37e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4e4bb3ee4d76f37e: examples/quickstart.rs

examples/quickstart.rs:
