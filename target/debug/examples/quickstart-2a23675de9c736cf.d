/root/repo/target/debug/examples/quickstart-2a23675de9c736cf.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-2a23675de9c736cf.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
