/root/repo/target/debug/examples/bank_transfer-d1a2c42453c90afe.d: examples/bank_transfer.rs

/root/repo/target/debug/examples/bank_transfer-d1a2c42453c90afe: examples/bank_transfer.rs

examples/bank_transfer.rs:
