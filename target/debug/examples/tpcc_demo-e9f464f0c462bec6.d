/root/repo/target/debug/examples/tpcc_demo-e9f464f0c462bec6.d: examples/tpcc_demo.rs

/root/repo/target/debug/examples/tpcc_demo-e9f464f0c462bec6: examples/tpcc_demo.rs

examples/tpcc_demo.rs:
