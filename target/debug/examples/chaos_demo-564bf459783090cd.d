/root/repo/target/debug/examples/chaos_demo-564bf459783090cd.d: examples/chaos_demo.rs

/root/repo/target/debug/examples/chaos_demo-564bf459783090cd: examples/chaos_demo.rs

examples/chaos_demo.rs:
