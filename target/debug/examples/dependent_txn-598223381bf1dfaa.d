/root/repo/target/debug/examples/dependent_txn-598223381bf1dfaa.d: examples/dependent_txn.rs Cargo.toml

/root/repo/target/debug/examples/libdependent_txn-598223381bf1dfaa.rmeta: examples/dependent_txn.rs Cargo.toml

examples/dependent_txn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
