/root/repo/target/debug/examples/ecc_epochs-4c030f9545a13926.d: examples/ecc_epochs.rs

/root/repo/target/debug/examples/ecc_epochs-4c030f9545a13926: examples/ecc_epochs.rs

examples/ecc_epochs.rs:
