/root/repo/target/debug/examples/ecc_epochs-15a57c21bd0795f0.d: examples/ecc_epochs.rs Cargo.toml

/root/repo/target/debug/examples/libecc_epochs-15a57c21bd0795f0.rmeta: examples/ecc_epochs.rs Cargo.toml

examples/ecc_epochs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
