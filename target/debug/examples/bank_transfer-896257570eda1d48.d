/root/repo/target/debug/examples/bank_transfer-896257570eda1d48.d: examples/bank_transfer.rs Cargo.toml

/root/repo/target/debug/examples/libbank_transfer-896257570eda1d48.rmeta: examples/bank_transfer.rs Cargo.toml

examples/bank_transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
