/root/repo/target/debug/examples/dependent_txn-475a038e9355d0eb.d: examples/dependent_txn.rs

/root/repo/target/debug/examples/dependent_txn-475a038e9355d0eb: examples/dependent_txn.rs

examples/dependent_txn.rs:
