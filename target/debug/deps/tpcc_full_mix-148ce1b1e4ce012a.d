/root/repo/target/debug/deps/tpcc_full_mix-148ce1b1e4ce012a.d: crates/workloads/tests/tpcc_full_mix.rs

/root/repo/target/debug/deps/tpcc_full_mix-148ce1b1e4ce012a: crates/workloads/tests/tpcc_full_mix.rs

crates/workloads/tests/tpcc_full_mix.rs:
