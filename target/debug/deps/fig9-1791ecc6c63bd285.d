/root/repo/target/debug/deps/fig9-1791ecc6c63bd285.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-1791ecc6c63bd285.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
