/root/repo/target/debug/deps/cross_system-282f2528ad1c2d70.d: tests/cross_system.rs Cargo.toml

/root/repo/target/debug/deps/libcross_system-282f2528ad1c2d70.rmeta: tests/cross_system.rs Cargo.toml

tests/cross_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
