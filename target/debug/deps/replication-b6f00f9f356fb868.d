/root/repo/target/debug/deps/replication-b6f00f9f356fb868.d: crates/core/tests/replication.rs Cargo.toml

/root/repo/target/debug/deps/libreplication-b6f00f9f356fb868.rmeta: crates/core/tests/replication.rs Cargo.toml

crates/core/tests/replication.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
