/root/repo/target/debug/deps/fig6-b913db8c99a9183b.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-b913db8c99a9183b: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
