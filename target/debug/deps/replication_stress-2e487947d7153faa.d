/root/repo/target/debug/deps/replication_stress-2e487947d7153faa.d: crates/core/tests/replication_stress.rs

/root/repo/target/debug/deps/replication_stress-2e487947d7153faa: crates/core/tests/replication_stress.rs

crates/core/tests/replication_stress.rs:
