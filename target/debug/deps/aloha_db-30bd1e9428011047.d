/root/repo/target/debug/deps/aloha_db-30bd1e9428011047.d: src/lib.rs

/root/repo/target/debug/deps/aloha_db-30bd1e9428011047: src/lib.rs

src/lib.rs:
