/root/repo/target/debug/deps/aloha_db-e519b071f1419188.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaloha_db-e519b071f1419188.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
