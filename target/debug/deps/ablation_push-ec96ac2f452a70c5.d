/root/repo/target/debug/deps/ablation_push-ec96ac2f452a70c5.d: crates/bench/src/bin/ablation_push.rs

/root/repo/target/debug/deps/ablation_push-ec96ac2f452a70c5: crates/bench/src/bin/ablation_push.rs

crates/bench/src/bin/ablation_push.rs:
