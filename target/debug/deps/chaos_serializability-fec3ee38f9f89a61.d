/root/repo/target/debug/deps/chaos_serializability-fec3ee38f9f89a61.d: tests/chaos_serializability.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_serializability-fec3ee38f9f89a61.rmeta: tests/chaos_serializability.rs Cargo.toml

tests/chaos_serializability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
