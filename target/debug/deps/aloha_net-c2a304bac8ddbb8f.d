/root/repo/target/debug/deps/aloha_net-c2a304bac8ddbb8f.d: crates/net/src/lib.rs crates/net/src/bus.rs crates/net/src/delay.rs crates/net/src/fault.rs crates/net/src/reply.rs Cargo.toml

/root/repo/target/debug/deps/libaloha_net-c2a304bac8ddbb8f.rmeta: crates/net/src/lib.rs crates/net/src/bus.rs crates/net/src/delay.rs crates/net/src/fault.rs crates/net/src/reply.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/bus.rs:
crates/net/src/delay.rs:
crates/net/src/fault.rs:
crates/net/src/reply.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
