/root/repo/target/debug/deps/aloha_functor-d3466c87c5e126e4.d: crates/functor/src/lib.rs crates/functor/src/builtin.rs crates/functor/src/ftype.rs crates/functor/src/handler.rs

/root/repo/target/debug/deps/libaloha_functor-d3466c87c5e126e4.rlib: crates/functor/src/lib.rs crates/functor/src/builtin.rs crates/functor/src/ftype.rs crates/functor/src/handler.rs

/root/repo/target/debug/deps/libaloha_functor-d3466c87c5e126e4.rmeta: crates/functor/src/lib.rs crates/functor/src/builtin.rs crates/functor/src/ftype.rs crates/functor/src/handler.rs

crates/functor/src/lib.rs:
crates/functor/src/builtin.rs:
crates/functor/src/ftype.rs:
crates/functor/src/handler.rs:
