/root/repo/target/debug/deps/aloha_epoch-7f7838849d453caa.d: crates/epoch/src/lib.rs crates/epoch/src/auth.rs crates/epoch/src/client.rs crates/epoch/src/manager.rs crates/epoch/src/oracle.rs

/root/repo/target/debug/deps/libaloha_epoch-7f7838849d453caa.rlib: crates/epoch/src/lib.rs crates/epoch/src/auth.rs crates/epoch/src/client.rs crates/epoch/src/manager.rs crates/epoch/src/oracle.rs

/root/repo/target/debug/deps/libaloha_epoch-7f7838849d453caa.rmeta: crates/epoch/src/lib.rs crates/epoch/src/auth.rs crates/epoch/src/client.rs crates/epoch/src/manager.rs crates/epoch/src/oracle.rs

crates/epoch/src/lib.rs:
crates/epoch/src/auth.rs:
crates/epoch/src/client.rs:
crates/epoch/src/manager.rs:
crates/epoch/src/oracle.rs:
