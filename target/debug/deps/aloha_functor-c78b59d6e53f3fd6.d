/root/repo/target/debug/deps/aloha_functor-c78b59d6e53f3fd6.d: crates/functor/src/lib.rs crates/functor/src/builtin.rs crates/functor/src/ftype.rs crates/functor/src/handler.rs Cargo.toml

/root/repo/target/debug/deps/libaloha_functor-c78b59d6e53f3fd6.rmeta: crates/functor/src/lib.rs crates/functor/src/builtin.rs crates/functor/src/ftype.rs crates/functor/src/handler.rs Cargo.toml

crates/functor/src/lib.rs:
crates/functor/src/builtin.rs:
crates/functor/src/ftype.rs:
crates/functor/src/handler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
