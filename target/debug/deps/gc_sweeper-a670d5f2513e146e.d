/root/repo/target/debug/deps/gc_sweeper-a670d5f2513e146e.d: crates/core/tests/gc_sweeper.rs

/root/repo/target/debug/deps/gc_sweeper-a670d5f2513e146e: crates/core/tests/gc_sweeper.rs

crates/core/tests/gc_sweeper.rs:
