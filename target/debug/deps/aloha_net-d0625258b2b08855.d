/root/repo/target/debug/deps/aloha_net-d0625258b2b08855.d: crates/net/src/lib.rs crates/net/src/bus.rs crates/net/src/delay.rs crates/net/src/fault.rs crates/net/src/reply.rs Cargo.toml

/root/repo/target/debug/deps/libaloha_net-d0625258b2b08855.rmeta: crates/net/src/lib.rs crates/net/src/bus.rs crates/net/src/delay.rs crates/net/src/fault.rs crates/net/src/reply.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/bus.rs:
crates/net/src/delay.rs:
crates/net/src/fault.rs:
crates/net/src/reply.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
