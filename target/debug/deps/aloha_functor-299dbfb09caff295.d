/root/repo/target/debug/deps/aloha_functor-299dbfb09caff295.d: crates/functor/src/lib.rs crates/functor/src/builtin.rs crates/functor/src/ftype.rs crates/functor/src/handler.rs

/root/repo/target/debug/deps/libaloha_functor-299dbfb09caff295.rmeta: crates/functor/src/lib.rs crates/functor/src/builtin.rs crates/functor/src/ftype.rs crates/functor/src/handler.rs

crates/functor/src/lib.rs:
crates/functor/src/builtin.rs:
crates/functor/src/ftype.rs:
crates/functor/src/handler.rs:
