/root/repo/target/debug/deps/lock_model-30781e400ea5a968.d: crates/calvin/tests/lock_model.rs Cargo.toml

/root/repo/target/debug/deps/liblock_model-30781e400ea5a968.rmeta: crates/calvin/tests/lock_model.rs Cargo.toml

crates/calvin/tests/lock_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
