/root/repo/target/debug/deps/wal_recovery-9278afd9acce47cd.d: crates/core/tests/wal_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libwal_recovery-9278afd9acce47cd.rmeta: crates/core/tests/wal_recovery.rs Cargo.toml

crates/core/tests/wal_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
