/root/repo/target/debug/deps/aloha_functor-9764aa7270f9a3c5.d: crates/functor/src/lib.rs crates/functor/src/builtin.rs crates/functor/src/ftype.rs crates/functor/src/handler.rs

/root/repo/target/debug/deps/aloha_functor-9764aa7270f9a3c5: crates/functor/src/lib.rs crates/functor/src/builtin.rs crates/functor/src/ftype.rs crates/functor/src/handler.rs

crates/functor/src/lib.rs:
crates/functor/src/builtin.rs:
crates/functor/src/ftype.rs:
crates/functor/src/handler.rs:
