/root/repo/target/debug/deps/ablation_ecc-60b9d42b7b4c0282.d: crates/bench/src/bin/ablation_ecc.rs

/root/repo/target/debug/deps/ablation_ecc-60b9d42b7b4c0282: crates/bench/src/bin/ablation_ecc.rs

crates/bench/src/bin/ablation_ecc.rs:
