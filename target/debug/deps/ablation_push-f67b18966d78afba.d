/root/repo/target/debug/deps/ablation_push-f67b18966d78afba.d: crates/bench/src/bin/ablation_push.rs

/root/repo/target/debug/deps/ablation_push-f67b18966d78afba: crates/bench/src/bin/ablation_push.rs

crates/bench/src/bin/ablation_push.rs:
