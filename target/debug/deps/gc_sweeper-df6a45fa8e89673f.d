/root/repo/target/debug/deps/gc_sweeper-df6a45fa8e89673f.d: crates/core/tests/gc_sweeper.rs Cargo.toml

/root/repo/target/debug/deps/libgc_sweeper-df6a45fa8e89673f.rmeta: crates/core/tests/gc_sweeper.rs Cargo.toml

crates/core/tests/gc_sweeper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
