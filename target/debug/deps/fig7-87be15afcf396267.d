/root/repo/target/debug/deps/fig7-87be15afcf396267.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-87be15afcf396267: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
