/root/repo/target/debug/deps/fig9-fa0fec4652c41364.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-fa0fec4652c41364: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
