/root/repo/target/debug/deps/calvin-87fd943f2cf7315d.d: crates/calvin/src/lib.rs crates/calvin/src/cluster.rs crates/calvin/src/exchange.rs crates/calvin/src/lock.rs crates/calvin/src/msg.rs crates/calvin/src/program.rs crates/calvin/src/server.rs crates/calvin/src/store.rs

/root/repo/target/debug/deps/libcalvin-87fd943f2cf7315d.rlib: crates/calvin/src/lib.rs crates/calvin/src/cluster.rs crates/calvin/src/exchange.rs crates/calvin/src/lock.rs crates/calvin/src/msg.rs crates/calvin/src/program.rs crates/calvin/src/server.rs crates/calvin/src/store.rs

/root/repo/target/debug/deps/libcalvin-87fd943f2cf7315d.rmeta: crates/calvin/src/lib.rs crates/calvin/src/cluster.rs crates/calvin/src/exchange.rs crates/calvin/src/lock.rs crates/calvin/src/msg.rs crates/calvin/src/program.rs crates/calvin/src/server.rs crates/calvin/src/store.rs

crates/calvin/src/lib.rs:
crates/calvin/src/cluster.rs:
crates/calvin/src/exchange.rs:
crates/calvin/src/lock.rs:
crates/calvin/src/msg.rs:
crates/calvin/src/program.rs:
crates/calvin/src/server.rs:
crates/calvin/src/store.rs:
