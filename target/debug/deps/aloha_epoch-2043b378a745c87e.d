/root/repo/target/debug/deps/aloha_epoch-2043b378a745c87e.d: crates/epoch/src/lib.rs crates/epoch/src/auth.rs crates/epoch/src/client.rs crates/epoch/src/manager.rs crates/epoch/src/oracle.rs Cargo.toml

/root/repo/target/debug/deps/libaloha_epoch-2043b378a745c87e.rmeta: crates/epoch/src/lib.rs crates/epoch/src/auth.rs crates/epoch/src/client.rs crates/epoch/src/manager.rs crates/epoch/src/oracle.rs Cargo.toml

crates/epoch/src/lib.rs:
crates/epoch/src/auth.rs:
crates/epoch/src/client.rs:
crates/epoch/src/manager.rs:
crates/epoch/src/oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
