/root/repo/target/debug/deps/fig7-14684e6b09df7b69.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-14684e6b09df7b69.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
