/root/repo/target/debug/deps/fig10-d3028e36f4eadda4.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-d3028e36f4eadda4.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
