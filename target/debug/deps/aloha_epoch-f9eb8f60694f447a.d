/root/repo/target/debug/deps/aloha_epoch-f9eb8f60694f447a.d: crates/epoch/src/lib.rs crates/epoch/src/auth.rs crates/epoch/src/client.rs crates/epoch/src/manager.rs crates/epoch/src/oracle.rs

/root/repo/target/debug/deps/aloha_epoch-f9eb8f60694f447a: crates/epoch/src/lib.rs crates/epoch/src/auth.rs crates/epoch/src/client.rs crates/epoch/src/manager.rs crates/epoch/src/oracle.rs

crates/epoch/src/lib.rs:
crates/epoch/src/auth.rs:
crates/epoch/src/client.rs:
crates/epoch/src/manager.rs:
crates/epoch/src/oracle.rs:
