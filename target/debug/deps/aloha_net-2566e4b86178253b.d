/root/repo/target/debug/deps/aloha_net-2566e4b86178253b.d: crates/net/src/lib.rs crates/net/src/bus.rs crates/net/src/delay.rs crates/net/src/fault.rs crates/net/src/reply.rs

/root/repo/target/debug/deps/aloha_net-2566e4b86178253b: crates/net/src/lib.rs crates/net/src/bus.rs crates/net/src/delay.rs crates/net/src/fault.rs crates/net/src/reply.rs

crates/net/src/lib.rs:
crates/net/src/bus.rs:
crates/net/src/delay.rs:
crates/net/src/fault.rs:
crates/net/src/reply.rs:
