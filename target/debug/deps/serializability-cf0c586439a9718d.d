/root/repo/target/debug/deps/serializability-cf0c586439a9718d.d: tests/serializability.rs Cargo.toml

/root/repo/target/debug/deps/libserializability-cf0c586439a9718d.rmeta: tests/serializability.rs Cargo.toml

tests/serializability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
