/root/repo/target/debug/deps/client_fuzz-a58e46ddf910cc2d.d: crates/epoch/tests/client_fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libclient_fuzz-a58e46ddf910cc2d.rmeta: crates/epoch/tests/client_fuzz.rs Cargo.toml

crates/epoch/tests/client_fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
