/root/repo/target/debug/deps/fig11-46dcfcf393622800.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-46dcfcf393622800: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
