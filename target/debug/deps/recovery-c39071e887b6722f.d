/root/repo/target/debug/deps/recovery-c39071e887b6722f.d: crates/core/tests/recovery.rs

/root/repo/target/debug/deps/recovery-c39071e887b6722f: crates/core/tests/recovery.rs

crates/core/tests/recovery.rs:
