/root/repo/target/debug/deps/calvin_engine-56b679d7234669d2.d: crates/calvin/tests/calvin_engine.rs

/root/repo/target/debug/deps/calvin_engine-56b679d7234669d2: crates/calvin/tests/calvin_engine.rs

crates/calvin/tests/calvin_engine.rs:
