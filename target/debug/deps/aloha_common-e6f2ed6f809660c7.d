/root/repo/target/debug/deps/aloha_common-e6f2ed6f809660c7.d: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/codec.rs crates/common/src/error.rs crates/common/src/history.rs crates/common/src/ids.rs crates/common/src/key.rs crates/common/src/metrics.rs crates/common/src/timestamp.rs

/root/repo/target/debug/deps/libaloha_common-e6f2ed6f809660c7.rmeta: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/codec.rs crates/common/src/error.rs crates/common/src/history.rs crates/common/src/ids.rs crates/common/src/key.rs crates/common/src/metrics.rs crates/common/src/timestamp.rs

crates/common/src/lib.rs:
crates/common/src/clock.rs:
crates/common/src/codec.rs:
crates/common/src/error.rs:
crates/common/src/history.rs:
crates/common/src/ids.rs:
crates/common/src/key.rs:
crates/common/src/metrics.rs:
crates/common/src/timestamp.rs:
