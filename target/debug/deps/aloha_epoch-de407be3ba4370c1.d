/root/repo/target/debug/deps/aloha_epoch-de407be3ba4370c1.d: crates/epoch/src/lib.rs crates/epoch/src/auth.rs crates/epoch/src/client.rs crates/epoch/src/manager.rs crates/epoch/src/oracle.rs Cargo.toml

/root/repo/target/debug/deps/libaloha_epoch-de407be3ba4370c1.rmeta: crates/epoch/src/lib.rs crates/epoch/src/auth.rs crates/epoch/src/client.rs crates/epoch/src/manager.rs crates/epoch/src/oracle.rs Cargo.toml

crates/epoch/src/lib.rs:
crates/epoch/src/auth.rs:
crates/epoch/src/client.rs:
crates/epoch/src/manager.rs:
crates/epoch/src/oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
