/root/repo/target/debug/deps/aloha_core-804d6f7711bac447.d: crates/core/src/lib.rs crates/core/src/checker.rs crates/core/src/cluster.rs crates/core/src/msg.rs crates/core/src/program.rs crates/core/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libaloha_core-804d6f7711bac447.rmeta: crates/core/src/lib.rs crates/core/src/checker.rs crates/core/src/cluster.rs crates/core/src/msg.rs crates/core/src/program.rs crates/core/src/server.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/checker.rs:
crates/core/src/cluster.rs:
crates/core/src/msg.rs:
crates/core/src/program.rs:
crates/core/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
