/root/repo/target/debug/deps/aloha_workloads-30733d2de29af219.d: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/aloha.rs crates/workloads/src/tpcc/calvin_impl.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/read_txns.rs crates/workloads/src/tpcc/schema.rs crates/workloads/src/ycsb.rs

/root/repo/target/debug/deps/libaloha_workloads-30733d2de29af219.rlib: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/aloha.rs crates/workloads/src/tpcc/calvin_impl.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/read_txns.rs crates/workloads/src/tpcc/schema.rs crates/workloads/src/ycsb.rs

/root/repo/target/debug/deps/libaloha_workloads-30733d2de29af219.rmeta: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/aloha.rs crates/workloads/src/tpcc/calvin_impl.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/read_txns.rs crates/workloads/src/tpcc/schema.rs crates/workloads/src/ycsb.rs

crates/workloads/src/lib.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/tpcc/mod.rs:
crates/workloads/src/tpcc/aloha.rs:
crates/workloads/src/tpcc/calvin_impl.rs:
crates/workloads/src/tpcc/gen.rs:
crates/workloads/src/tpcc/read_txns.rs:
crates/workloads/src/tpcc/schema.rs:
crates/workloads/src/ycsb.rs:
