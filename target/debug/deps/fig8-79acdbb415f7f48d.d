/root/repo/target/debug/deps/fig8-79acdbb415f7f48d.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-79acdbb415f7f48d: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
