/root/repo/target/debug/deps/tpcc_full_mix-d5010d94a53b7443.d: crates/workloads/tests/tpcc_full_mix.rs Cargo.toml

/root/repo/target/debug/deps/libtpcc_full_mix-d5010d94a53b7443.rmeta: crates/workloads/tests/tpcc_full_mix.rs Cargo.toml

crates/workloads/tests/tpcc_full_mix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
