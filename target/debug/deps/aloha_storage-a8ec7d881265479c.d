/root/repo/target/debug/deps/aloha_storage-a8ec7d881265479c.d: crates/storage/src/lib.rs crates/storage/src/chain.rs crates/storage/src/partition.rs crates/storage/src/snapshot.rs crates/storage/src/store.rs crates/storage/src/wal.rs

/root/repo/target/debug/deps/aloha_storage-a8ec7d881265479c: crates/storage/src/lib.rs crates/storage/src/chain.rs crates/storage/src/partition.rs crates/storage/src/snapshot.rs crates/storage/src/store.rs crates/storage/src/wal.rs

crates/storage/src/lib.rs:
crates/storage/src/chain.rs:
crates/storage/src/partition.rs:
crates/storage/src/snapshot.rs:
crates/storage/src/store.rs:
crates/storage/src/wal.rs:
