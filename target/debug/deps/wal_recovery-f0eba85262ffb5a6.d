/root/repo/target/debug/deps/wal_recovery-f0eba85262ffb5a6.d: crates/core/tests/wal_recovery.rs

/root/repo/target/debug/deps/wal_recovery-f0eba85262ffb5a6: crates/core/tests/wal_recovery.rs

crates/core/tests/wal_recovery.rs:
