/root/repo/target/debug/deps/engine-65ab209d03fa2634.d: crates/core/tests/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-65ab209d03fa2634.rmeta: crates/core/tests/engine.rs Cargo.toml

crates/core/tests/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
