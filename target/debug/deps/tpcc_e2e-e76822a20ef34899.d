/root/repo/target/debug/deps/tpcc_e2e-e76822a20ef34899.d: crates/workloads/tests/tpcc_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libtpcc_e2e-e76822a20ef34899.rmeta: crates/workloads/tests/tpcc_e2e.rs Cargo.toml

crates/workloads/tests/tpcc_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
