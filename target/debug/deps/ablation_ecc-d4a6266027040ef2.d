/root/repo/target/debug/deps/ablation_ecc-d4a6266027040ef2.d: crates/bench/src/bin/ablation_ecc.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ecc-d4a6266027040ef2.rmeta: crates/bench/src/bin/ablation_ecc.rs Cargo.toml

crates/bench/src/bin/ablation_ecc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
