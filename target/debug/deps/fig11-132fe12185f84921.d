/root/repo/target/debug/deps/fig11-132fe12185f84921.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-132fe12185f84921: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
