/root/repo/target/debug/deps/ablation_push-9c269653d1dd2643.d: crates/bench/src/bin/ablation_push.rs Cargo.toml

/root/repo/target/debug/deps/libablation_push-9c269653d1dd2643.rmeta: crates/bench/src/bin/ablation_push.rs Cargo.toml

crates/bench/src/bin/ablation_push.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
