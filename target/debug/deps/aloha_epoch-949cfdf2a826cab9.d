/root/repo/target/debug/deps/aloha_epoch-949cfdf2a826cab9.d: crates/epoch/src/lib.rs crates/epoch/src/auth.rs crates/epoch/src/client.rs crates/epoch/src/manager.rs crates/epoch/src/oracle.rs

/root/repo/target/debug/deps/libaloha_epoch-949cfdf2a826cab9.rmeta: crates/epoch/src/lib.rs crates/epoch/src/auth.rs crates/epoch/src/client.rs crates/epoch/src/manager.rs crates/epoch/src/oracle.rs

crates/epoch/src/lib.rs:
crates/epoch/src/auth.rs:
crates/epoch/src/client.rs:
crates/epoch/src/manager.rs:
crates/epoch/src/oracle.rs:
