/root/repo/target/debug/deps/dependent_keys-8868e08ec9a8c44d.d: crates/core/tests/dependent_keys.rs Cargo.toml

/root/repo/target/debug/deps/libdependent_keys-8868e08ec9a8c44d.rmeta: crates/core/tests/dependent_keys.rs Cargo.toml

crates/core/tests/dependent_keys.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
