/root/repo/target/debug/deps/aloha_core-e207bd8bbd7109f7.d: crates/core/src/lib.rs crates/core/src/checker.rs crates/core/src/cluster.rs crates/core/src/msg.rs crates/core/src/program.rs crates/core/src/server.rs

/root/repo/target/debug/deps/libaloha_core-e207bd8bbd7109f7.rmeta: crates/core/src/lib.rs crates/core/src/checker.rs crates/core/src/cluster.rs crates/core/src/msg.rs crates/core/src/program.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/checker.rs:
crates/core/src/cluster.rs:
crates/core/src/msg.rs:
crates/core/src/program.rs:
crates/core/src/server.rs:
