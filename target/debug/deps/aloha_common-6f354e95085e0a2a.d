/root/repo/target/debug/deps/aloha_common-6f354e95085e0a2a.d: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/codec.rs crates/common/src/error.rs crates/common/src/history.rs crates/common/src/ids.rs crates/common/src/key.rs crates/common/src/metrics.rs crates/common/src/timestamp.rs Cargo.toml

/root/repo/target/debug/deps/libaloha_common-6f354e95085e0a2a.rmeta: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/codec.rs crates/common/src/error.rs crates/common/src/history.rs crates/common/src/ids.rs crates/common/src/key.rs crates/common/src/metrics.rs crates/common/src/timestamp.rs Cargo.toml

crates/common/src/lib.rs:
crates/common/src/clock.rs:
crates/common/src/codec.rs:
crates/common/src/error.rs:
crates/common/src/history.rs:
crates/common/src/ids.rs:
crates/common/src/key.rs:
crates/common/src/metrics.rs:
crates/common/src/timestamp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
