/root/repo/target/debug/deps/ablation_ecc-a8b2aa4993981786.d: crates/bench/src/bin/ablation_ecc.rs

/root/repo/target/debug/deps/ablation_ecc-a8b2aa4993981786: crates/bench/src/bin/ablation_ecc.rs

crates/bench/src/bin/ablation_ecc.rs:
