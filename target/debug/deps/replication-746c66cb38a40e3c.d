/root/repo/target/debug/deps/replication-746c66cb38a40e3c.d: crates/core/tests/replication.rs

/root/repo/target/debug/deps/replication-746c66cb38a40e3c: crates/core/tests/replication.rs

crates/core/tests/replication.rs:
