/root/repo/target/debug/deps/aloha_db-49516de3f7e8c387.d: src/lib.rs

/root/repo/target/debug/deps/libaloha_db-49516de3f7e8c387.rlib: src/lib.rs

/root/repo/target/debug/deps/libaloha_db-49516de3f7e8c387.rmeta: src/lib.rs

src/lib.rs:
