/root/repo/target/debug/deps/aloha_storage-039eff7d589747fe.d: crates/storage/src/lib.rs crates/storage/src/chain.rs crates/storage/src/partition.rs crates/storage/src/snapshot.rs crates/storage/src/store.rs crates/storage/src/wal.rs

/root/repo/target/debug/deps/libaloha_storage-039eff7d589747fe.rlib: crates/storage/src/lib.rs crates/storage/src/chain.rs crates/storage/src/partition.rs crates/storage/src/snapshot.rs crates/storage/src/store.rs crates/storage/src/wal.rs

/root/repo/target/debug/deps/libaloha_storage-039eff7d589747fe.rmeta: crates/storage/src/lib.rs crates/storage/src/chain.rs crates/storage/src/partition.rs crates/storage/src/snapshot.rs crates/storage/src/store.rs crates/storage/src/wal.rs

crates/storage/src/lib.rs:
crates/storage/src/chain.rs:
crates/storage/src/partition.rs:
crates/storage/src/snapshot.rs:
crates/storage/src/store.rs:
crates/storage/src/wal.rs:
