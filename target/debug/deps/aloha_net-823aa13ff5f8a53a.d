/root/repo/target/debug/deps/aloha_net-823aa13ff5f8a53a.d: crates/net/src/lib.rs crates/net/src/bus.rs crates/net/src/delay.rs crates/net/src/fault.rs crates/net/src/reply.rs

/root/repo/target/debug/deps/libaloha_net-823aa13ff5f8a53a.rlib: crates/net/src/lib.rs crates/net/src/bus.rs crates/net/src/delay.rs crates/net/src/fault.rs crates/net/src/reply.rs

/root/repo/target/debug/deps/libaloha_net-823aa13ff5f8a53a.rmeta: crates/net/src/lib.rs crates/net/src/bus.rs crates/net/src/delay.rs crates/net/src/fault.rs crates/net/src/reply.rs

crates/net/src/lib.rs:
crates/net/src/bus.rs:
crates/net/src/delay.rs:
crates/net/src/fault.rs:
crates/net/src/reply.rs:
