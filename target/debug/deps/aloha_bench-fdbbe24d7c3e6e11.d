/root/repo/target/debug/deps/aloha_bench-fdbbe24d7c3e6e11.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libaloha_bench-fdbbe24d7c3e6e11.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
