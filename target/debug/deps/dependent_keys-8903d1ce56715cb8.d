/root/repo/target/debug/deps/dependent_keys-8903d1ce56715cb8.d: crates/core/tests/dependent_keys.rs

/root/repo/target/debug/deps/dependent_keys-8903d1ce56715cb8: crates/core/tests/dependent_keys.rs

crates/core/tests/dependent_keys.rs:
