/root/repo/target/debug/deps/aloha_bench-ad4d1b7fc507f4a2.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libaloha_bench-ad4d1b7fc507f4a2.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
