/root/repo/target/debug/deps/recovery-498cca5eed5198d0.d: crates/core/tests/recovery.rs Cargo.toml

/root/repo/target/debug/deps/librecovery-498cca5eed5198d0.rmeta: crates/core/tests/recovery.rs Cargo.toml

crates/core/tests/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
