/root/repo/target/debug/deps/fig7-8fd3b5c6eb30151a.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-8fd3b5c6eb30151a: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
