/root/repo/target/debug/deps/delivery_properties-e136d38dec64f63e.d: crates/net/tests/delivery_properties.rs Cargo.toml

/root/repo/target/debug/deps/libdelivery_properties-e136d38dec64f63e.rmeta: crates/net/tests/delivery_properties.rs Cargo.toml

crates/net/tests/delivery_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
