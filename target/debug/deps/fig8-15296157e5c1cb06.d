/root/repo/target/debug/deps/fig8-15296157e5c1cb06.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-15296157e5c1cb06: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
