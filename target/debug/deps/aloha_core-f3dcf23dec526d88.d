/root/repo/target/debug/deps/aloha_core-f3dcf23dec526d88.d: crates/core/src/lib.rs crates/core/src/checker.rs crates/core/src/cluster.rs crates/core/src/msg.rs crates/core/src/program.rs crates/core/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libaloha_core-f3dcf23dec526d88.rmeta: crates/core/src/lib.rs crates/core/src/checker.rs crates/core/src/cluster.rs crates/core/src/msg.rs crates/core/src/program.rs crates/core/src/server.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/checker.rs:
crates/core/src/cluster.rs:
crates/core/src/msg.rs:
crates/core/src/program.rs:
crates/core/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
