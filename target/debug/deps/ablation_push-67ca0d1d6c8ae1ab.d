/root/repo/target/debug/deps/ablation_push-67ca0d1d6c8ae1ab.d: crates/bench/src/bin/ablation_push.rs Cargo.toml

/root/repo/target/debug/deps/libablation_push-67ca0d1d6c8ae1ab.rmeta: crates/bench/src/bin/ablation_push.rs Cargo.toml

crates/bench/src/bin/ablation_push.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
