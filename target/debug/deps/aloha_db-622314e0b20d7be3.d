/root/repo/target/debug/deps/aloha_db-622314e0b20d7be3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaloha_db-622314e0b20d7be3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
