/root/repo/target/debug/deps/aloha_core-3a5a663d1559b597.d: crates/core/src/lib.rs crates/core/src/checker.rs crates/core/src/cluster.rs crates/core/src/msg.rs crates/core/src/program.rs crates/core/src/server.rs

/root/repo/target/debug/deps/aloha_core-3a5a663d1559b597: crates/core/src/lib.rs crates/core/src/checker.rs crates/core/src/cluster.rs crates/core/src/msg.rs crates/core/src/program.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/checker.rs:
crates/core/src/cluster.rs:
crates/core/src/msg.rs:
crates/core/src/program.rs:
crates/core/src/server.rs:
