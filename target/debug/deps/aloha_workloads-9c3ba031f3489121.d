/root/repo/target/debug/deps/aloha_workloads-9c3ba031f3489121.d: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/aloha.rs crates/workloads/src/tpcc/calvin_impl.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/read_txns.rs crates/workloads/src/tpcc/schema.rs crates/workloads/src/ycsb.rs Cargo.toml

/root/repo/target/debug/deps/libaloha_workloads-9c3ba031f3489121.rmeta: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/aloha.rs crates/workloads/src/tpcc/calvin_impl.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/read_txns.rs crates/workloads/src/tpcc/schema.rs crates/workloads/src/ycsb.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/tpcc/mod.rs:
crates/workloads/src/tpcc/aloha.rs:
crates/workloads/src/tpcc/calvin_impl.rs:
crates/workloads/src/tpcc/gen.rs:
crates/workloads/src/tpcc/read_txns.rs:
crates/workloads/src/tpcc/schema.rs:
crates/workloads/src/ycsb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
