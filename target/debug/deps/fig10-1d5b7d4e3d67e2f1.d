/root/repo/target/debug/deps/fig10-1d5b7d4e3d67e2f1.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-1d5b7d4e3d67e2f1: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
