/root/repo/target/debug/deps/lock_model-d283b30691e4e6e9.d: crates/calvin/tests/lock_model.rs

/root/repo/target/debug/deps/lock_model-d283b30691e4e6e9: crates/calvin/tests/lock_model.rs

crates/calvin/tests/lock_model.rs:
