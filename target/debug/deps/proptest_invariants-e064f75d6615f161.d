/root/repo/target/debug/deps/proptest_invariants-e064f75d6615f161.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-e064f75d6615f161: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
