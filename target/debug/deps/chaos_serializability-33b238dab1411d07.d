/root/repo/target/debug/deps/chaos_serializability-33b238dab1411d07.d: tests/chaos_serializability.rs

/root/repo/target/debug/deps/chaos_serializability-33b238dab1411d07: tests/chaos_serializability.rs

tests/chaos_serializability.rs:
