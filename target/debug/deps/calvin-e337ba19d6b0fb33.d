/root/repo/target/debug/deps/calvin-e337ba19d6b0fb33.d: crates/calvin/src/lib.rs crates/calvin/src/cluster.rs crates/calvin/src/exchange.rs crates/calvin/src/lock.rs crates/calvin/src/msg.rs crates/calvin/src/program.rs crates/calvin/src/server.rs crates/calvin/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libcalvin-e337ba19d6b0fb33.rmeta: crates/calvin/src/lib.rs crates/calvin/src/cluster.rs crates/calvin/src/exchange.rs crates/calvin/src/lock.rs crates/calvin/src/msg.rs crates/calvin/src/program.rs crates/calvin/src/server.rs crates/calvin/src/store.rs Cargo.toml

crates/calvin/src/lib.rs:
crates/calvin/src/cluster.rs:
crates/calvin/src/exchange.rs:
crates/calvin/src/lock.rs:
crates/calvin/src/msg.rs:
crates/calvin/src/program.rs:
crates/calvin/src/server.rs:
crates/calvin/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
