/root/repo/target/debug/deps/aloha_storage-80da9a2959cfec1b.d: crates/storage/src/lib.rs crates/storage/src/chain.rs crates/storage/src/partition.rs crates/storage/src/snapshot.rs crates/storage/src/store.rs crates/storage/src/wal.rs Cargo.toml

/root/repo/target/debug/deps/libaloha_storage-80da9a2959cfec1b.rmeta: crates/storage/src/lib.rs crates/storage/src/chain.rs crates/storage/src/partition.rs crates/storage/src/snapshot.rs crates/storage/src/store.rs crates/storage/src/wal.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/chain.rs:
crates/storage/src/partition.rs:
crates/storage/src/snapshot.rs:
crates/storage/src/store.rs:
crates/storage/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
