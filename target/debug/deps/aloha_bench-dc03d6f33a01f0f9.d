/root/repo/target/debug/deps/aloha_bench-dc03d6f33a01f0f9.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/aloha_bench-dc03d6f33a01f0f9: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
