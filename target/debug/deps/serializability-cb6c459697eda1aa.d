/root/repo/target/debug/deps/serializability-cb6c459697eda1aa.d: tests/serializability.rs

/root/repo/target/debug/deps/serializability-cb6c459697eda1aa: tests/serializability.rs

tests/serializability.rs:
