/root/repo/target/debug/deps/engine-c0506de73aef7570.d: crates/core/tests/engine.rs

/root/repo/target/debug/deps/engine-c0506de73aef7570: crates/core/tests/engine.rs

crates/core/tests/engine.rs:
