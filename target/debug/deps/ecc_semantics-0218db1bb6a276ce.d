/root/repo/target/debug/deps/ecc_semantics-0218db1bb6a276ce.d: tests/ecc_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libecc_semantics-0218db1bb6a276ce.rmeta: tests/ecc_semantics.rs Cargo.toml

tests/ecc_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
