/root/repo/target/debug/deps/client_fuzz-8c08a5fc1833a53c.d: crates/epoch/tests/client_fuzz.rs

/root/repo/target/debug/deps/client_fuzz-8c08a5fc1833a53c: crates/epoch/tests/client_fuzz.rs

crates/epoch/tests/client_fuzz.rs:
