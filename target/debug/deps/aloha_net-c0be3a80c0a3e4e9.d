/root/repo/target/debug/deps/aloha_net-c0be3a80c0a3e4e9.d: crates/net/src/lib.rs crates/net/src/bus.rs crates/net/src/delay.rs crates/net/src/fault.rs crates/net/src/reply.rs

/root/repo/target/debug/deps/libaloha_net-c0be3a80c0a3e4e9.rmeta: crates/net/src/lib.rs crates/net/src/bus.rs crates/net/src/delay.rs crates/net/src/fault.rs crates/net/src/reply.rs

crates/net/src/lib.rs:
crates/net/src/bus.rs:
crates/net/src/delay.rs:
crates/net/src/fault.rs:
crates/net/src/reply.rs:
