/root/repo/target/debug/deps/fig10-f8599d55dde9f626.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-f8599d55dde9f626: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
