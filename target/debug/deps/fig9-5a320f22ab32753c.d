/root/repo/target/debug/deps/fig9-5a320f22ab32753c.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-5a320f22ab32753c.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
