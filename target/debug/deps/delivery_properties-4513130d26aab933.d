/root/repo/target/debug/deps/delivery_properties-4513130d26aab933.d: crates/net/tests/delivery_properties.rs

/root/repo/target/debug/deps/delivery_properties-4513130d26aab933: crates/net/tests/delivery_properties.rs

crates/net/tests/delivery_properties.rs:
