/root/repo/target/debug/deps/ecc_semantics-4795d520e1bdadee.d: tests/ecc_semantics.rs

/root/repo/target/debug/deps/ecc_semantics-4795d520e1bdadee: tests/ecc_semantics.rs

tests/ecc_semantics.rs:
