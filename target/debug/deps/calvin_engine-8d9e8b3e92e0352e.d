/root/repo/target/debug/deps/calvin_engine-8d9e8b3e92e0352e.d: crates/calvin/tests/calvin_engine.rs Cargo.toml

/root/repo/target/debug/deps/libcalvin_engine-8d9e8b3e92e0352e.rmeta: crates/calvin/tests/calvin_engine.rs Cargo.toml

crates/calvin/tests/calvin_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
