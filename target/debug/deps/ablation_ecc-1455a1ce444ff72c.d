/root/repo/target/debug/deps/ablation_ecc-1455a1ce444ff72c.d: crates/bench/src/bin/ablation_ecc.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ecc-1455a1ce444ff72c.rmeta: crates/bench/src/bin/ablation_ecc.rs Cargo.toml

crates/bench/src/bin/ablation_ecc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
