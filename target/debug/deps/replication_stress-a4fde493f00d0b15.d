/root/repo/target/debug/deps/replication_stress-a4fde493f00d0b15.d: crates/core/tests/replication_stress.rs Cargo.toml

/root/repo/target/debug/deps/libreplication_stress-a4fde493f00d0b15.rmeta: crates/core/tests/replication_stress.rs Cargo.toml

crates/core/tests/replication_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
