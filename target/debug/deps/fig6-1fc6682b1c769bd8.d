/root/repo/target/debug/deps/fig6-1fc6682b1c769bd8.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-1fc6682b1c769bd8: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
