/root/repo/target/debug/deps/cross_system-cbb7c5749fc8b805.d: tests/cross_system.rs

/root/repo/target/debug/deps/cross_system-cbb7c5749fc8b805: tests/cross_system.rs

tests/cross_system.rs:
