/root/repo/target/debug/deps/tpcc_e2e-dc2f52c52c4a5f7e.d: crates/workloads/tests/tpcc_e2e.rs

/root/repo/target/debug/deps/tpcc_e2e-dc2f52c52c4a5f7e: crates/workloads/tests/tpcc_e2e.rs

crates/workloads/tests/tpcc_e2e.rs:
