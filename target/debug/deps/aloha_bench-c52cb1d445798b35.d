/root/repo/target/debug/deps/aloha_bench-c52cb1d445798b35.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libaloha_bench-c52cb1d445798b35.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libaloha_bench-c52cb1d445798b35.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
