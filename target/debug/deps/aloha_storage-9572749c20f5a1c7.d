/root/repo/target/debug/deps/aloha_storage-9572749c20f5a1c7.d: crates/storage/src/lib.rs crates/storage/src/chain.rs crates/storage/src/partition.rs crates/storage/src/snapshot.rs crates/storage/src/store.rs crates/storage/src/wal.rs

/root/repo/target/debug/deps/libaloha_storage-9572749c20f5a1c7.rmeta: crates/storage/src/lib.rs crates/storage/src/chain.rs crates/storage/src/partition.rs crates/storage/src/snapshot.rs crates/storage/src/store.rs crates/storage/src/wal.rs

crates/storage/src/lib.rs:
crates/storage/src/chain.rs:
crates/storage/src/partition.rs:
crates/storage/src/snapshot.rs:
crates/storage/src/store.rs:
crates/storage/src/wal.rs:
