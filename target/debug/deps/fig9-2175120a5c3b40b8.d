/root/repo/target/debug/deps/fig9-2175120a5c3b40b8.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-2175120a5c3b40b8: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
