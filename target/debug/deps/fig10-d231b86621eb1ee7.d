/root/repo/target/debug/deps/fig10-d231b86621eb1ee7.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-d231b86621eb1ee7.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
