/root/repo/target/debug/deps/calvin-bfa01d983fbb110d.d: crates/calvin/src/lib.rs crates/calvin/src/cluster.rs crates/calvin/src/exchange.rs crates/calvin/src/lock.rs crates/calvin/src/msg.rs crates/calvin/src/program.rs crates/calvin/src/server.rs crates/calvin/src/store.rs

/root/repo/target/debug/deps/calvin-bfa01d983fbb110d: crates/calvin/src/lib.rs crates/calvin/src/cluster.rs crates/calvin/src/exchange.rs crates/calvin/src/lock.rs crates/calvin/src/msg.rs crates/calvin/src/program.rs crates/calvin/src/server.rs crates/calvin/src/store.rs

crates/calvin/src/lib.rs:
crates/calvin/src/cluster.rs:
crates/calvin/src/exchange.rs:
crates/calvin/src/lock.rs:
crates/calvin/src/msg.rs:
crates/calvin/src/program.rs:
crates/calvin/src/server.rs:
crates/calvin/src/store.rs:
