/root/repo/target/debug/deps/substrates-573c471d16a043b5.d: crates/bench/benches/substrates.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrates-573c471d16a043b5.rmeta: crates/bench/benches/substrates.rs Cargo.toml

crates/bench/benches/substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
