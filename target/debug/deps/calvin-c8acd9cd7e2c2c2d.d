/root/repo/target/debug/deps/calvin-c8acd9cd7e2c2c2d.d: crates/calvin/src/lib.rs crates/calvin/src/cluster.rs crates/calvin/src/exchange.rs crates/calvin/src/lock.rs crates/calvin/src/msg.rs crates/calvin/src/program.rs crates/calvin/src/server.rs crates/calvin/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libcalvin-c8acd9cd7e2c2c2d.rmeta: crates/calvin/src/lib.rs crates/calvin/src/cluster.rs crates/calvin/src/exchange.rs crates/calvin/src/lock.rs crates/calvin/src/msg.rs crates/calvin/src/program.rs crates/calvin/src/server.rs crates/calvin/src/store.rs Cargo.toml

crates/calvin/src/lib.rs:
crates/calvin/src/cluster.rs:
crates/calvin/src/exchange.rs:
crates/calvin/src/lock.rs:
crates/calvin/src/msg.rs:
crates/calvin/src/program.rs:
crates/calvin/src/server.rs:
crates/calvin/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
