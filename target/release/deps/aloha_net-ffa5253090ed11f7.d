/root/repo/target/release/deps/aloha_net-ffa5253090ed11f7.d: crates/net/src/lib.rs crates/net/src/bus.rs crates/net/src/delay.rs crates/net/src/fault.rs crates/net/src/reply.rs

/root/repo/target/release/deps/libaloha_net-ffa5253090ed11f7.rlib: crates/net/src/lib.rs crates/net/src/bus.rs crates/net/src/delay.rs crates/net/src/fault.rs crates/net/src/reply.rs

/root/repo/target/release/deps/libaloha_net-ffa5253090ed11f7.rmeta: crates/net/src/lib.rs crates/net/src/bus.rs crates/net/src/delay.rs crates/net/src/fault.rs crates/net/src/reply.rs

crates/net/src/lib.rs:
crates/net/src/bus.rs:
crates/net/src/delay.rs:
crates/net/src/fault.rs:
crates/net/src/reply.rs:
