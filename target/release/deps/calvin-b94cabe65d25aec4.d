/root/repo/target/release/deps/calvin-b94cabe65d25aec4.d: crates/calvin/src/lib.rs crates/calvin/src/cluster.rs crates/calvin/src/exchange.rs crates/calvin/src/lock.rs crates/calvin/src/msg.rs crates/calvin/src/program.rs crates/calvin/src/server.rs crates/calvin/src/store.rs

/root/repo/target/release/deps/libcalvin-b94cabe65d25aec4.rlib: crates/calvin/src/lib.rs crates/calvin/src/cluster.rs crates/calvin/src/exchange.rs crates/calvin/src/lock.rs crates/calvin/src/msg.rs crates/calvin/src/program.rs crates/calvin/src/server.rs crates/calvin/src/store.rs

/root/repo/target/release/deps/libcalvin-b94cabe65d25aec4.rmeta: crates/calvin/src/lib.rs crates/calvin/src/cluster.rs crates/calvin/src/exchange.rs crates/calvin/src/lock.rs crates/calvin/src/msg.rs crates/calvin/src/program.rs crates/calvin/src/server.rs crates/calvin/src/store.rs

crates/calvin/src/lib.rs:
crates/calvin/src/cluster.rs:
crates/calvin/src/exchange.rs:
crates/calvin/src/lock.rs:
crates/calvin/src/msg.rs:
crates/calvin/src/program.rs:
crates/calvin/src/server.rs:
crates/calvin/src/store.rs:
