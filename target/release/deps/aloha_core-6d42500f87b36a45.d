/root/repo/target/release/deps/aloha_core-6d42500f87b36a45.d: crates/core/src/lib.rs crates/core/src/checker.rs crates/core/src/cluster.rs crates/core/src/msg.rs crates/core/src/program.rs crates/core/src/server.rs

/root/repo/target/release/deps/libaloha_core-6d42500f87b36a45.rlib: crates/core/src/lib.rs crates/core/src/checker.rs crates/core/src/cluster.rs crates/core/src/msg.rs crates/core/src/program.rs crates/core/src/server.rs

/root/repo/target/release/deps/libaloha_core-6d42500f87b36a45.rmeta: crates/core/src/lib.rs crates/core/src/checker.rs crates/core/src/cluster.rs crates/core/src/msg.rs crates/core/src/program.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/checker.rs:
crates/core/src/cluster.rs:
crates/core/src/msg.rs:
crates/core/src/program.rs:
crates/core/src/server.rs:
