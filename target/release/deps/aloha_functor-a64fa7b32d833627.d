/root/repo/target/release/deps/aloha_functor-a64fa7b32d833627.d: crates/functor/src/lib.rs crates/functor/src/builtin.rs crates/functor/src/ftype.rs crates/functor/src/handler.rs

/root/repo/target/release/deps/libaloha_functor-a64fa7b32d833627.rlib: crates/functor/src/lib.rs crates/functor/src/builtin.rs crates/functor/src/ftype.rs crates/functor/src/handler.rs

/root/repo/target/release/deps/libaloha_functor-a64fa7b32d833627.rmeta: crates/functor/src/lib.rs crates/functor/src/builtin.rs crates/functor/src/ftype.rs crates/functor/src/handler.rs

crates/functor/src/lib.rs:
crates/functor/src/builtin.rs:
crates/functor/src/ftype.rs:
crates/functor/src/handler.rs:
