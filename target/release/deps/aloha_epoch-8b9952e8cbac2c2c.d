/root/repo/target/release/deps/aloha_epoch-8b9952e8cbac2c2c.d: crates/epoch/src/lib.rs crates/epoch/src/auth.rs crates/epoch/src/client.rs crates/epoch/src/manager.rs crates/epoch/src/oracle.rs

/root/repo/target/release/deps/libaloha_epoch-8b9952e8cbac2c2c.rlib: crates/epoch/src/lib.rs crates/epoch/src/auth.rs crates/epoch/src/client.rs crates/epoch/src/manager.rs crates/epoch/src/oracle.rs

/root/repo/target/release/deps/libaloha_epoch-8b9952e8cbac2c2c.rmeta: crates/epoch/src/lib.rs crates/epoch/src/auth.rs crates/epoch/src/client.rs crates/epoch/src/manager.rs crates/epoch/src/oracle.rs

crates/epoch/src/lib.rs:
crates/epoch/src/auth.rs:
crates/epoch/src/client.rs:
crates/epoch/src/manager.rs:
crates/epoch/src/oracle.rs:
