/root/repo/target/release/deps/aloha_workloads-7c4c0e1ccdd30257.d: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/aloha.rs crates/workloads/src/tpcc/calvin_impl.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/read_txns.rs crates/workloads/src/tpcc/schema.rs crates/workloads/src/ycsb.rs

/root/repo/target/release/deps/libaloha_workloads-7c4c0e1ccdd30257.rlib: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/aloha.rs crates/workloads/src/tpcc/calvin_impl.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/read_txns.rs crates/workloads/src/tpcc/schema.rs crates/workloads/src/ycsb.rs

/root/repo/target/release/deps/libaloha_workloads-7c4c0e1ccdd30257.rmeta: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/aloha.rs crates/workloads/src/tpcc/calvin_impl.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/read_txns.rs crates/workloads/src/tpcc/schema.rs crates/workloads/src/ycsb.rs

crates/workloads/src/lib.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/tpcc/mod.rs:
crates/workloads/src/tpcc/aloha.rs:
crates/workloads/src/tpcc/calvin_impl.rs:
crates/workloads/src/tpcc/gen.rs:
crates/workloads/src/tpcc/read_txns.rs:
crates/workloads/src/tpcc/schema.rs:
crates/workloads/src/ycsb.rs:
