/root/repo/target/release/deps/aloha_db-86f35d936f9bdb55.d: src/lib.rs

/root/repo/target/release/deps/libaloha_db-86f35d936f9bdb55.rlib: src/lib.rs

/root/repo/target/release/deps/libaloha_db-86f35d936f9bdb55.rmeta: src/lib.rs

src/lib.rs:
