/root/repo/target/release/deps/chaos_serializability-f08906a4e6c81b8c.d: tests/chaos_serializability.rs

/root/repo/target/release/deps/chaos_serializability-f08906a4e6c81b8c: tests/chaos_serializability.rs

tests/chaos_serializability.rs:
