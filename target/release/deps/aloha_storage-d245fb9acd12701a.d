/root/repo/target/release/deps/aloha_storage-d245fb9acd12701a.d: crates/storage/src/lib.rs crates/storage/src/chain.rs crates/storage/src/partition.rs crates/storage/src/snapshot.rs crates/storage/src/store.rs crates/storage/src/wal.rs

/root/repo/target/release/deps/libaloha_storage-d245fb9acd12701a.rlib: crates/storage/src/lib.rs crates/storage/src/chain.rs crates/storage/src/partition.rs crates/storage/src/snapshot.rs crates/storage/src/store.rs crates/storage/src/wal.rs

/root/repo/target/release/deps/libaloha_storage-d245fb9acd12701a.rmeta: crates/storage/src/lib.rs crates/storage/src/chain.rs crates/storage/src/partition.rs crates/storage/src/snapshot.rs crates/storage/src/store.rs crates/storage/src/wal.rs

crates/storage/src/lib.rs:
crates/storage/src/chain.rs:
crates/storage/src/partition.rs:
crates/storage/src/snapshot.rs:
crates/storage/src/store.rs:
crates/storage/src/wal.rs:
