/root/repo/target/release/deps/aloha_common-21636eb4939c9bf7.d: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/codec.rs crates/common/src/error.rs crates/common/src/history.rs crates/common/src/ids.rs crates/common/src/key.rs crates/common/src/metrics.rs crates/common/src/timestamp.rs

/root/repo/target/release/deps/libaloha_common-21636eb4939c9bf7.rlib: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/codec.rs crates/common/src/error.rs crates/common/src/history.rs crates/common/src/ids.rs crates/common/src/key.rs crates/common/src/metrics.rs crates/common/src/timestamp.rs

/root/repo/target/release/deps/libaloha_common-21636eb4939c9bf7.rmeta: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/codec.rs crates/common/src/error.rs crates/common/src/history.rs crates/common/src/ids.rs crates/common/src/key.rs crates/common/src/metrics.rs crates/common/src/timestamp.rs

crates/common/src/lib.rs:
crates/common/src/clock.rs:
crates/common/src/codec.rs:
crates/common/src/error.rs:
crates/common/src/history.rs:
crates/common/src/ids.rs:
crates/common/src/key.rs:
crates/common/src/metrics.rs:
crates/common/src/timestamp.rs:
