/root/repo/target/release/examples/quickstart-fbf607aef731e271.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-fbf607aef731e271: examples/quickstart.rs

examples/quickstart.rs:
