/root/repo/target/release/examples/chaos_demo-32379e3082f6447a.d: examples/chaos_demo.rs

/root/repo/target/release/examples/chaos_demo-32379e3082f6447a: examples/chaos_demo.rs

examples/chaos_demo.rs:
