/root/repo/target/release/examples/bank_transfer-32f624a81ac548de.d: examples/bank_transfer.rs

/root/repo/target/release/examples/bank_transfer-32f624a81ac548de: examples/bank_transfer.rs

examples/bank_transfer.rs:
