//! Minimal offline stand-in for the `criterion` crate. Runs each benchmark
//! routine for a short fixed budget and prints a mean time per iteration —
//! no statistics, no HTML reports, but the same macro/API surface so the
//! workspace's benches compile and produce usable numbers offline.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, f);
        self
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Finishes the group (no-op here).
    pub fn finish(self) {}
}

fn run_bench<F>(name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = if bencher.iters == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iters.max(1) as u32
    };
    println!("bench {name}: {} iters, ~{per_iter:?}/iter", bencher.iters);
}

/// Per-benchmark timing driver.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

/// Budget per benchmark; tiny so `cargo bench` stays fast offline.
const TIME_BUDGET: Duration = Duration::from_millis(50);
const MAX_ITERS: u64 = 10_000;

impl Bencher {
    /// Times `routine` repeatedly until the budget is spent.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        while self.iters < MAX_ITERS && start.elapsed() < TIME_BUDGET {
            black_box(routine());
            self.iters += 1;
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let begin = Instant::now();
        while self.iters < MAX_ITERS && begin.elapsed() < TIME_BUDGET {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Batching hint (ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Declares a group of benchmark functions as one runnable unit.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1, 2, 3],
                |v| v.iter().sum::<i32>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
