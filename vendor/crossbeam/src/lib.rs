//! Minimal offline stand-in for the `crossbeam` crate. Provides the
//! `channel` module only: multi-producer multi-consumer channels built on a
//! mutex-guarded deque. `bounded` channels do not enforce their capacity —
//! senders never block — which is a superset of the behaviour the workspace
//! relies on (reply slots are `bounded(1)` and written at most a handful of
//! times; receivers take the first value).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        items: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    fn shared<T>() -> Arc<Shared<T>> {
        Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            items: Condvar::new(),
        })
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let s = shared();
        (
            Sender {
                shared: Arc::clone(&s),
            },
            Receiver { shared: s },
        )
    }

    /// Creates a "bounded" MPMC channel. The capacity is advisory only:
    /// senders never block, so a duplicated message cannot deadlock an RPC
    /// reply slot.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    /// The sending half; cheap to clone.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cheap to clone (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.items.notify_one();
            Ok(())
        }

        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.items.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or all senders disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.items.wait(inner).unwrap();
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self.shared.items.wait_timeout(inner, left).unwrap();
                inner = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            match inner.queue.pop_front() {
                Some(msg) => Ok(msg),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.inner.lock().unwrap().receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    /// Send failed because no receiver remains; returns the message.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Blocking receive failed: all senders gone and queue drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Timed receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Non-blocking receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel empty"),
                TryRecvError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<i32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn dropping_senders_disconnects() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn dropping_receivers_fails_send() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(3).is_err());
        }

        #[test]
        fn bounded_sender_never_blocks() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
        }

        #[test]
        fn mpmc_clone_both_halves() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let rx2 = rx.clone();
            tx2.send(9).unwrap();
            assert_eq!(rx2.recv(), Ok(9));
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(Duration::from_millis(5));
            tx.send(42).unwrap();
            assert_eq!(t.join().unwrap(), 42);
        }
    }
}
