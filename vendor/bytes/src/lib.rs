//! Minimal offline stand-in for the `bytes` crate: [`Bytes`], an immutable
//! reference-counted byte buffer that is cheap to clone. `from_static` copies
//! instead of borrowing — semantically equivalent, slightly less efficient,
//! irrelevant at simulator scale.
//!
//! A [`Bytes`] is a *window* (offset + length) over a shared `Arc<[u8]>`
//! backing, so [`Bytes::slice`] and [`Bytes::slice_ref`] produce sub-views
//! without copying — one received wire frame can lend out every key and
//! value it carries while all of them share the frame's single allocation.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable immutable bytes: a window over shared storage.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    fn whole(data: Arc<[u8]>) -> Bytes {
        let len = data.len();
        Bytes { data, off: 0, len }
    }

    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::whole(Arc::from(&[][..]))
    }

    /// Copies a static slice into a buffer.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::whole(Arc::from(bytes))
    }

    /// Copies an arbitrary slice into a buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes::whole(Arc::from(bytes))
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// A zero-copy sub-view of this buffer: the returned `Bytes` shares the
    /// same backing allocation, narrowed to `range` (relative to `self`).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice range {start}..{end} out of bounds for Bytes of length {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    /// A zero-copy view of `subset`, which must point into this buffer
    /// (e.g. a `&[u8]` lent out by a parser over `self`). The returned
    /// `Bytes` shares this buffer's backing allocation.
    ///
    /// # Panics
    ///
    /// Panics if `subset` is not contained within `self`.
    pub fn slice_ref(&self, subset: &[u8]) -> Bytes {
        if subset.is_empty() {
            return Bytes::new();
        }
        let base = self.as_ref().as_ptr() as usize;
        let sub = subset.as_ptr() as usize;
        assert!(
            sub >= base && sub + subset.len() <= base + self.len,
            "slice_ref: subset is not a sub-slice of this Bytes"
        );
        let start = sub - base;
        self.slice(start..start + subset.len())
    }

    /// Whether two buffers share the same backing allocation (used by tests
    /// asserting zero-copy behavior).
    pub fn shares_storage_with(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::whole(Arc::from(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes::whole(Arc::from(v))
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[1..], &[2, 3][..]);
        assert_eq!(Bytes::copy_from_slice(&[1, 2, 3]), b);
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![9; 64]);
        let b = a.clone();
        assert!(a.shares_storage_with(&b));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Bytes::from_static(b"a") < Bytes::from_static(b"ab"));
        assert!(Bytes::from_static(b"b") > Bytes::from_static(b"ab"));
    }

    #[test]
    fn debug_escapes_non_printable() {
        let b = Bytes::from(vec![b'h', 0]);
        assert_eq!(format!("{b:?}"), "b\"h\\x00\"");
    }

    #[test]
    fn slice_is_a_zero_copy_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert!(s.shares_storage_with(&b));
        // Slicing a slice stays relative to the inner window.
        let ss = s.slice(1..);
        assert_eq!(ss.as_ref(), &[3, 4]);
        assert!(ss.shares_storage_with(&b));
        assert_eq!(b.slice(..).as_ref(), b.as_ref());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1, 2, 3]);
        let _ = b.slice(1..9);
    }

    #[test]
    fn slice_ref_recovers_window_from_borrowed_subslice() {
        let b = Bytes::from(vec![10, 11, 12, 13]);
        let borrowed: &[u8] = &b.as_ref()[1..3];
        let s = b.slice_ref(borrowed);
        assert_eq!(s.as_ref(), &[11, 12]);
        assert!(s.shares_storage_with(&b));
    }

    #[test]
    fn slice_ref_of_empty_is_empty() {
        let b = Bytes::from(vec![1, 2]);
        assert!(b.slice_ref(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "not a sub-slice")]
    fn slice_ref_of_foreign_slice_panics() {
        let b = Bytes::from(vec![1, 2, 3]);
        let other = [1u8, 2, 3];
        let _ = b.slice_ref(&other[..]);
    }

    #[test]
    fn equality_ignores_windowing() {
        let b = Bytes::from(vec![7, 8, 9, 7, 8, 9]);
        assert_eq!(b.slice(0..3), b.slice(3..6));
        let copy = Bytes::copy_from_slice(&[7, 8, 9]);
        assert_eq!(b.slice(0..3), copy);
        assert!(!copy.shares_storage_with(&b));
    }
}
