//! Minimal offline stand-in for the `bytes` crate: [`Bytes`], an immutable
//! reference-counted byte buffer that is cheap to clone. `from_static` copies
//! instead of borrowing — semantically equivalent, slightly less efficient,
//! irrelevant at simulator scale.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies a static slice into a buffer.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies an arbitrary slice into a buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[1..], &[2, 3][..]);
        assert_eq!(Bytes::copy_from_slice(&[1, 2, 3]), b);
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![9; 64]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Bytes::from_static(b"a") < Bytes::from_static(b"ab"));
        assert!(Bytes::from_static(b"b") > Bytes::from_static(b"ab"));
    }

    #[test]
    fn debug_escapes_non_printable() {
        let b = Bytes::from(vec![b'h', 0]);
        assert_eq!(format!("{b:?}"), "b\"h\\x00\"");
    }
}
