//! Minimal offline stand-in for the `rand` crate: a splitmix64-based
//! [`rngs::SmallRng`] plus the [`Rng`]/[`SeedableRng`] trait surface used by
//! this workspace (`gen_range` over integer ranges, `gen_bool`, `gen`).
//! Deterministic for a given seed, which is all the simulator needs.

use std::ops::{Range, RangeInclusive};

/// Raw generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value of `T`.
    fn gen<T>(&mut self) -> T
    where
        T: UniformPrimitive,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly over their whole domain.
pub trait UniformPrimitive {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! uniform_primitive {
    ($($t:ty),+) => {$(
        impl UniformPrimitive for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

uniform_primitive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformPrimitive for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )+};
}

sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (splitmix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // Scramble once so nearby seeds produce unrelated streams.
            let mut rng = SmallRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            };
            rng.next_u64();
            rng
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
