//! Minimal offline stand-in for the `parking_lot` crate, backed by
//! `std::sync`. Only the surface this workspace uses is provided; lock
//! poisoning is absorbed (a panic while holding a lock does not poison it,
//! matching parking_lot semantics).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{PoisonError, TryLockError};
use std::time::Instant;

/// Mutual exclusion primitive; `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Guard holding the lock; the inner `Option` lets [`Condvar`] temporarily
/// take the `std` guard during a wait and put it back afterwards.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Condition variable operating on [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar::default()
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard active");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        until: Instant,
    ) -> WaitTimeoutResult {
        let timeout = until.saturating_duration_since(Instant::now());
        let g = guard.inner.take().expect("guard active");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Whether a timed wait returned because the deadline passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Reader-writer lock; poisoning absorbed like [`Mutex`].
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
