//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::{Strategy, TestRng};

/// A size specification for collection strategies (inclusive bounds).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below(self.hi - self.lo + 1)
    }
}

/// Vectors of values from `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Ordered sets of values from `element` with a size drawn from `size`.
///
/// The element domain must be large enough to reach the requested size;
/// generation gives up (with whatever was collected) after a bounded number
/// of duplicate draws, mirroring proptest's rejection cap.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 100 + 100 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
