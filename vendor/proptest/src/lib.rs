//! Minimal offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the API this workspace uses: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`/`boxed`, range/tuple/`Just`/
//! [`Union`] (via [`prop_oneof!`]) strategies, [`collection::vec`] and
//! [`collection::btree_set`], `any::<T>()` for primitives, a small
//! character-class string strategy, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Cases are generated from a per-case deterministic seed, so failures are
//! reproducible run-to-run. There is no shrinking: a failing case prints its
//! full inputs instead.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Deterministic splitmix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for case number `case` (stable across runs).
    pub fn for_case(case: u32) -> TestRng {
        let mut rng = TestRng {
            state: 0xA076_1D64_78BD_642F ^ (u64::from(case) << 17),
        };
        rng.next_u64();
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// A recipe for producing values of one type.
pub trait Strategy {
    type Value: Debug;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among boxed alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a full-domain uniform strategy via [`any`].
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing any value of `T`.
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the full-domain strategy for a primitive.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

/// String strategy from a character-class pattern of the shape
/// `[class]{lo,hi}` (e.g. `"[a-zA-Z0-9 ]{0,40}"`). Patterns not of that
/// shape generate the literal itself.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_char_class(self) {
            Some((chars, lo, hi)) if !chars.is_empty() => {
                let len = lo + rng.below(hi - lo + 1);
                (0..len).map(|_| chars[rng.below(chars.len())]).collect()
            }
            _ => (*self).to_string(),
        }
    }
}

fn parse_char_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    let suffix = &rest[close + 1..];
    if suffix.is_empty() {
        return Some((chars, 1, 1));
    }
    let counts = suffix.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    Some((chars, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed `prop_assert*` inside a property body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }

    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Drives one property over `config.cases` deterministic cases. The case
/// closure fills `inputs` with a rendering of the generated arguments before
/// running the body, so both assertion failures and panics can report them.
pub fn run_cases<F>(config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng, &mut String) -> Result<(), TestCaseError>,
{
    for number in 0..config.cases {
        let mut rng = TestRng::for_case(number);
        let mut inputs = String::new();
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng, &mut inputs)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!(
                "proptest case {number} failed: {}\n    inputs: {inputs}",
                e.message()
            ),
            Err(payload) => {
                eprintln!("proptest case {number} panicked\n    inputs: {inputs}");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Declares property tests. Mirrors proptest's macro: an optional
/// `#![proptest_config(..)]` header followed by `#[test] fn` items whose
/// arguments are drawn from strategies with `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(&($config), |__rng, __inputs| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                *__inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (with its inputs
/// printed) instead of panicking bare.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: {:?} != {:?}",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)+),
                __left,
                __right
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case(0);
        for _ in 0..500 {
            let v = crate::Strategy::generate(&(3u64..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = crate::Strategy::generate(&(-2i64..=2), &mut rng);
            assert!((-2..=2).contains(&w));
        }
    }

    #[test]
    fn collections_honour_size() {
        let mut rng = crate::TestRng::for_case(1);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&crate::collection::vec(0u8..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let s: BTreeSet<u64> =
                crate::Strategy::generate(&crate::collection::btree_set(0u64..100, 1..4), &mut rng);
            assert!((1..4).contains(&s.len()));
        }
    }

    #[test]
    fn string_class_strategy_matches_pattern() {
        let mut rng = crate::TestRng::for_case(2);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-c0-1 ]{0,5}", &mut rng);
            assert!(s.len() <= 5);
            assert!(s.chars().all(|c| "abc01 ".contains(c)));
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = crate::TestRng::for_case(3);
        let strat = prop_oneof![Just(1u8), Just(2u8), 5u8..8];
        let mut seen = BTreeSet::new();
        for _ in 0..200 {
            seen.insert(crate::Strategy::generate(&strat, &mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.iter().any(|v| (5..8).contains(v)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_round_trip(
            x in 0u32..100,
            pair in (0u8..4, any::<bool>()),
            items in crate::collection::vec(0i64..10, 0..6),
        ) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 4, "pair out of range: {:?}", pair);
            prop_assert_eq!(items.len(), items.len());
        }
    }

    #[test]
    #[should_panic(expected = "inputs")]
    fn failing_property_reports_inputs() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
