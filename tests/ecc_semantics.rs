//! ECC semantics at cluster level: unified-epoch visibility, the bounded
//! read-latency penalty of §III-B, the §III-C straggler optimization, and
//! robustness to clock skew.

use std::time::{Duration, Instant};

use aloha_common::{Key, Value};
use aloha_db::core_engine::{fn_program, Cluster, ClusterConfig, ProgramId, TxnPlan};
use aloha_functor::Functor;

const INCR: ProgramId = ProgramId(1);

fn incr_cluster(config: ClusterConfig) -> Cluster {
    let mut builder = Cluster::builder(config);
    builder.register_program(
        INCR,
        fn_program(|_| Ok(TxnPlan::new().write(Key::from("k"), Functor::add(1)))),
    );
    let cluster = builder.start().unwrap();
    cluster.load(Key::from("k"), Value::from_i64(0));
    cluster
}

#[test]
fn latest_read_penalty_is_bounded_by_epoch_duration() {
    // §III-B: "the penalty on read latency for this optimization is bounded
    // by the epoch duration length". Allow generous slack for scheduling.
    let epoch = Duration::from_millis(10);
    let cluster = incr_cluster(ClusterConfig::new(2).with_epoch_duration(epoch));
    let db = cluster.database();
    // Warm up: wait until epochs are rolling.
    db.read_latest(&[Key::from("k")]).unwrap();
    for _ in 0..5 {
        let started = Instant::now();
        db.read_latest(&[Key::from("k")]).unwrap();
        let elapsed = started.elapsed();
        assert!(
            elapsed < epoch * 4,
            "latest read took {elapsed:?}, expected ≲ one epoch ({epoch:?}) plus slack"
        );
    }
    cluster.shutdown();
}

#[test]
fn writes_become_visible_in_the_next_epoch_not_sooner() {
    let cluster =
        incr_cluster(ClusterConfig::new(1).with_epoch_duration(Duration::from_millis(20)));
    let db = cluster.database();
    let h = db.execute(INCR, b"").unwrap();
    let write_ts = h.timestamp();
    // Immediately after install, the write's epoch has not ended: the
    // visibility bound must still be below the transaction's timestamp.
    let bound_now = db.visible_bound();
    assert!(
        bound_now < write_ts,
        "write at {write_ts} must not be visible at bound {bound_now} within its own epoch"
    );
    // After processing completes, visibility has advanced past it.
    h.wait_processed().unwrap();
    assert!(db.visible_bound() >= write_ts);
    cluster.shutdown();
}

#[test]
fn cluster_works_with_noauth_disabled() {
    // The straggler optimization is an optimization, not a correctness
    // requirement (§III-C): with it disabled everything still commits.
    let cluster = incr_cluster(
        ClusterConfig::new(2)
            .with_epoch_duration(Duration::from_millis(3))
            .with_noauth(false),
    );
    let db = cluster.database();
    let handles: Vec<_> = (0..30).map(|_| db.execute(INCR, b"").unwrap()).collect();
    for h in handles {
        h.wait_processed().unwrap();
    }
    let v = db.read_latest(&[Key::from("k")]).unwrap()[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(v, 30);
    cluster.shutdown();
}

#[test]
fn noauth_txns_appear_during_epoch_switches() {
    // With very short epochs and continuous load, some transactions start
    // in the no-authorization window; all must still commit exactly once.
    let cluster = incr_cluster(
        ClusterConfig::new(2)
            .with_epoch_duration(Duration::from_millis(2))
            .with_noauth(true),
    );
    let db = cluster.database();
    let mut done = 0u64;
    let deadline = Instant::now() + Duration::from_millis(300);
    while Instant::now() < deadline {
        let handles: Vec<_> = (0..16).map(|_| db.execute(INCR, b"").unwrap()).collect();
        for h in handles {
            h.wait_processed().unwrap();
            done += 1;
        }
    }
    let v = db.read_latest(&[Key::from("k")]).unwrap()[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(
        v as u64, done,
        "every transaction applied exactly once across epoch switches"
    );
    cluster.shutdown();
}

#[test]
fn correctness_survives_heavy_clock_skew() {
    // ECC requires no tight synchronization for correctness (§II): give the
    // two servers ±2 ms of skew (same order as the epoch itself).
    let cluster = incr_cluster(
        ClusterConfig::new(2)
            .with_epoch_duration(Duration::from_millis(5))
            .with_clock_skew(vec![2_000, -2_000]),
    );
    let db = cluster.database();
    let handles: Vec<_> = (0..40).map(|_| db.execute(INCR, b"").unwrap()).collect();
    for h in handles {
        h.wait_processed().unwrap();
    }
    let v = db.read_latest(&[Key::from("k")]).unwrap()[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(v, 40);
    cluster.shutdown();
}

#[test]
fn historical_snapshots_are_immutable_under_later_writes() {
    let cluster = incr_cluster(ClusterConfig::new(1).with_epoch_duration(Duration::from_millis(3)));
    let db = cluster.database();
    let h = db.execute(INCR, b"").unwrap();
    h.wait_processed().unwrap();
    let snapshot = h.timestamp();
    let before = db.read_at(&[Key::from("k")], snapshot).unwrap()[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    for _ in 0..10 {
        db.execute(INCR, b"").unwrap().wait_processed().unwrap();
    }
    let after = db.read_at(&[Key::from("k")], snapshot).unwrap()[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(before, after, "settled snapshots must never change");
    cluster.shutdown();
}

#[test]
fn reading_unsettled_snapshot_is_rejected_not_wrong() {
    let cluster =
        incr_cluster(ClusterConfig::new(1).with_epoch_duration(Duration::from_millis(50)));
    let db = cluster.database();
    let h = db.execute(INCR, b"").unwrap();
    // The transaction's epoch is still open: reading at its timestamp must
    // fail cleanly rather than expose in-epoch state.
    let err = db.read_at(&[Key::from("k")], h.timestamp()).unwrap_err();
    assert!(err.to_string().contains("not settled"), "{err}");
    h.wait_processed().unwrap();
    cluster.shutdown();
}
