//! End-to-end observability: a YCSB run on a 2-server cluster must produce
//! a [`StatsSnapshot`] whose JSON export carries per-stage p50/p95/p99 for
//! every lifecycle stage (including `snapshot_read`) — on both the ALOHA
//! and Calvin engines, with the same schema.

use std::time::Duration;

use aloha_common::metrics::Stage;
use aloha_common::stats::StatsSnapshot;
use aloha_core::{Cluster, ClusterConfig};
use aloha_workloads::driver::{run_windowed, DriverConfig};
use aloha_workloads::ycsb::{self, YcsbConfig};
use calvin::{CalvinCluster, CalvinConfig};

fn driver() -> DriverConfig {
    DriverConfig {
        threads: 4,
        window: 8,
        duration: Duration::from_millis(700),
        warmup: Duration::from_millis(100),
        seed: 0xD15C0,
        pacing: None,
    }
}

/// Exports, re-parses, and checks the full stage schema on the root node.
fn assert_six_stage_schema(snapshot: &StatsSnapshot, engine: &str) {
    let text = snapshot.to_json().to_string();
    let parsed = StatsSnapshot::from_json_text(&text)
        .unwrap_or_else(|e| panic!("{engine}: snapshot JSON must re-parse: {e}"));
    assert_eq!(
        &parsed, snapshot,
        "{engine}: JSON round trip must be lossless"
    );
    for stage in Stage::ALL {
        let s = parsed
            .stage(stage.name())
            .unwrap_or_else(|| panic!("{engine}: missing stage '{}'", stage.name()));
        assert!(
            s.count > 0,
            "{engine}: stage '{}' has no samples",
            stage.name()
        );
        assert!(
            s.p50_micros <= s.p95_micros && s.p95_micros <= s.p99_micros,
            "{engine}: quantiles out of order for '{}'",
            stage.name()
        );
        assert!(
            s.p99_micros <= s.max_micros.max(s.p99_micros),
            "{engine}: p99 beyond max for '{}'",
            stage.name()
        );
    }
    let e2e = parsed.stage("e2e").expect("e2e rollup present");
    assert!(e2e.count > 0, "{engine}: e2e rollup has no samples");
}

#[test]
fn aloha_ycsb_snapshot_reports_all_six_stages() {
    let cfg = YcsbConfig::with_contention_index(2, 0.01).with_keys_per_partition(1_000);
    let mut builder = Cluster::builder(
        ClusterConfig::new(2)
            .with_epoch_duration(Duration::from_millis(5))
            .with_processors(2),
    );
    ycsb::install_aloha(&mut builder);
    let cluster = builder.start().unwrap();
    ycsb::load_aloha(&cluster, &cfg);
    let target = ycsb::AlohaYcsb::new(cluster.database(), cfg.clone());
    cluster.reset_stats();
    let report = run_windowed(&target, &driver());
    assert!(report.committed > 0, "workload must commit transactions");
    // A handful of snapshot reads populate the `snapshot_read` stage.
    let db = cluster.database();
    for idx in 0..4 {
        let values = db
            .read_latest(&[cfg.key(0, idx), cfg.key(1, idx)])
            .expect("snapshot read succeeds");
        assert_eq!(values.len(), 2);
    }

    let snapshot = cluster.snapshot();
    assert_eq!(snapshot.name, "cluster");
    // The engine counter also covers the warmup window the driver excludes.
    assert!(snapshot.counter("committed").unwrap() >= report.committed);
    assert_six_stage_schema(&snapshot, "aloha");
    // The tree has per-server children carrying the same schema names.
    let server = snapshot.child("server_0").expect("per-server subtree");
    assert!(server.stage("transform").is_some());
    assert!(server.child("partition").is_some());
    assert!(snapshot.child("net").is_some());
    cluster.shutdown();
}

/// With batching enabled the same six-stage schema must hold, and the `net`
/// node additionally carries the batcher's counters and its occupancy
/// distribution.
#[test]
fn aloha_batched_snapshot_adds_batch_metrics_to_net_node() {
    let cfg = YcsbConfig::with_contention_index(2, 0.01).with_keys_per_partition(1_000);
    let mut builder = Cluster::builder(
        ClusterConfig::new(2)
            .with_epoch_duration(Duration::from_millis(5))
            .with_processors(2)
            .with_batching(aloha_core::BatchConfig::default()),
    );
    ycsb::install_aloha(&mut builder);
    let cluster = builder.start().unwrap();
    ycsb::load_aloha(&cluster, &cfg);
    let target = ycsb::AlohaYcsb::new(cluster.database(), cfg.clone());
    cluster.reset_stats();
    let report = run_windowed(&target, &driver());
    assert!(
        report.committed > 0,
        "batched workload must commit transactions"
    );
    // Snapshot reads must flow through the batched transport, too.
    let db = cluster.database();
    for idx in 0..4 {
        let values = db
            .read_latest(&[cfg.key(0, idx), cfg.key(1, idx)])
            .expect("snapshot read succeeds");
        assert_eq!(values.len(), 2);
    }

    let snapshot = cluster.snapshot();
    assert_six_stage_schema(&snapshot, "aloha-batched");
    let net = snapshot.child("net").expect("net subtree");
    for counter in [
        "batch_enqueued",
        "batch_batches",
        "batch_flush_size",
        "batch_flush_bytes",
        "batch_flush_deadline",
        "batch_flush_explicit",
    ] {
        assert!(
            net.counter(counter).is_some(),
            "net node must export '{counter}'"
        );
    }
    assert!(
        net.counter("batch_enqueued").unwrap() > 0,
        "batched run must route traffic through the batcher"
    );
    assert!(
        net.counter("batch_batches").unwrap() > 0,
        "batched run must flush envelopes"
    );
    let occupancy = net
        .stage("batch_occupancy")
        .expect("net node must export the batch_occupancy distribution");
    assert!(occupancy.count > 0, "occupancy histogram has no samples");
    cluster.shutdown();
}

#[test]
fn calvin_ycsb_snapshot_reports_all_six_stages() {
    let cfg = YcsbConfig::with_contention_index(2, 0.01).with_keys_per_partition(1_000);
    let mut builder = CalvinCluster::builder(
        CalvinConfig::new(2)
            .with_batch_duration(Duration::from_millis(5))
            .with_workers(2),
    );
    ycsb::install_calvin(&mut builder);
    let cluster = builder.start().unwrap();
    ycsb::load_calvin(&cluster, &cfg);
    let target = ycsb::CalvinYcsb::new(cluster.database(), cfg.clone());
    cluster.reset_stats();
    let report = run_windowed(&target, &driver());
    assert!(report.committed > 0, "workload must commit transactions");
    // Calvin serves reads too; they populate the same `snapshot_read` stage.
    let db = cluster.database();
    for idx in 0..4 {
        let values = db
            .read_latest(&[cfg.key(0, idx), cfg.key(1, idx)])
            .expect("read succeeds");
        assert_eq!(values.len(), 2);
    }

    let snapshot = cluster.snapshot();
    assert_eq!(snapshot.name, "calvin");
    assert!(snapshot.counter("completed").unwrap() > 0);
    assert_six_stage_schema(&snapshot, "calvin");
    assert!(snapshot.child("server_0").is_some());
    assert!(snapshot.child("net").is_some());
    cluster.shutdown();
}
