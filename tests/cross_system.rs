//! Cross-system equivalence: the same workload pushed through ALOHA-DB and
//! through Calvin must converge to the same database state — both systems
//! claim serializability, so on commutative workloads the final states are
//! equal, and on TPC-C the same consistency conditions hold.

use std::time::Duration;

use aloha_common::{Key, Value};
use aloha_db::core_engine::{Cluster, ClusterConfig};
use aloha_workloads::driver::Workload;
use aloha_workloads::tpcc::{self, TpccConfig};
use aloha_workloads::ycsb::{self, YcsbConfig};
use calvin::{CalvinCluster, CalvinConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn ycsb_final_state_identical_across_systems() {
    let cfg = YcsbConfig::with_contention_index(2, 0.05).with_keys_per_partition(300);

    // Generate one fixed transaction sequence.
    let mut rng = SmallRng::seed_from_u64(77);
    let txns: Vec<Vec<Key>> = (0..40)
        .map(|_| ycsb::gen_txn_keys(&mut rng, &cfg))
        .collect();

    // ALOHA.
    let mut builder =
        Cluster::builder(ClusterConfig::new(2).with_epoch_duration(Duration::from_millis(3)));
    ycsb::install_aloha(&mut builder);
    let aloha = builder.start().unwrap();
    ycsb::load_aloha(&aloha, &cfg);
    {
        let db = aloha.database();
        let handles: Vec<_> = txns
            .iter()
            .map(|keys| {
                let mut args = Vec::new();
                args.extend_from_slice(&(keys.len() as u32).to_be_bytes());
                for k in keys {
                    args.extend_from_slice(&(k.as_bytes().len() as u32).to_be_bytes());
                    args.extend_from_slice(k.as_bytes());
                }
                db.execute(ycsb::YCSB_ALOHA, args).unwrap()
            })
            .collect();
        for h in handles {
            h.wait_processed().unwrap();
        }
    }

    // Calvin.
    let mut builder =
        CalvinCluster::builder(CalvinConfig::new(2).with_batch_duration(Duration::from_millis(3)));
    ycsb::install_calvin(&mut builder);
    let calvin_cluster = builder.start().unwrap();
    ycsb::load_calvin(&calvin_cluster, &cfg);
    {
        let db = calvin_cluster.database();
        let handles: Vec<_> = txns
            .iter()
            .map(|keys| {
                let mut args = Vec::new();
                args.extend_from_slice(&(keys.len() as u32).to_be_bytes());
                for k in keys {
                    args.extend_from_slice(&(k.as_bytes().len() as u32).to_be_bytes());
                    args.extend_from_slice(k.as_bytes());
                }
                db.execute(ycsb::YCSB_CALVIN, args).unwrap()
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
    }

    // Every record must hold the same count in both systems.
    let adb = aloha.database();
    for p in 0..cfg.partitions {
        let keys: Vec<Key> = (0..cfg.keys_per_partition).map(|i| cfg.key(p, i)).collect();
        for chunk in keys.chunks(100) {
            let aloha_vals = adb.read_latest(chunk).unwrap();
            for (key, av) in chunk.iter().zip(aloha_vals) {
                let a = av.as_ref().and_then(Value::as_i64).unwrap_or(0);
                let c = calvin_cluster
                    .read(key)
                    .and_then(|v| v.as_i64())
                    .unwrap_or(0);
                assert_eq!(a, c, "divergence at {key:?}");
            }
        }
    }
    aloha.shutdown();
    calvin_cluster.shutdown();
}

#[test]
fn tpcc_stock_totals_agree_across_systems() {
    // Both systems run the same NewOrder request stream (Calvin with
    // pre-assigned order ids); total units sold (sum of stock YTD) must be
    // equal, and per-district order counts must match.
    let cfg = TpccConfig::by_warehouse(2, 1)
        .with_items(60)
        .with_customers(10);
    let mut rng = SmallRng::seed_from_u64(5);
    let reqs: Vec<tpcc::NewOrderReq> = (0..30)
        .map(|_| tpcc::gen::gen_new_order(&mut rng, &cfg, false))
        .collect();

    // ALOHA.
    let mut builder = Cluster::builder(
        ClusterConfig::new(cfg.partitions).with_epoch_duration(Duration::from_millis(3)),
    );
    tpcc::aloha::install(&mut builder, &cfg);
    let aloha = builder.start().unwrap();
    tpcc::aloha::load(&aloha, &cfg);
    {
        let db = aloha.database();
        let handles: Vec<_> = reqs
            .iter()
            .map(|r| db.execute(tpcc::aloha::NEW_ORDER, r.encode()).unwrap())
            .collect();
        for h in handles {
            h.wait_processed().unwrap();
        }
    }

    // Calvin (same requests, ids pre-assigned in submission order).
    let mut builder = CalvinCluster::builder(
        CalvinConfig::new(cfg.partitions).with_batch_duration(Duration::from_millis(3)),
    );
    tpcc::calvin_impl::install(&mut builder, &cfg);
    let cc = builder.start().unwrap();
    tpcc::calvin_impl::load(&cc, &cfg);
    {
        let db = cc.database();
        let oids = tpcc::OidAssigner::new(&cfg);
        let handles: Vec<_> = reqs
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.o_id = Some(oids.assign(r.w, r.d));
                db.execute(tpcc::calvin_impl::NEW_ORDER, r.encode())
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
    }

    // Compare stock YTD totals.
    let adb = aloha.database();
    let mut aloha_ytd = 0i64;
    let mut calvin_ytd = 0i64;
    for w in 0..cfg.warehouses {
        for i in 0..cfg.items {
            let key = cfg.stock_key(w, i);
            if let Some(v) = adb.read_latest(std::slice::from_ref(&key)).unwrap()[0].as_ref() {
                aloha_ytd += tpcc::StockRow::decode(v).unwrap().ytd;
            }
            if let Some(v) = cc.read(&key) {
                calvin_ytd += tpcc::StockRow::decode(&v).unwrap().ytd;
            }
        }
    }
    let expected: i64 = reqs
        .iter()
        .flat_map(|r| r.lines.iter())
        .map(|l| l.qty as i64)
        .sum();
    assert_eq!(aloha_ytd, expected, "aloha sold-units total");
    assert_eq!(calvin_ytd, expected, "calvin sold-units total");

    // Compare per-district order counts.
    for w in 0..cfg.warehouses {
        for d in 0..cfg.districts {
            let key = cfg.district_noid_key(w, d);
            let a = adb.read_latest(std::slice::from_ref(&key)).unwrap()[0]
                .as_ref()
                .unwrap()
                .as_i64()
                .unwrap();
            let c = cc.read(&key).unwrap().as_i64().unwrap();
            assert_eq!(a, c, "district (w={w}, d={d}) order counters diverged");
        }
    }
    aloha.shutdown();
    cc.shutdown();
}

#[test]
fn payment_totals_agree_across_systems() {
    let cfg = TpccConfig::by_warehouse(2, 1)
        .with_items(20)
        .with_customers(10);
    let mut rng = SmallRng::seed_from_u64(13);
    let reqs: Vec<tpcc::PaymentReq> = (0..25)
        .map(|_| tpcc::gen::gen_payment(&mut rng, &cfg))
        .collect();
    let total: i64 = reqs.iter().map(|r| r.amount_cents).sum();

    let mut builder = Cluster::builder(
        ClusterConfig::new(cfg.partitions).with_epoch_duration(Duration::from_millis(3)),
    );
    tpcc::aloha::install(&mut builder, &cfg);
    let aloha = builder.start().unwrap();
    tpcc::aloha::load(&aloha, &cfg);
    let db = aloha.database();
    let handles: Vec<_> = reqs
        .iter()
        .map(|r| db.execute(tpcc::aloha::PAYMENT, r.encode()).unwrap())
        .collect();
    for h in handles {
        h.wait_processed().unwrap();
    }

    let mut builder = CalvinCluster::builder(
        CalvinConfig::new(cfg.partitions).with_batch_duration(Duration::from_millis(3)),
    );
    tpcc::calvin_impl::install(&mut builder, &cfg);
    let cc = builder.start().unwrap();
    tpcc::calvin_impl::load(&cc, &cfg);
    let cdb = cc.database();
    let handles: Vec<_> = reqs
        .iter()
        .map(|r| cdb.execute(tpcc::calvin_impl::PAYMENT, r.encode()).unwrap())
        .collect();
    for h in handles {
        h.wait().unwrap();
    }

    for cluster_sum in [
        (0..cfg.warehouses)
            .map(|w| {
                db.read_latest(&[cfg.wytd_key(w)]).unwrap()[0]
                    .as_ref()
                    .unwrap()
                    .as_i64()
                    .unwrap()
            })
            .sum::<i64>(),
        (0..cfg.warehouses)
            .map(|w| cc.read(&cfg.wytd_key(w)).unwrap().as_i64().unwrap())
            .sum::<i64>(),
    ] {
        assert_eq!(cluster_sum, total);
    }
    aloha.shutdown();
    cc.shutdown();
}

#[test]
fn driver_reports_are_sane_for_both_systems() {
    // A smoke check that the shared Workload abstraction gives both systems
    // a fair, working driver.
    let cfg = YcsbConfig::with_contention_index(2, 0.1).with_keys_per_partition(200);
    let mut rng = SmallRng::seed_from_u64(3);

    let mut builder =
        Cluster::builder(ClusterConfig::new(2).with_epoch_duration(Duration::from_millis(3)));
    ycsb::install_aloha(&mut builder);
    let aloha = builder.start().unwrap();
    ycsb::load_aloha(&aloha, &cfg);
    let target = ycsb::AlohaYcsb::new(aloha.database(), cfg.clone());
    let h = target.submit(&mut rng).unwrap();
    assert!(target.wait(h).unwrap());
    aloha.shutdown();

    let mut builder =
        CalvinCluster::builder(CalvinConfig::new(2).with_batch_duration(Duration::from_millis(3)));
    ycsb::install_calvin(&mut builder);
    let cc = builder.start().unwrap();
    ycsb::load_calvin(&cc, &cfg);
    let target = ycsb::CalvinYcsb::new(cc.database(), cfg);
    let h = target.submit(&mut rng).unwrap();
    assert!(target.wait(h).unwrap());
    cc.shutdown();
}
