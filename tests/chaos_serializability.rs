//! Chaos serializability tests: both engines must stay serializable while
//! the simulated network drops, duplicates and reorders messages and a
//! partition window isolates one server mid-run.
//!
//! Each run records a commit history (ALOHA: per-transaction
//! [`CommitRecord`]s at the coordinators; Calvin: the merged deterministic
//! schedule), replays it sequentially, and diffs the replayed final state
//! against the cluster's. Every assertion failure message embeds the seed
//! and the one-line `FaultPlan`, so any failing run can be replayed exactly:
//! copy the printed plan knobs into `fault_plan(seed)` and re-run.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use aloha_common::stats::StatsSnapshot;
use aloha_common::tempdir::TempDir;
use aloha_common::{Key, ServerId, Timestamp, Value};
use aloha_db::calvin::{
    fn_program as calvin_program, CalvinCluster, CalvinConfig, CalvinDurability, CalvinPlan,
    ProgramId as CalvinProgramId,
};
use aloha_db::control::ControlConfig;
use aloha_db::core_engine::{
    diff_states, fn_program, replay_history, BatchConfig, Cluster, ClusterConfig, CommitRecord,
    DurableLogSpec, PartialReplicationSpec, ProgramId, ServerMsgCodec, TxnOutcome, TxnPlan,
};
use aloha_functor::{
    ComputeInput, Functor, HandlerId, HandlerOutput, HandlerRegistry, UserFunctor,
};
use aloha_net::{CrashAlign, CrashPlan, ExecConfig, FaultPlan, LinkFault, NetConfig, TcpTransport};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sum of the fault layer's injected-disruption counters, read from the
/// cluster snapshot's `net` subtree (transport counters are no longer
/// reachable as raw getters).
fn injected_faults(snapshot: &StatsSnapshot) -> u64 {
    let net = snapshot.child("net").expect("snapshot has a net subtree");
    ["injected_drops", "injected_dups", "injected_reorders"]
        .into_iter()
        .map(|c| net.counter(c).unwrap_or(0))
        .sum()
}

const AFFINE: ProgramId = ProgramId(1);
const H_AFFINE: HandlerId = HandlerId(1);
const CALVIN_AFFINE: CalvinProgramId = CalvinProgramId(1);

/// Default seeds swept by the chaos tests; override with one printed by a
/// failing run via `CHAOS_SEED=<n> cargo test --test chaos_serializability`.
const DEFAULT_SEEDS: [u64; 3] = [7, 1011, 90210];

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be an integer")],
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

fn key(i: usize) -> Key {
    Key::from_parts(&[b"reg", &(i as u32).to_be_bytes()])
}

/// The fault mix exercised by every chaos run: per-link drops, duplicates
/// and reorders, plus one partition window isolating server 1 mid-run.
fn fault_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_default_link(LinkFault::lossy(0.03, 0.03, 0.05, Duration::from_millis(1)))
        .with_partition(
            Duration::from_millis(25),
            Duration::from_millis(55),
            vec![ServerId(1)],
        )
}

/// The affine handler body: `dst := 2*src + c`, a non-commutative cross-key
/// operation, so any lost, duplicated or reordered effect changes the final
/// state. Shared between the live cluster and the checker's replay registry.
fn affine_handler(input: &ComputeInput<'_>) -> HandlerOutput {
    let src = Key::from(&input.args[0..input.args.len() - 8]);
    let c = i64::from_be_bytes(input.args[input.args.len() - 8..].try_into().unwrap());
    let v = input.reads.i64(&src).unwrap_or(0);
    HandlerOutput::commit(Value::from_i64(v.wrapping_mul(2).wrapping_add(c)))
}

fn encode_affine(dst: &Key, src: &Key, c: i64) -> Vec<u8> {
    let mut args = Vec::new();
    args.extend_from_slice(&(dst.as_bytes().len() as u16).to_be_bytes());
    args.extend_from_slice(dst.as_bytes());
    args.extend_from_slice(src.as_bytes());
    args.extend_from_slice(&c.to_be_bytes());
    args
}

fn decode_affine(args: &[u8]) -> (Key, Key, i64) {
    let dst_len = u16::from_be_bytes(args[0..2].try_into().unwrap()) as usize;
    let dst = Key::from(&args[2..2 + dst_len]);
    let rest = &args[2 + dst_len..];
    let src = Key::from(&rest[..rest.len() - 8]);
    let c = i64::from_be_bytes(rest[rest.len() - 8..].try_into().unwrap());
    (dst, src, c)
}

/// Formats a divergence report so the seed and fault plan always accompany
/// the failure (the reproduction recipe).
fn failure_report(
    engine: &str,
    seed: u64,
    plan: &FaultPlan,
    divergences: &[aloha_db::core_engine::Divergence],
) -> String {
    let mut msg = format!("{engine} diverged from the serial order under seed {seed} with {plan}:");
    for d in divergences {
        msg.push_str(&format!(
            "\n  key {:?}: expected {:?}, cluster holds {:?}",
            d.key,
            d.expected.as_ref().and_then(Value::as_i64),
            d.actual.as_ref().and_then(Value::as_i64)
        ));
    }
    msg
}

// ---------------------------------------------------------------------
// ALOHA-DB under chaos.
// ---------------------------------------------------------------------

fn aloha_chaos_run(
    seed: u64,
    batch: Option<BatchConfig>,
    exec: Option<ExecConfig>,
    control: Option<ControlConfig>,
) -> Result<(), String> {
    aloha_chaos_run_tuned(seed, batch, exec, control, |c| c).map(|_| ())
}

/// [`aloha_chaos_run`] with a hook over the cluster configuration, so chaos
/// variants (e.g. aggressive compaction) reuse the same workload, fault
/// plan and checker. Returns the cluster's end-of-run snapshot so callers
/// can assert on engine internals (e.g. that compaction actually folded).
fn aloha_chaos_run_tuned(
    seed: u64,
    batch: Option<BatchConfig>,
    exec: Option<ExecConfig>,
    control: Option<ControlConfig>,
    tune: impl FnOnce(ClusterConfig) -> ClusterConfig,
) -> Result<StatsSnapshot, String> {
    const KEYS: usize = 12;
    const THREADS: usize = 2;
    const TXNS_PER_THREAD: usize = 80;

    let batched = batch.is_some();
    let plan = fault_plan(seed);
    let mut config = ClusterConfig::new(3)
        .with_epoch_duration(Duration::from_millis(2))
        .with_net(NetConfig::instant().with_fault(plan.clone()))
        .with_rpc_timeout(Duration::from_millis(25))
        .with_history();
    if let Some(batch) = batch {
        config = config.with_batching(batch);
    }
    if let Some(exec) = exec {
        config = config.with_exec(exec);
    }
    if let Some(control) = control {
        config = config.with_control(control);
    }
    let mut builder = Cluster::builder(tune(config));
    builder.register_handler(H_AFFINE, affine_handler);
    builder.register_program(
        AFFINE,
        fn_program(|ctx| {
            let (dst, src, _) = decode_affine(ctx.args);
            let mut handler_args = src.as_bytes().to_vec();
            handler_args.extend_from_slice(&ctx.args[ctx.args.len() - 8..]);
            Ok(TxnPlan::new().write(
                dst,
                Functor::User(UserFunctor::new(H_AFFINE, vec![src], handler_args)),
            ))
        }),
    );
    let cluster = builder.start().unwrap();
    let db = cluster.database();

    // Fire paced concurrent transactions so the run spans the partition
    // window. Individual failures are tolerated: a transaction the
    // coordinator gave up on is recorded as install-aborted and must then
    // leave no trace in the final state — exactly what the checker verifies.
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let db = db.clone();
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64) << 32);
                let mut handles = Vec::new();
                for i in 0..TXNS_PER_THREAD {
                    let dst = key(rng.gen_range(0..KEYS));
                    let src = key(rng.gen_range(0..KEYS));
                    let c: i64 = rng.gen_range(-100..=100);
                    if let Ok(h) = db.execute(AFFINE, encode_affine(&dst, &src, c)) {
                        handles.push(h);
                    }
                    if i % 8 == 0 {
                        std::thread::sleep(Duration::from_millis(3));
                    }
                }
                for h in handles {
                    let _ = h.wait_processed();
                }
            });
        }
    });

    // The run must actually have been disrupted, or the test proves nothing.
    let injected = injected_faults(&cluster.snapshot());
    assert!(
        injected > 0,
        "fault layer injected nothing under seed {seed} with {plan}"
    );

    // In batched runs the traffic must actually have flowed through the
    // batcher — including across the partition heal, where queued envelopes
    // are (re)flushed and retried until the isolated server answers again.
    if batched {
        let snapshot = cluster.snapshot();
        let net = snapshot
            .child("net")
            .expect("cluster snapshot exports a net node");
        assert!(
            net.counter("batch_enqueued").unwrap_or(0) > 0,
            "batched chaos run never enqueued into the batcher under seed {seed}"
        );
        assert!(
            net.counter("batch_batches").unwrap_or(0) > 0,
            "batched chaos run never flushed a batch under seed {seed}"
        );
    }

    // Snapshot the recorded history and read the cluster's final state.
    let final_snapshot = cluster.snapshot();
    let mut records = cluster
        .history()
        .expect("history recording enabled")
        .snapshot();
    // The workload starts from an empty store, but keep the pattern honest:
    // seed rows would enter the replay as one synthetic bottom record.
    records.sort_by_key(|r| r.ts);
    let key_list: Vec<Key> = (0..KEYS).map(key).collect();
    let finals = db
        .read_latest(&key_list)
        .map_err(|e| format!("final read failed under seed {seed} with {plan}: {e}"))?;
    let actual: HashMap<Key, Option<Value>> = key_list.iter().cloned().zip(finals).collect();
    cluster.shutdown();

    let mut handlers = HandlerRegistry::new();
    handlers.register(H_AFFINE, affine_handler);
    let expected = replay_history(&records, &handlers)
        .map_err(|e| format!("replay failed under seed {seed} with {plan}: {e}"))?;
    let divergences = diff_states(&expected, &actual);
    if divergences.is_empty() {
        Ok(final_snapshot)
    } else {
        Err(failure_report("ALOHA", seed, &plan, &divergences))
    }
}

#[test]
fn aloha_serializable_under_drops_dups_reorders_and_partition() {
    for seed in seeds() {
        if let Err(msg) = aloha_chaos_run(seed, None, None, None) {
            panic!("{msg}");
        }
    }
}

/// Seeds for the batched chaos sweep: the default sweep plus one more, so
/// batching is exercised under at least four distinct fault schedules.
const BATCHED_EXTRA_SEEDS: [u64; 1] = [31337];

#[test]
fn aloha_serializable_under_chaos_with_batching() {
    let mut swept = seeds();
    if std::env::var("CHAOS_SEED").is_err() {
        swept.extend(BATCHED_EXTRA_SEEDS);
    }
    for seed in swept {
        if let Err(msg) = aloha_chaos_run(seed, Some(BatchConfig::default()), None, None) {
            panic!("batched run: {msg}");
        }
    }
}

/// Executor pool sizes forced to one on both engines: a single sharded
/// worker serializes every install/abort globally and a single blocking
/// worker forces the spillover path for all concurrent recursion, shaking
/// out any ordering assumption that silently depended on pool parallelism.
/// The nightly sweep runs this on one seed (it subsumes no other test).
#[test]
fn serializable_under_chaos_with_pool_size_one() {
    let tiny = ExecConfig::default()
        .with_sharded_workers(1)
        .with_blocking_workers(1);
    for seed in seeds() {
        if let Err(msg) = aloha_chaos_run(seed, None, Some(tiny.clone()), None) {
            panic!("pool-size-1 run: {msg}");
        }
        if let Err(msg) = calvin_chaos_run(seed, Some(tiny.clone()), None) {
            panic!("pool-size-1 calvin run: {msg}");
        }
    }
}

/// Sums `compacted_records` over every `memory` subtree of a snapshot.
fn compacted_records(node: &StatsSnapshot) -> u64 {
    let own = if node.name == "memory" {
        node.counter("compacted_records").unwrap_or(0)
    } else {
        0
    };
    own + node.children.iter().map(compacted_records).sum::<u64>()
}

/// The most aggressive retention the compactor offers — `keep_versions = 1`,
/// swept every epoch — must not change any observable outcome while the
/// fault layer is disrupting traffic. This is the dangerous configuration:
/// almost every committed version below the watermark folds into the
/// materialized base, so a fold that ate a version some straggler, probe or
/// replayed message still needed would surface here as a divergence.
///
/// Calvin's store is single-version (last-writer-wins puts), so it runs
/// `keep_versions = 1` semantics inherently; its plain chaos run
/// ([`calvin_serializable_under_drops_dups_reorders_and_partition`]) is the
/// parity for this test. The run asserts the sweeper actually folded —
/// otherwise nothing was tested.
#[test]
fn aloha_serializable_under_chaos_with_aggressive_compaction() {
    for seed in seeds() {
        match aloha_chaos_run_tuned(seed, None, None, None, |c| {
            c.with_compaction(Duration::from_millis(2), 1)
        }) {
            Ok(snapshot) => {
                let folded = compacted_records(&snapshot);
                assert!(
                    folded > 0,
                    "compaction-on chaos run folded nothing under seed {seed}"
                );
            }
            Err(msg) => panic!("aggressive-compaction run: {msg}"),
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot reads under chaos: read-only transactions ride the version-chain
// fast path (no epoch wait) while writers, the fault layer and the partition
// window keep disrupting the run. Every observed snapshot must be an
// *externally consistent cut* of the serial order: it equals the replayed
// state after some commit-timestamp prefix of the history, and that prefix
// covers the reader's own latest committed write (read-your-writes).
// ---------------------------------------------------------------------

/// Seeds for the snapshot-read chaos sweep: the default sweep plus the
/// batched extra, so the fast path sees at least four fault schedules.
fn snapshot_seeds() -> Vec<u64> {
    let mut swept = seeds();
    if std::env::var("CHAOS_SEED").is_err() {
        swept.extend(BATCHED_EXTRA_SEEDS);
    }
    swept
}

fn aloha_snapshot_chaos_run(
    seed: u64,
    tune: impl FnOnce(ClusterConfig) -> ClusterConfig,
) -> Result<StatsSnapshot, String> {
    aloha_snapshot_chaos_run_with(seed, None, tune)
}

/// [`aloha_snapshot_chaos_run`] with an optional mid-run kill of a
/// *replicated* backend: the kill promotes the standby inside `kill_server`
/// (no restart call), and the external-consistency checker then judges the
/// snapshot reads taken before, across and after the failover.
fn aloha_snapshot_chaos_run_with(
    seed: u64,
    crash: Option<CrashPlan>,
    tune: impl FnOnce(ClusterConfig) -> ClusterConfig,
) -> Result<StatsSnapshot, String> {
    const KEYS: usize = 12;
    const THREADS: usize = 2;
    const TXNS_PER_THREAD: usize = 60;

    let plan = fault_plan(seed);
    let config = ClusterConfig::new(3)
        .with_epoch_duration(Duration::from_millis(2))
        .with_net(NetConfig::instant().with_fault(plan.clone()))
        .with_rpc_timeout(Duration::from_millis(25))
        .with_history();
    let mut builder = Cluster::builder(tune(config));
    builder.register_handler(H_AFFINE, affine_handler);
    builder.register_program(
        AFFINE,
        fn_program(|ctx| {
            let (dst, src, _) = decode_affine(ctx.args);
            let mut handler_args = src.as_bytes().to_vec();
            handler_args.extend_from_slice(&ctx.args[ctx.args.len() - 8..]);
            Ok(TxnPlan::new().write(
                dst,
                Functor::User(UserFunctor::new(H_AFFINE, vec![src], handler_args)),
            ))
        }),
    );
    let cluster = builder.start().unwrap();
    let db = cluster.database();
    let key_list: Vec<Key> = (0..KEYS).map(key).collect();

    // Every observed snapshot, tagged with the reader's own commit it must
    // cover: (own committed timestamp, full-keyspace values).
    let observed: Mutex<Vec<(Timestamp, Vec<Option<i64>>)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let db = db.clone();
            let key_list = &key_list;
            let observed = &observed;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64) << 32);
                for i in 0..TXNS_PER_THREAD {
                    let dst = key(rng.gen_range(0..KEYS));
                    let src = key(rng.gen_range(0..KEYS));
                    let c: i64 = rng.gen_range(-100..=100);
                    // Failures are tolerated: the partition window can shed
                    // a write or time a read out; the checker only judges
                    // what was actually observed.
                    let Ok(h) = db.execute(AFFINE, encode_affine(&dst, &src, c)) else {
                        continue;
                    };
                    if i % 3 == 0 {
                        // Read-your-writes probe: commit, then snapshot-read
                        // the whole key space through the same session.
                        if matches!(h.wait_processed(), Ok(TxnOutcome::Committed)) {
                            let ts = h.timestamp();
                            if let Ok(values) = db.read_latest(key_list) {
                                let vals =
                                    values.iter().map(|v| v.as_ref().and_then(Value::as_i64));
                                observed.lock().unwrap().push((ts, vals.collect()));
                            }
                        }
                    } else {
                        let _ = h.wait_processed();
                        if i % 8 == 0 {
                            std::thread::sleep(Duration::from_millis(3));
                        }
                    }
                }
            });
        }
        if let Some(crash) = &crash {
            let db = db.clone();
            let cluster = &cluster;
            scope.spawn(move || {
                std::thread::sleep(crash.kill_after);
                align_kill(&db, crash.align);
                cluster
                    .kill_server(crash.target)
                    .unwrap_or_else(|e| panic!("kill failed under {crash}: {e}"));
                // Failover, not restart: the standby was promoted inside
                // `kill_server`, so the slot is live again right here.
                assert_eq!(
                    cluster.availability().failovers(),
                    1,
                    "replicated kill must promote under seed {seed} with {crash}"
                );
            });
        }
    });

    let injected = injected_faults(&cluster.snapshot());
    assert!(
        injected > 0,
        "fault layer injected nothing under seed {seed} with {plan}"
    );

    let final_snapshot = cluster.snapshot();
    let mut records = cluster
        .history()
        .expect("history recording enabled")
        .snapshot();
    records.sort_by_key(|r| r.ts);
    let finals = db
        .read_latest(&key_list)
        .map_err(|e| format!("final read failed under seed {seed} with {plan}: {e}"))?;
    let actual: HashMap<Key, Option<Value>> = key_list.iter().cloned().zip(finals).collect();
    cluster.shutdown();

    // Serializability of the writes, exactly as the plain chaos run checks.
    let mut handlers = HandlerRegistry::new();
    handlers.register(H_AFFINE, affine_handler);
    let expected = replay_history(&records, &handlers)
        .map_err(|e| format!("replay failed under seed {seed} with {plan}: {e}"))?;
    let divergences = diff_states(&expected, &actual);
    if !divergences.is_empty() {
        return Err(failure_report("ALOHA", seed, &plan, &divergences));
    }

    // External consistency of the snapshot reads. The serial order is the
    // commit-timestamp order, so the only legal snapshots are the states
    // after each prefix of the history; enumerate them all.
    let prefixes: Vec<Vec<Option<i64>>> = (0..=records.len())
        .map(|i| {
            let state = replay_history(&records[..i], &handlers)
                .map_err(|e| format!("prefix replay failed under seed {seed}: {e}"))?;
            Ok(key_list
                .iter()
                .map(|k| state.get(k).and_then(Value::as_i64))
                .collect())
        })
        .collect::<Result<_, String>>()?;
    let observed = observed.into_inner().unwrap();
    assert!(
        !observed.is_empty(),
        "no snapshot read survived the chaos under seed {seed} with {plan}"
    );
    for (own_ts, snapshot) in &observed {
        // The reader had already observed its own commit at `own_ts`, so
        // only prefixes covering that commit are externally consistent.
        let idx_own = records.partition_point(|r| r.ts <= *own_ts);
        let matched = (idx_own..=records.len()).any(|i| &prefixes[i] == snapshot);
        if !matched {
            let torn = prefixes.iter().any(|p| p == snapshot);
            return Err(format!(
                "{} under seed {seed} with {plan}: a reader that committed at \
                 {own_ts:?} observed {snapshot:?}",
                if torn {
                    "snapshot read lost the reader's own write"
                } else {
                    "snapshot read observed a torn state (no prefix of the \
                     serial order matches)"
                }
            ));
        }
    }
    Ok(final_snapshot)
}

#[test]
fn serializable_under_chaos_with_snapshot_reads() {
    for seed in snapshot_seeds() {
        if let Err(msg) = aloha_snapshot_chaos_run(seed, |c| c) {
            panic!("snapshot-read run: {msg}");
        }
        if let Err(msg) = calvin_snapshot_chaos_run(seed) {
            panic!("snapshot-read calvin run: {msg}");
        }
    }
}

/// Snapshot reads against the most aggressive retention the compactor
/// offers (`keep_versions = 1`, swept every 2 ms): the folded-retry
/// protocol and the in-flight read registry must keep every observed
/// snapshot exact while almost all settled history folds away under them.
/// The run asserts the sweeper actually folded — otherwise nothing raced.
#[test]
fn aloha_snapshot_reads_consistent_under_aggressive_compaction() {
    for seed in snapshot_seeds() {
        match aloha_snapshot_chaos_run(seed, |c| c.with_compaction(Duration::from_millis(2), 1)) {
            Ok(snapshot) => {
                let folded = compacted_records(&snapshot);
                assert!(
                    folded > 0,
                    "compaction-on snapshot-read run folded nothing under seed {seed}"
                );
            }
            Err(msg) => panic!("aggressive-compaction snapshot-read run: {msg}"),
        }
    }
}

/// Calvin parity for the snapshot-read chaos sweep. Calvin's store is
/// single-version, so its `Snapshot` read mode is documented best-effort:
/// a multi-partition transaction mid-write-back may be observed half
/// applied. The checker therefore validates a weaker, still falsifiable
/// property: every observed value for a key must be one the deterministic
/// schedule actually committed to that key (or the initial absence) — a
/// phantom value would mean reads invent or corrupt data.
fn calvin_snapshot_chaos_run(seed: u64) -> Result<(), String> {
    const KEYS: usize = 12;
    const THREADS: usize = 2;
    const TXNS_PER_THREAD: usize = 30;

    let plan = fault_plan(seed);
    let calvin_config = CalvinConfig::new(3)
        .with_batch_duration(Duration::from_millis(5))
        .with_net(NetConfig::instant().with_fault(plan.clone()))
        .with_history();
    let mut builder = CalvinCluster::builder(calvin_config);
    builder.register_program(
        CALVIN_AFFINE,
        calvin_program(
            |args| {
                let (dst, src, _) = decode_affine(args);
                CalvinPlan {
                    read_set: vec![src],
                    write_set: vec![dst],
                }
            },
            |args, reads, writes| {
                let (dst, src, c) = decode_affine(args);
                let v = reads
                    .get(&src)
                    .and_then(|v| v.as_ref())
                    .and_then(Value::as_i64)
                    .unwrap_or(0);
                writes.push((dst, Value::from_i64(v.wrapping_mul(2).wrapping_add(c))));
            },
        ),
    );
    let cluster = builder.start().unwrap();
    let db = cluster.database();
    let key_list: Vec<Key> = (0..KEYS).map(key).collect();
    let observed: Mutex<Vec<Vec<Option<i64>>>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let db = db.clone();
            let key_list = &key_list;
            let observed = &observed;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64) << 32);
                for i in 0..TXNS_PER_THREAD {
                    let dst = key(rng.gen_range(0..KEYS));
                    let src = key(rng.gen_range(0..KEYS));
                    let c: i64 = rng.gen_range(-100..=100);
                    let h = db
                        .execute(CALVIN_AFFINE, encode_affine(&dst, &src, c))
                        .unwrap();
                    if i % 3 == 0 {
                        h.wait()
                            .expect("calvin transaction must complete despite faults");
                        if let Ok(values) = db.read_latest(key_list) {
                            let vals = values.iter().map(|v| v.as_ref().and_then(Value::as_i64));
                            observed.lock().unwrap().push(vals.collect());
                        }
                    } else {
                        h.wait()
                            .expect("calvin transaction must complete despite faults");
                        if i % 8 == 0 {
                            std::thread::sleep(Duration::from_millis(3));
                        }
                    }
                }
            });
        }
    });

    let injected = injected_faults(&cluster.snapshot());
    assert!(
        injected > 0,
        "fault layer injected nothing under seed {seed} with {plan}"
    );

    let schedule = cluster.history().expect("history recording enabled");
    cluster.shutdown();

    // Per-key committed value histories from the deterministic schedule.
    let mut model: HashMap<Key, i64> = HashMap::new();
    let mut legal: HashMap<Key, Vec<Option<i64>>> = HashMap::new();
    for k in &key_list {
        legal.insert(k.clone(), vec![None]);
    }
    for txn in &schedule {
        let (dst, src, c) = decode_affine(&txn.args);
        let v = model.get(&src).copied().unwrap_or(0);
        let next = v.wrapping_mul(2).wrapping_add(c);
        model.insert(dst.clone(), next);
        legal.entry(dst).or_default().push(Some(next));
    }
    let observed = observed.into_inner().unwrap();
    assert!(
        !observed.is_empty(),
        "no calvin read survived the chaos under seed {seed} with {plan}"
    );
    for snapshot in &observed {
        for (k, got) in key_list.iter().zip(snapshot) {
            if !legal[k].contains(got) {
                return Err(format!(
                    "Calvin read a phantom value under seed {seed} with {plan}: \
                     key {k:?} observed {got:?}, never committed"
                ));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Calvin under chaos.
// ---------------------------------------------------------------------

fn calvin_chaos_run(
    seed: u64,
    exec: Option<ExecConfig>,
    control: Option<ControlConfig>,
) -> Result<(), String> {
    const KEYS: usize = 12;
    const THREADS: usize = 2;
    const TXNS_PER_THREAD: usize = 40;

    let plan = fault_plan(seed);
    let mut calvin_config = CalvinConfig::new(3)
        .with_batch_duration(Duration::from_millis(5))
        .with_net(NetConfig::instant().with_fault(plan.clone()))
        .with_history();
    if let Some(exec) = exec {
        calvin_config = calvin_config.with_exec(exec);
    }
    if let Some(control) = control {
        calvin_config = calvin_config.with_control(control);
    }
    let mut builder = CalvinCluster::builder(calvin_config);
    builder.register_program(
        CALVIN_AFFINE,
        calvin_program(
            |args| {
                let (dst, src, _) = decode_affine(args);
                CalvinPlan {
                    read_set: vec![src],
                    write_set: vec![dst],
                }
            },
            |args, reads, writes| {
                let (dst, src, c) = decode_affine(args);
                let v = reads
                    .get(&src)
                    .and_then(|v| v.as_ref())
                    .and_then(Value::as_i64)
                    .unwrap_or(0);
                writes.push((dst, Value::from_i64(v.wrapping_mul(2).wrapping_add(c))));
            },
        ),
    );
    let cluster = builder.start().unwrap();
    let db = cluster.database();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let db = db.clone();
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64) << 32);
                let mut handles = Vec::new();
                for i in 0..TXNS_PER_THREAD {
                    let dst = key(rng.gen_range(0..KEYS));
                    let src = key(rng.gen_range(0..KEYS));
                    let c: i64 = rng.gen_range(-100..=100);
                    handles.push(
                        db.execute(CALVIN_AFFINE, encode_affine(&dst, &src, c))
                            .unwrap(),
                    );
                    if i % 8 == 0 {
                        std::thread::sleep(Duration::from_millis(3));
                    }
                }
                for h in handles {
                    h.wait()
                        .expect("calvin transaction must complete despite faults");
                }
            });
        }
    });

    // The run must actually have been disrupted, or the test proves nothing.
    let injected = injected_faults(&cluster.snapshot());
    assert!(
        injected > 0,
        "fault layer injected nothing under seed {seed} with {plan}"
    );

    // All submissions completed on every participant, so the stores are
    // quiescent. Replay the recorded deterministic order.
    let schedule = cluster.history().expect("history recording enabled");
    let mut model: HashMap<Key, i64> = HashMap::new();
    for txn in &schedule {
        let (dst, src, c) = decode_affine(&txn.args);
        let v = model.get(&src).copied().unwrap_or(0);
        model.insert(dst, v.wrapping_mul(2).wrapping_add(c));
    }
    let expected: HashMap<Key, Value> = model
        .into_iter()
        .map(|(k, v)| (k, Value::from_i64(v)))
        .collect();
    let actual: HashMap<Key, Option<Value>> = (0..KEYS)
        .map(key)
        .map(|k| (k.clone(), cluster.read(&k)))
        .collect();
    let total = schedule.len();
    cluster.shutdown();

    if total != THREADS * TXNS_PER_THREAD {
        return Err(format!(
            "Calvin schedule lost transactions under seed {seed} with {plan}: \
             recorded {total}, submitted {}",
            THREADS * TXNS_PER_THREAD
        ));
    }
    let divergences = diff_states(&expected, &actual);
    if divergences.is_empty() {
        Ok(())
    } else {
        Err(failure_report("Calvin", seed, &plan, &divergences))
    }
}

#[test]
fn calvin_serializable_under_drops_dups_reorders_and_partition() {
    for seed in seeds() {
        if let Err(msg) = calvin_chaos_run(seed, None, None) {
            panic!("{msg}");
        }
    }
}

// ---------------------------------------------------------------------
// Chaos with the adaptive pacer steering epoch/batch durations live: the
// controller must never trade serializability for throughput, on either
// engine, while the fault layer keeps its pressure signals jumping. The
// gate window (256) exceeds the peak in-flight count, so nothing sheds and
// every submitted transaction still enters the history.
// ---------------------------------------------------------------------

#[test]
fn serializable_under_chaos_with_adaptive_pacer() {
    for seed in seeds() {
        let aloha_control = ControlConfig::adaptive(Duration::from_millis(2));
        if let Err(msg) = aloha_chaos_run(seed, None, None, Some(aloha_control)) {
            panic!("adaptive-pacer run: {msg}");
        }
        let calvin_control = ControlConfig::adaptive(Duration::from_millis(5));
        if let Err(msg) = calvin_chaos_run(seed, None, Some(calvin_control)) {
            panic!("adaptive-pacer calvin run: {msg}");
        }
    }
}

// ---------------------------------------------------------------------
// Crash chaos: a seeded CrashPlan kills one durable backend mid-run and
// restarts it from its WAL while client traffic and the lossy fault layer
// keep running. The run then goes through the same serializability checker
// as every other chaos run — zero divergences allowed — and every failure
// message embeds both the FaultPlan and the CrashPlan, so a failing
// schedule replays exactly.
// ---------------------------------------------------------------------

const EPOCH: Duration = Duration::from_millis(2);

/// Waits for the next settled-epoch transition, then (for mid-epoch kills)
/// half an epoch more, so the kill lands where the plan says it does.
fn align_kill(db: &aloha_db::core_engine::Database, align: CrashAlign) {
    let bound = db.visible_bound();
    let deadline = Instant::now() + Duration::from_millis(100);
    while db.visible_bound() == bound && Instant::now() < deadline {
        std::thread::sleep(Duration::from_micros(200));
    }
    if align == CrashAlign::MidEpoch {
        std::thread::sleep(EPOCH / 2);
    }
}

fn aloha_crash_chaos_run(seed: u64, align: CrashAlign) -> Result<(), String> {
    aloha_crash_chaos_run_tuned(seed, align, |c, _| c)
}

/// [`aloha_crash_chaos_run`] with a hook over the cluster configuration
/// (handed the seeded crash plan, so a tune can key off the victim), for
/// variants like "partial replication enabled but the victim is not in the
/// replica set" — where kill-and-restart-from-WAL must keep working exactly
/// as it does without replication.
fn aloha_crash_chaos_run_tuned(
    seed: u64,
    align: CrashAlign,
    tune: impl FnOnce(ClusterConfig, &CrashPlan) -> ClusterConfig,
) -> Result<(), String> {
    const KEYS: usize = 12;
    const THREADS: usize = 2;
    const TXNS_PER_THREAD: usize = 80;

    let plan = FaultPlan::new(seed).with_default_link(LinkFault::lossy(
        0.03,
        0.03,
        0.05,
        Duration::from_millis(1),
    ));
    let crash = CrashPlan::seeded(
        seed,
        3,
        Duration::from_millis(200),
        Duration::from_millis(40),
    )
    .with_align(align);
    let dir = TempDir::new("chaos-crash");
    let config = ClusterConfig::new(3)
        .with_epoch_duration(EPOCH)
        .with_net(NetConfig::instant().with_fault(plan.clone()))
        .with_rpc_timeout(Duration::from_millis(25))
        .with_durable_log(
            // Background checkpoints make the eventual recovery exercise the
            // checkpoint-plus-suffix path, not just a full log replay.
            DurableLogSpec::new(dir.path()).with_checkpoint_interval(Duration::from_millis(20)),
        )
        .with_history();
    let mut builder = Cluster::builder(tune(config, &crash));
    builder.register_handler(H_AFFINE, affine_handler);
    builder.register_program(
        AFFINE,
        fn_program(|ctx| {
            let (dst, src, _) = decode_affine(ctx.args);
            let mut handler_args = src.as_bytes().to_vec();
            handler_args.extend_from_slice(&ctx.args[ctx.args.len() - 8..]);
            Ok(TxnPlan::new().write(
                dst,
                Functor::User(UserFunctor::new(H_AFFINE, vec![src], handler_args)),
            ))
        }),
    );
    let cluster = builder.start().unwrap();
    let db = cluster.database();
    let report = Mutex::new(None);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let db = db.clone();
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64) << 32);
                let mut handles = Vec::new();
                for i in 0..TXNS_PER_THREAD {
                    let dst = key(rng.gen_range(0..KEYS));
                    let src = key(rng.gen_range(0..KEYS));
                    let c: i64 = rng.gen_range(-100..=100);
                    // Failures are tolerated throughout: during the dead
                    // window a transaction may be shed or give up on its
                    // install; the checker verifies such transactions leave
                    // no trace.
                    if let Ok(h) = db.execute(AFFINE, encode_affine(&dst, &src, c)) {
                        handles.push(h);
                    }
                    if i % 8 == 0 {
                        std::thread::sleep(Duration::from_millis(3));
                    }
                }
                for h in handles {
                    let _ = h.wait_processed();
                }
            });
        }
        let db = db.clone();
        let cluster = &cluster;
        let crash = &crash;
        let report = &report;
        scope.spawn(move || {
            std::thread::sleep(crash.kill_after);
            align_kill(&db, crash.align);
            cluster
                .kill_server(crash.target)
                .unwrap_or_else(|e| panic!("kill failed under {crash}: {e}"));
            std::thread::sleep(crash.restart_after);
            let r = cluster
                .restart_server(crash.target)
                .unwrap_or_else(|e| panic!("restart failed under {crash}: {e}"));
            *report.lock().unwrap() = Some(r);
        });
    });

    let injected = injected_faults(&cluster.snapshot());
    assert!(
        injected > 0,
        "fault layer injected nothing under seed {seed} with {plan}"
    );
    // Whatever the replication config, this run recovered through the WAL:
    // exactly one restart, never a promotion.
    assert_eq!(
        cluster.availability().restarts(),
        1,
        "crash run must recover via restart-from-WAL under seed {seed} with {crash}"
    );
    assert_eq!(
        cluster.availability().failovers(),
        0,
        "crash run must not promote a standby under seed {seed} with {crash}"
    );
    let report = report
        .lock()
        .unwrap()
        .take()
        .expect("crash thread must have restarted the victim");
    if report.checkpoint == Timestamp::ZERO && report.replayed == 0 {
        return Err(format!(
            "recovery restored nothing under seed {seed} with {crash} — \
             the kill landed before any durable state existed"
        ));
    }

    let mut records = cluster
        .history()
        .expect("history recording enabled")
        .snapshot();
    records.sort_by_key(|r| r.ts);
    let key_list: Vec<Key> = (0..KEYS).map(key).collect();
    let finals = db
        .read_latest(&key_list)
        .map_err(|e| format!("final read failed under seed {seed} with {crash}: {e}"))?;
    let actual: HashMap<Key, Option<Value>> = key_list.iter().cloned().zip(finals).collect();
    cluster.shutdown();

    let mut handlers = HandlerRegistry::new();
    handlers.register(H_AFFINE, affine_handler);
    let expected = replay_history(&records, &handlers)
        .map_err(|e| format!("replay failed under seed {seed} with {crash}: {e}"))?;
    let divergences = diff_states(&expected, &actual);
    if divergences.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{}\n  crash schedule: {crash}",
            failure_report("ALOHA", seed, &plan, &divergences)
        ))
    }
}

/// Retries the one wall-clock-dependent precondition failure: on a starved
/// CPU the seeded kill can land before the victim has any durable state,
/// which voids the scenario (there is nothing to recover) without saying
/// anything about correctness. Divergences and every other error fail on
/// the first attempt.
fn retry_restored_nothing(mut run: impl FnMut() -> Result<(), String>) -> Result<(), String> {
    let mut last = String::new();
    for _ in 0..3 {
        match run() {
            Ok(()) => return Ok(()),
            Err(msg) if msg.contains("restored nothing") => last = msg,
            Err(msg) => return Err(msg),
        }
    }
    Err(last)
}

#[test]
fn aloha_serializable_across_epoch_boundary_kill_and_restart() {
    for seed in seeds() {
        if let Err(msg) =
            retry_restored_nothing(|| aloha_crash_chaos_run(seed, CrashAlign::EpochBoundary))
        {
            panic!("epoch-boundary crash run: {msg}");
        }
    }
}

#[test]
fn aloha_serializable_across_mid_epoch_kill_and_restart() {
    for seed in seeds() {
        if let Err(msg) =
            retry_restored_nothing(|| aloha_crash_chaos_run(seed, CrashAlign::MidEpoch))
        {
            panic!("mid-epoch crash run: {msg}");
        }
    }
}

/// Calvin's crash model is quiescent (see `CalvinCluster::kill_server`), so
/// its chaos run kills between phases: lossy faults stay active throughout,
/// the seeded plan picks the victim, and the merged deterministic schedule
/// across both phases must still replay to the cluster's final state.
fn calvin_crash_chaos_run(seed: u64) -> Result<(), String> {
    const KEYS: usize = 12;
    const TXNS_PER_PHASE: usize = 40;

    let plan = FaultPlan::new(seed).with_default_link(LinkFault::lossy(
        0.03,
        0.03,
        0.05,
        Duration::from_millis(1),
    ));
    let crash = CrashPlan::seeded(
        seed,
        3,
        Duration::from_millis(200),
        Duration::from_millis(10),
    );
    let dir = TempDir::new("chaos-calvin-crash");
    let calvin_config = CalvinConfig::new(3)
        .with_batch_duration(Duration::from_millis(5))
        .with_net(NetConfig::instant().with_fault(plan.clone()))
        .with_durable_log(CalvinDurability::new(dir.path()))
        .with_history();
    let mut builder = CalvinCluster::builder(calvin_config);
    builder.register_program(
        CALVIN_AFFINE,
        calvin_program(
            |args| {
                let (dst, src, _) = decode_affine(args);
                CalvinPlan {
                    read_set: vec![src],
                    write_set: vec![dst],
                }
            },
            |args, reads, writes| {
                let (dst, src, c) = decode_affine(args);
                let v = reads
                    .get(&src)
                    .and_then(|v| v.as_ref())
                    .and_then(Value::as_i64)
                    .unwrap_or(0);
                writes.push((dst, Value::from_i64(v.wrapping_mul(2).wrapping_add(c))));
            },
        ),
    );
    let cluster = builder.start().unwrap();
    let db = cluster.database();

    let run_phase = |phase: u64| {
        let mut rng = SmallRng::seed_from_u64(seed ^ (phase << 32));
        let mut handles = Vec::new();
        for _ in 0..TXNS_PER_PHASE {
            let dst = key(rng.gen_range(0..KEYS));
            let src = key(rng.gen_range(0..KEYS));
            let c: i64 = rng.gen_range(-100..=100);
            handles.push(
                db.execute(CALVIN_AFFINE, encode_affine(&dst, &src, c))
                    .unwrap(),
            );
        }
        for h in handles {
            h.wait()
                .expect("calvin transaction must complete despite faults");
        }
    };

    run_phase(1);
    // Quiescent kill: every phase-1 submission has fully executed.
    cluster
        .kill_server(crash.target)
        .unwrap_or_else(|e| panic!("kill failed under {crash}: {e}"));
    std::thread::sleep(crash.restart_after);
    let report = cluster
        .restart_server(crash.target)
        .unwrap_or_else(|e| panic!("restart failed under {crash}: {e}"));
    if report.replayed_puts == 0 && report.resume_round == 0 {
        return Err(format!(
            "calvin recovery restored nothing under seed {seed} with {crash}"
        ));
    }
    run_phase(2);

    let injected = injected_faults(&cluster.snapshot());
    assert!(
        injected > 0,
        "fault layer injected nothing under seed {seed} with {plan}"
    );

    let schedule = cluster.history().expect("history recording enabled");
    let mut model: HashMap<Key, i64> = HashMap::new();
    for txn in &schedule {
        let (dst, src, c) = decode_affine(&txn.args);
        let v = model.get(&src).copied().unwrap_or(0);
        model.insert(dst, v.wrapping_mul(2).wrapping_add(c));
    }
    let expected: HashMap<Key, Value> = model
        .into_iter()
        .map(|(k, v)| (k, Value::from_i64(v)))
        .collect();
    let actual: HashMap<Key, Option<Value>> = (0..KEYS)
        .map(key)
        .map(|k| (k.clone(), cluster.read(&k)))
        .collect();
    let total = schedule.len();
    cluster.shutdown();

    if total != 2 * TXNS_PER_PHASE {
        return Err(format!(
            "Calvin schedule lost transactions under seed {seed} with {plan} and {crash}: \
             recorded {total}, submitted {}",
            2 * TXNS_PER_PHASE
        ));
    }
    let divergences = diff_states(&expected, &actual);
    if divergences.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{}\n  crash schedule: {crash}",
            failure_report("Calvin", seed, &plan, &divergences)
        ))
    }
}

#[test]
fn calvin_serializable_across_quiescent_kill_and_restart() {
    for seed in seeds() {
        if let Err(msg) = retry_restored_nothing(|| calvin_crash_chaos_run(seed)) {
            panic!("calvin crash run: {msg}");
        }
    }
}

// ---------------------------------------------------------------------
// Failover chaos: the victim's partition is pinned into the replica set, so
// its standby receives every epoch's WAL batches while the fault layer runs.
// The seeded kill then promotes the standby at the next epoch boundary
// *inside* `kill_server` — no restart call anywhere — and the run must pass
// the same zero-divergence serializability checker as every other chaos run,
// with the availability/replication subtrees proving the failover happened.
// ---------------------------------------------------------------------

fn aloha_failover_chaos_run(seed: u64, align: CrashAlign, tcp: bool) -> Result<(), String> {
    const KEYS: usize = 12;
    const THREADS: usize = 2;
    const TXNS_PER_THREAD: usize = 80;

    let plan = FaultPlan::new(seed).with_default_link(LinkFault::lossy(
        0.03,
        0.03,
        0.05,
        Duration::from_millis(1),
    ));
    let crash = CrashPlan::seeded(
        seed,
        3,
        Duration::from_millis(200),
        Duration::from_millis(40),
    )
    .with_align(align);
    // The victim is pinned into the replica set: the kill must fail over to
    // its standby instead of leaving the slot down. No durable log is
    // configured on purpose — partial replication auto-enables the in-memory
    // WAL it ships from, and promotion never replays a log.
    let mut config = ClusterConfig::new(3)
        .with_epoch_duration(EPOCH)
        .with_rpc_timeout(Duration::from_millis(25))
        .with_history()
        .with_partial_replication_spec(
            PartialReplicationSpec::new(1).with_pinned(vec![crash.target.0]),
        );
    config = if tcp {
        // A real TcpTransport on a loopback socket hosts the whole cluster,
        // exercising the kill/deregister/re-register lifecycle and the ship
        // flow on the TCP transport object. The fault layer belongs to the
        // simulated bus and does not apply here.
        let transport = TcpTransport::bind("127.0.0.1:0", Arc::new(ServerMsgCodec))
            .expect("bind loopback transport");
        config.with_transport(Arc::new(transport))
    } else {
        config.with_net(NetConfig::instant().with_fault(plan.clone()))
    };
    let mut builder = Cluster::builder(config);
    builder.register_handler(H_AFFINE, affine_handler);
    builder.register_program(
        AFFINE,
        fn_program(|ctx| {
            let (dst, src, _) = decode_affine(ctx.args);
            let mut handler_args = src.as_bytes().to_vec();
            handler_args.extend_from_slice(&ctx.args[ctx.args.len() - 8..]);
            Ok(TxnPlan::new().write(
                dst,
                Functor::User(UserFunctor::new(H_AFFINE, vec![src], handler_args)),
            ))
        }),
    );
    let cluster = builder.start().unwrap();
    let db = cluster.database();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let db = db.clone();
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64) << 32);
                let mut handles = Vec::new();
                for i in 0..TXNS_PER_THREAD {
                    let dst = key(rng.gen_range(0..KEYS));
                    let src = key(rng.gen_range(0..KEYS));
                    let c: i64 = rng.gen_range(-100..=100);
                    if let Ok(h) = db.execute(AFFINE, encode_affine(&dst, &src, c)) {
                        handles.push(h);
                    }
                    if i % 8 == 0 {
                        std::thread::sleep(Duration::from_millis(3));
                    }
                }
                for h in handles {
                    let _ = h.wait_processed();
                }
            });
        }
        let db = db.clone();
        let cluster = &cluster;
        let crash = &crash;
        scope.spawn(move || {
            std::thread::sleep(crash.kill_after);
            align_kill(&db, crash.align);
            cluster
                .kill_server(crash.target)
                .unwrap_or_else(|e| panic!("kill failed under {crash}: {e}"));
            // The tentpole claim: when `kill_server` returns, the slot is
            // already serving again through the promoted standby. A restart
            // now is an argument error because the partition is not down.
            assert_eq!(
                cluster.availability().failovers(),
                1,
                "replicated kill must promote the standby under seed {seed} with {crash}"
            );
            assert!(
                matches!(
                    cluster.restart_server(crash.target),
                    Err(aloha_common::Error::Config(_))
                ),
                "the promoted slot must refuse a restart under seed {seed} with {crash}"
            );
        });
    });

    if !tcp {
        let injected = injected_faults(&cluster.snapshot());
        assert!(
            injected > 0,
            "fault layer injected nothing under seed {seed} with {plan}"
        );
    }

    // Liveness through the promoted server: a write landing on the victim's
    // partition must commit (retries shield the lossy link, not the
    // promotion — the slot never goes down again).
    let dst = (0..KEYS)
        .map(key)
        .find(|k| k.partition(3).0 == crash.target.0)
        .expect("some key maps to the victim partition");
    let committed = (0..20).any(|_| {
        db.execute(AFFINE, encode_affine(&dst, &key(0), 1))
            .is_ok_and(|h| matches!(h.wait_processed(), Ok(TxnOutcome::Committed)))
    });
    if !committed {
        return Err(format!(
            "no post-failover commit landed on the promoted partition under seed {seed} with {crash}"
        ));
    }

    let snapshot = cluster.snapshot();
    let replication = snapshot
        .child("replication")
        .expect("replication stats subtree");
    assert_eq!(
        replication.counter("promotions"),
        Some(1),
        "exactly one promotion under seed {seed} with {crash}"
    );
    let availability = snapshot
        .child("availability")
        .expect("availability stats subtree");
    assert_eq!(availability.counter("failovers"), Some(1));
    assert_eq!(availability.counter("restarts"), Some(0));
    let victim = availability
        .child(&format!("p{}", crash.target.0))
        .expect("victim partition availability child");
    assert!(
        victim.counter("downtime_micros").unwrap_or(0) > 0,
        "the failover window must be accounted under seed {seed} with {crash}"
    );
    assert!(
        snapshot.child("hotness").is_some(),
        "hotness subtree must be exported"
    );
    if !tcp {
        // The dead window plus the lossy links force the epoch manager to
        // retransmit revokes; the promoted standby (a fresh incarnation,
        // like a restart) answers them, which is the §III-C re-join path.
        let em = snapshot
            .child("epoch_manager")
            .expect("epoch_manager stats subtree");
        assert!(
            em.counter("revoke_resends").unwrap_or(0) > 0,
            "lossy links and the failover window must force revoke retransmissions \
             under seed {seed} with {plan}"
        );
    }

    let mut records = cluster
        .history()
        .expect("history recording enabled")
        .snapshot();
    records.sort_by_key(|r| r.ts);
    let key_list: Vec<Key> = (0..KEYS).map(key).collect();
    let finals = db
        .read_latest(&key_list)
        .map_err(|e| format!("final read failed under seed {seed} with {crash}: {e}"))?;
    let actual: HashMap<Key, Option<Value>> = key_list.iter().cloned().zip(finals).collect();
    cluster.shutdown();

    let mut handlers = HandlerRegistry::new();
    handlers.register(H_AFFINE, affine_handler);
    let expected = replay_history(&records, &handlers)
        .map_err(|e| format!("replay failed under seed {seed} with {crash}: {e}"))?;
    let divergences = diff_states(&expected, &actual);
    if divergences.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{}\n  crash schedule: {crash}",
            failure_report("ALOHA", seed, &plan, &divergences)
        ))
    }
}

#[test]
fn aloha_failover_replicated_kill_at_epoch_boundary() {
    for seed in seeds() {
        if let Err(msg) = aloha_failover_chaos_run(seed, CrashAlign::EpochBoundary, false) {
            panic!("epoch-boundary failover run: {msg}");
        }
    }
}

#[test]
fn aloha_failover_replicated_kill_mid_epoch() {
    for seed in seeds() {
        if let Err(msg) = aloha_failover_chaos_run(seed, CrashAlign::MidEpoch, false) {
            panic!("mid-epoch failover run: {msg}");
        }
    }
}

#[test]
fn aloha_failover_over_tcp_transport() {
    for seed in seeds() {
        if let Err(msg) = aloha_failover_chaos_run(seed, CrashAlign::EpochBoundary, true) {
            panic!("tcp failover run: {msg}");
        }
    }
}

/// Partial replication enabled, but the seeded victim holds no standby (the
/// budget is pinned elsewhere): the kill leaves the slot down and the crash
/// run's restart-from-WAL path — the documented fallback for un-replicated
/// partitions — must behave exactly as it does without replication,
/// including the one-restart/zero-failover accounting asserted inside
/// [`aloha_crash_chaos_run_tuned`].
#[test]
fn aloha_unreplicated_kill_falls_back_to_wal_restart() {
    for seed in seeds() {
        if let Err(msg) = retry_restored_nothing(|| {
            aloha_crash_chaos_run_tuned(seed, CrashAlign::MidEpoch, |config, crash| {
                let pinned = (crash.target.0 + 1) % 3;
                config.with_partial_replication_spec(
                    PartialReplicationSpec::new(1).with_pinned(vec![pinned]),
                )
            })
        }) {
            panic!("unreplicated-victim crash run: {msg}");
        }
    }
}

/// External consistency across a failover: read-your-writes snapshot probes
/// run before, across and after a replicated kill, and every observed
/// snapshot must equal a serial-prefix state covering the reader's own
/// commit — the promoted standby cannot serve a state that forgets or tears
/// a committed prefix.
#[test]
fn aloha_snapshot_reads_externally_consistent_across_failover() {
    for seed in seeds() {
        let crash = CrashPlan::seeded(seed, 3, Duration::from_millis(100), Duration::ZERO)
            .with_align(CrashAlign::EpochBoundary);
        let pinned = crash.target.0;
        if let Err(msg) = aloha_snapshot_chaos_run_with(seed, Some(crash), |c| {
            c.with_partial_replication_spec(
                PartialReplicationSpec::new(1).with_pinned(vec![pinned]),
            )
        }) {
            panic!("failover snapshot run: {msg}");
        }
    }
}

// ---------------------------------------------------------------------
// The failure path itself: a forced divergence must print the seed and the
// full fault plan, or a real failure could not be reproduced.
// ---------------------------------------------------------------------

#[test]
fn forced_failure_prints_seed_and_fault_plan() {
    let plan = fault_plan(424242);
    let divergences = vec![aloha_db::core_engine::Divergence {
        key: key(3),
        expected: Some(Value::from_i64(7)),
        actual: Some(Value::from_i64(9)),
    }];
    let msg = failure_report("ALOHA", 424242, &plan, &divergences);
    assert!(
        msg.contains("seed=424242"),
        "report must name the seed: {msg}"
    );
    assert!(
        msg.contains("FaultPlan{"),
        "report must embed the fault plan: {msg}"
    );
    assert!(
        msg.contains("partition["),
        "report must list the partition window: {msg}"
    );
    assert!(
        msg.contains("expected Some(7)"),
        "report must show the divergence: {msg}"
    );

    // The checker flags a genuinely corrupted history the same way end to
    // end: replay a lost-increment history and require a non-empty diff.
    let handlers = HandlerRegistry::new();
    let records = vec![
        CommitRecord {
            ts: Timestamp::from_parts(10, ServerId(0), 0),
            writes: vec![(key(0), Functor::value_i64(1))],
            reads: Vec::new(),
            aborted_at_install: false,
        },
        CommitRecord {
            ts: Timestamp::from_parts(20, ServerId(0), 0),
            writes: vec![(key(0), Functor::add(41))],
            reads: Vec::new(),
            aborted_at_install: false,
        },
    ];
    let expected = replay_history(&records, &handlers).unwrap();
    let actual: HashMap<Key, Option<Value>> =
        [(key(0), Some(Value::from_i64(1)))].into_iter().collect();
    let divergences = diff_states(&expected, &actual);
    assert_eq!(divergences.len(), 1, "lost increment must be flagged");
}
