//! Integration tests for the closed-loop control plane: adaptive epoch
//! pacing plus FE admission control, wired through both engines.
//!
//! Covers (a) adaptive ALOHA clusters committing work and exporting a sane
//! `control` stats subtree that round-trips through JSON, (b) the admission
//! gate shedding with a retryable `Overloaded` error once its window is
//! full and recovering when permits release, (c) the Calvin equivalent, and
//! (d) `Fixed` control mode behaving like a plain fixed-duration cluster.

use std::time::Duration;

use aloha_common::{Error, Key, StatsSnapshot, Value};
use aloha_db::control::{ControlConfig, GateConfig};
use aloha_db::core_engine::{fn_program, Cluster, ClusterConfig, ProgramId, TxnPlan};
use aloha_functor::Functor;
use aloha_workloads::driver::{run_windowed, DriverConfig};
use aloha_workloads::ycsb::{self, YcsbConfig};
use calvin::{CalvinCluster, CalvinConfig};

const INCR: ProgramId = ProgramId(1);

fn driver() -> DriverConfig {
    DriverConfig {
        threads: 4,
        window: 8,
        duration: Duration::from_millis(600),
        warmup: Duration::from_millis(100),
        seed: 0xC0117801,
        pacing: None,
    }
}

/// A tiny single-key increment cluster with the given control config.
fn incr_cluster(control: ControlConfig) -> Cluster {
    let mut builder = Cluster::builder(ClusterConfig::new(1).with_control(control));
    builder.register_program(
        INCR,
        fn_program(|_| Ok(TxnPlan::new().write(Key::from("k"), Functor::add(1)))),
    );
    let cluster = builder.start().unwrap();
    cluster.load(Key::from("k"), Value::from_i64(0));
    cluster
}

#[test]
fn aloha_adaptive_cluster_commits_and_exports_control_subtree() {
    let cfg = YcsbConfig::with_contention_index(2, 0.01).with_keys_per_partition(500);
    let control = ControlConfig::adaptive(Duration::from_millis(5));
    let mut builder = Cluster::builder(ClusterConfig::new(2).with_control(control));
    ycsb::install_aloha(&mut builder);
    let cluster = builder.start().unwrap();
    ycsb::load_aloha(&cluster, &cfg);
    let target = ycsb::AlohaYcsb::new(cluster.database(), cfg);
    cluster.reset_stats();
    let report = run_windowed(&target, &driver());
    assert!(
        report.committed > 0,
        "adaptively paced cluster must commit transactions"
    );

    let snapshot = cluster.snapshot();
    let control = snapshot.child("control").expect("control subtree");

    // The pacer gauge must report a duration inside the AIMD clamp bounds
    // ([initial/5, initial*4] around a 5 ms initial).
    let micros = control
        .gauge("epoch_duration_micros")
        .expect("pacer duration gauge");
    assert!(
        (1_000..=20_000).contains(&micros),
        "epoch duration {micros}us escaped the clamp bounds"
    );
    assert!(
        control.gauge("pressure_millis").is_some(),
        "control node must export the pressure signal"
    );

    // The default adaptive gate admits everything the driver pushed.
    let admitted = control.counter("admitted").expect("gate admitted counter");
    assert!(
        admitted >= report.committed as u64,
        "gate admitted {admitted} < committed {}",
        report.committed
    );
    assert!(
        control.child("gate_s0").is_some() && control.child("gate_s1").is_some(),
        "control node must export per-FE gate children"
    );

    // The whole tree, control subtree included, survives a JSON round-trip.
    let json = snapshot.to_json().to_string();
    let parsed = StatsSnapshot::from_json_text(&json).expect("snapshot JSON re-parses");
    assert_eq!(
        parsed.child("control").and_then(|c| c.counter("admitted")),
        Some(admitted),
        "control counters must survive serialization"
    );
    assert_eq!(
        parsed
            .child("control")
            .and_then(|c| c.gauge("epoch_duration_micros")),
        Some(micros),
        "control gauges must survive serialization"
    );
    cluster.shutdown();
}

#[test]
fn gate_sheds_with_retryable_overloaded_and_recovers() {
    // Window of exactly one write token, no wait queue: the second in-flight
    // transaction must shed immediately.
    let gate = GateConfig::default()
        .with_window(1)
        .with_read_reserve(0)
        .with_queue(0, Duration::ZERO);
    let control = ControlConfig::fixed(Duration::from_millis(2)).with_gate(Some(gate));
    let cluster = incr_cluster(control);
    let db = cluster.database();

    // First admission holds the sole token for as long as its handle lives.
    let held = db.execute(INCR, Vec::new()).unwrap();
    let err = db.execute(INCR, Vec::new()).expect_err("window is full");
    assert!(
        matches!(err, Error::Overloaded { .. }),
        "expected Overloaded, got {err:?}"
    );
    assert!(err.is_retryable(), "overload shedding must be retryable");
    assert!(
        err.retry_after().is_some_and(|d| d > Duration::ZERO),
        "Overloaded must carry a positive retry hint"
    );

    // Shed transactions never reached the engine: nothing was installed.
    held.wait_processed().unwrap();
    drop(held); // releases the permit

    // With the token back, admission succeeds again and the state shows
    // exactly the admitted increments.
    let h = db.execute(INCR, Vec::new()).unwrap();
    h.wait_processed().unwrap();
    drop(h);
    let vals = db.read_latest(&[Key::from("k")]).unwrap();
    assert_eq!(
        vals[0].as_ref().and_then(Value::as_i64),
        Some(2),
        "only the two admitted increments may be applied"
    );

    let snapshot = cluster.snapshot();
    let control = snapshot.child("control").expect("control subtree");
    assert!(control.counter("admitted").unwrap() >= 3);
    assert!(
        control.counter("shed").unwrap() >= 1,
        "the rejected transaction must be counted as shed"
    );
    cluster.shutdown();
}

#[test]
fn calvin_adaptive_cluster_commits_and_exports_control_subtree() {
    let cfg = YcsbConfig::with_contention_index(2, 0.01).with_keys_per_partition(500);
    let control = ControlConfig::adaptive(Duration::from_millis(5));
    let mut builder =
        CalvinCluster::builder(CalvinConfig::new(2).with_workers(2).with_control(control));
    ycsb::install_calvin(&mut builder);
    let cluster = builder.start().unwrap();
    ycsb::load_calvin(&cluster, &cfg);
    let target = ycsb::CalvinYcsb::new(cluster.database(), cfg);
    cluster.reset_stats();
    let report = run_windowed(&target, &driver());
    assert!(
        report.committed > 0,
        "adaptively paced Calvin cluster must commit transactions"
    );

    let snapshot = cluster.snapshot();
    let control = snapshot.child("control").expect("control subtree");
    let micros = control
        .gauge("epoch_duration_micros")
        .expect("pacer duration gauge");
    assert!(
        (1_000..=20_000).contains(&micros),
        "batch duration {micros}us escaped the clamp bounds"
    );
    assert!(
        control.child("pacer_s0").is_some() && control.child("pacer_s1").is_some(),
        "Calvin control node must export per-sequencer pacer children"
    );
    let admitted = control.counter("admitted").expect("gate admitted counter");
    assert!(admitted >= report.committed as u64);

    let json = snapshot.to_json().to_string();
    let parsed = StatsSnapshot::from_json_text(&json).expect("snapshot JSON re-parses");
    assert_eq!(
        parsed.child("control").and_then(|c| c.counter("admitted")),
        Some(admitted)
    );
    cluster.shutdown();
}

#[test]
fn calvin_gate_sheds_and_recovers() {
    let gate = GateConfig::default()
        .with_window(1)
        .with_read_reserve(0)
        .with_queue(0, Duration::ZERO);
    let control = ControlConfig::fixed(Duration::from_millis(2)).with_gate(Some(gate));
    let mut builder = CalvinCluster::builder(CalvinConfig::new(1).with_control(control));
    builder.register_program(
        INCR_CALVIN,
        calvin::fn_program(
            |_| calvin::CalvinPlan {
                read_set: vec![Key::from("k")],
                write_set: vec![Key::from("k")],
            },
            |_, reads, writes| {
                let cur = reads
                    .get(&Key::from("k"))
                    .and_then(|v| v.as_ref())
                    .and_then(Value::as_i64)
                    .unwrap_or(0);
                writes.push((Key::from("k"), Value::from_i64(cur + 1)));
            },
        ),
    );
    let cluster = builder.start().unwrap();
    cluster.load(Key::from("k"), Value::from_i64(0));
    let db = cluster.database();

    let held = db.execute(INCR_CALVIN, Vec::new()).unwrap();
    let err = db
        .execute(INCR_CALVIN, Vec::new())
        .expect_err("window is full");
    assert!(matches!(err, Error::Overloaded { .. }));
    assert!(err.is_retryable());

    held.wait().unwrap(); // consumes the handle, releasing the permit
    let h = db.execute(INCR_CALVIN, Vec::new()).unwrap();
    h.wait().unwrap();
    assert_eq!(
        cluster.read(&Key::from("k")).and_then(|v| v.as_i64()),
        Some(2),
        "only the two admitted increments may be applied"
    );

    let snapshot = cluster.snapshot();
    let control = snapshot.child("control").expect("control subtree");
    assert!(control.counter("shed").unwrap() >= 1);
    cluster.shutdown();
}

const INCR_CALVIN: calvin::ProgramId = calvin::ProgramId(1);

#[test]
fn fixed_control_mode_reports_configured_duration() {
    let control = ControlConfig::fixed(Duration::from_millis(4));
    let cluster = incr_cluster(control);
    let db = cluster.database();
    for _ in 0..5 {
        db.execute(INCR, Vec::new())
            .unwrap()
            .wait_processed()
            .unwrap();
    }
    let vals = db.read_latest(&[Key::from("k")]).unwrap();
    assert_eq!(vals[0].as_ref().and_then(Value::as_i64), Some(5));

    let snapshot = cluster.snapshot();
    let control = snapshot.child("control").expect("control subtree");
    assert_eq!(
        control.gauge("epoch_duration_micros"),
        Some(4_000),
        "Fixed mode must report exactly the configured duration"
    );
    cluster.shutdown();
}
