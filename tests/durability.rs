//! Durability torture tests: the disk WAL's file format under arbitrary
//! truncation and bit-rot, replay idempotency, online ALOHA kill-and-restart
//! with an independent checkpoint-plus-suffix replay check, and a
//! cross-system recovery equivalence run.
//!
//! The property tests drive [`aloha_storage::DurableLog`] directly — the
//! same scan the cluster recovery path uses — so "never a panic, never a
//! partial record" is proven at the layer every engine shares.

use std::collections::HashMap;
use std::fs;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use aloha_common::tempdir::TempDir;
use aloha_common::{Key, PartitionId, ServerId, Timestamp, Value};
use aloha_db::core_engine::{Cluster, ClusterConfig, DurableLogSpec, ProgramId, TxnPlan};
use aloha_functor::{Functor, HandlerRegistry};
use aloha_storage::{
    replay_records, restore_checkpoint, DurableLog, DurableLogConfig, LocalOnlyEnv, LogDamage,
    Partition, WalRecord,
};
use proptest::prelude::*;

/// Bytes of segment-file header (magic + sequence number) before frames.
const SEG_HEADER: usize = 16;
/// Bytes of frame header (u32 length + u32 crc) before the body.
const FRAME_HEADER: usize = 8;

fn ts(v: u64) -> Timestamp {
    Timestamp::from_raw(v)
}

/// Writes `payloads` as records 1..=n into a fresh log in `dir` and returns
/// the bytes of the single segment file holding them.
fn write_segment(dir: &Path, payloads: &[Vec<u8>]) -> Vec<u8> {
    let (log, rec) = DurableLog::open(DurableLogConfig::new(dir)).unwrap();
    assert!(rec.records.is_empty());
    for (i, p) in payloads.iter().enumerate() {
        log.append(i as u64 + 1, p).unwrap();
    }
    log.commit().unwrap();
    log.close();
    fs::read(dir.join("wal-00000000.log")).unwrap()
}

/// Byte offsets of each frame boundary in a segment holding `payloads`:
/// `bounds[i]` is where frame `i` starts; the last entry is the file length.
fn frame_bounds(payloads: &[Vec<u8>]) -> Vec<usize> {
    let mut bounds = vec![SEG_HEADER];
    for p in payloads {
        // Body = u64 version + payload.
        let last = *bounds.last().unwrap();
        bounds.push(last + FRAME_HEADER + 8 + p.len());
    }
    bounds
}

/// The records a scan of the tampered directory yields, as `(version,
/// payload)` pairs, plus the damage verdict.
fn rescan(dir: &Path) -> (Vec<(u64, Vec<u8>)>, Option<LogDamage>) {
    let (_log, rec) = DurableLog::open(DurableLogConfig::new(dir)).unwrap();
    (rec.records, rec.damage)
}

proptest! {
    /// Truncating the tail segment at ANY byte offset recovers exactly the
    /// frames that survived whole — never a panic, never a partial record,
    /// and damage is reported precisely when the cut falls mid-frame.
    #[test]
    fn truncation_recovers_exact_valid_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..24), 1..12),
        cut_sel in 0usize..10_000,
    ) {
        let dir = TempDir::new("torn");
        let bytes = write_segment(dir.path(), &payloads);
        let bounds = frame_bounds(&payloads);
        prop_assert_eq!(*bounds.last().unwrap(), bytes.len());

        let cut = cut_sel % (bytes.len() + 1);
        fs::write(dir.join("wal-00000000.log"), &bytes[..cut]).unwrap();

        let (records, damage) = rescan(dir.path());
        // Frames wholly below the cut survive; everything after is gone.
        let survivors = bounds[1..].iter().filter(|b| **b <= cut).count();
        prop_assert_eq!(records.len(), survivors);
        for (i, (version, payload)) in records.iter().enumerate() {
            prop_assert_eq!(*version, i as u64 + 1);
            prop_assert_eq!(payload, &payloads[i]);
        }
        // A cut on a frame boundary is indistinguishable from a clean
        // close; anywhere else must be flagged as a torn tail.
        if bounds.contains(&cut) {
            prop_assert!(damage.is_none(), "clean cut at {} flagged: {:?}", cut, damage);
        } else {
            prop_assert!(
                matches!(damage, Some(LogDamage::TornTail { .. })),
                "cut at {} of {} not reported as torn: {:?}", cut, bytes.len(), damage
            );
        }
    }

    /// Flipping ANY byte anywhere in a segment never yields a record that
    /// was not written: the checksum stops the scan at the damaged frame
    /// and every record before it comes back verbatim.
    #[test]
    fn bit_flip_never_yields_a_wrong_record(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..24), 1..12),
        flip_sel in 0usize..10_000,
        mask in 1u8..=255,
    ) {
        let dir = TempDir::new("flip");
        let mut bytes = write_segment(dir.path(), &payloads);
        let bounds = frame_bounds(&payloads);

        let flip = flip_sel % bytes.len();
        bytes[flip] ^= mask;
        fs::write(dir.join("wal-00000000.log"), &bytes).unwrap();

        let (records, damage) = rescan(dir.path());
        if flip < 8 {
            // Magic destroyed: nothing parses, damage at offset zero.
            prop_assert!(records.is_empty());
            prop_assert!(damage.is_some());
        } else if flip < SEG_HEADER {
            // The sequence field is not covered by a frame checksum; the
            // frames themselves are untouched and all come back.
            prop_assert_eq!(records.len(), payloads.len());
        } else {
            // The flip lands inside frame `hit`; the scan returns exactly
            // the frames before it, bit-for-bit.
            let hit = bounds[1..].iter().filter(|b| **b <= flip).count();
            prop_assert_eq!(records.len(), hit);
            prop_assert!(damage.is_some(), "flip at {} undetected", flip);
        }
        for (i, (version, payload)) in records.iter().enumerate() {
            prop_assert_eq!(*version, i as u64 + 1);
            prop_assert_eq!(payload, &payloads[i]);
        }
    }

    /// Replaying the same recovered suffix twice (crash during recovery,
    /// recover again) leaves the same state as replaying it once, and a
    /// checkpoint covering every record makes replay a no-op.
    #[test]
    fn replay_is_idempotent_and_respects_checkpoint(
        ops in proptest::collection::vec(
            (0usize..6, -50i64..50, any::<bool>()), 1..30),
    ) {
        let key = |i: usize| Key::from_parts(&[b"idem", &(i as u32).to_be_bytes()]);
        let dir = TempDir::new("idem");
        let (log, _) = DurableLog::open(DurableLogConfig::new(dir.path())).unwrap();
        let mut model: HashMap<usize, i64> = HashMap::new();
        for (n, (k, delta, abort)) in ops.iter().enumerate() {
            let version = ts(10 + n as u64);
            let record = WalRecord::Install {
                key: key(*k),
                version,
                functor: Functor::Add(*delta),
            };
            record.append_durable(&log).unwrap();
            if *abort {
                WalRecord::Abort { key: key(*k), version }
                    .append_durable(&log)
                    .unwrap();
            } else {
                *model.entry(*k).or_insert(0) += delta;
            }
        }
        log.commit().unwrap();
        log.close();

        let (_log2, rec) = DurableLog::open(DurableLogConfig::new(dir.path())).unwrap();
        prop_assert!(rec.damage.is_none());
        let registry = Arc::new(HandlerRegistry::new());
        let partition = Partition::new(PartitionId(0), 1, Arc::clone(&registry));
        let first = replay_records(&partition, &rec.records, Timestamp::ZERO).unwrap();
        prop_assert!(first > 0);
        let read = |k: usize| {
            partition
                .get(&key(k), Timestamp::MAX, &LocalOnlyEnv)
                .unwrap()
                .value
                .and_then(|v| v.as_i64())
                .unwrap_or(0)
        };
        for k in 0..6 {
            prop_assert_eq!(read(k), model.get(&k).copied().unwrap_or(0));
        }
        // Second replay of the identical suffix: counts the same records,
        // changes nothing.
        let second = replay_records(&partition, &rec.records, Timestamp::ZERO).unwrap();
        prop_assert_eq!(first, second);
        for k in 0..6 {
            prop_assert_eq!(read(k), model.get(&k).copied().unwrap_or(0));
        }
        // A checkpoint at the max version covers every record: nothing to do.
        let max_version = rec.records.iter().map(|(v, _)| *v).max().unwrap();
        let fresh = Partition::new(PartitionId(0), 1, registry);
        prop_assert_eq!(
            replay_records(&fresh, &rec.records, ts(max_version)).unwrap(), 0);
    }
}

// ---------------------------------------------------------------------
// Online ALOHA kill-and-restart over the disk WAL, checked two ways: the
// live cluster's reads, and an offline replay of the same directory through
// the raw storage primitives.
// ---------------------------------------------------------------------

const INCR: ProgramId = ProgramId(1);

fn reg_key(i: usize) -> Key {
    Key::from_parts(&[b"dur", &(i as u32).to_be_bytes()])
}

fn durable_cluster(servers: u16, dir: &TempDir) -> Cluster {
    let config = ClusterConfig::new(servers)
        .with_epoch_duration(Duration::from_millis(2))
        .with_durable_log(DurableLogSpec::new(dir.path()));
    let mut builder = Cluster::builder(config);
    builder.register_program(
        INCR,
        aloha_db::core_engine::fn_program(|ctx| {
            Ok(TxnPlan::new().write(Key::from(ctx.args), Functor::add(1)))
        }),
    );
    builder.start().unwrap()
}

fn incr_all(db: &aloha_db::core_engine::Database, keys: &[Key], times: usize) {
    let handles: Vec<_> = (0..times)
        .flat_map(|_| keys.iter())
        .map(|k| db.execute(INCR, k.as_bytes()).unwrap())
        .collect();
    for h in handles {
        h.wait_processed().unwrap();
    }
}

#[test]
fn aloha_kill_and_restart_recovers_checkpoint_plus_wal_suffix() {
    const KEYS: usize = 8;
    let dir = TempDir::new("aloha-restart");
    let cluster = durable_cluster(2, &dir);
    let db = cluster.database();
    let keys: Vec<Key> = (0..KEYS).map(reg_key).collect();

    // Phase 1 lands inside the checkpoint; phase 2 only in the WAL suffix.
    incr_all(&db, &keys, 5);
    let ckpt = cluster.checkpoint_to_wal().unwrap();
    assert!(ckpt > Timestamp::ZERO, "checkpoint must cover phase 1");
    incr_all(&db, &keys, 3);

    cluster.kill_server(ServerId(0)).unwrap();
    let report = cluster.restart_server(ServerId(0)).unwrap();
    assert_eq!(
        report.checkpoint, ckpt,
        "recovery must restore from the installed checkpoint: {report:?}"
    );
    assert!(
        report.replayed > 0,
        "phase-2 records live only in the WAL suffix: {report:?}"
    );
    // The in-process kill closes the log cleanly, so no frame is torn.
    assert!(
        !report.torn_tail,
        "clean close left a torn tail: {report:?}"
    );

    // Every acknowledged increment survived the crash.
    let finals = db.read_latest(&keys).unwrap();
    for (k, v) in keys.iter().zip(&finals) {
        assert_eq!(
            v.as_ref().and_then(Value::as_i64),
            Some(8),
            "lost increments on {k:?} after restart"
        );
    }

    // Liveness: the recovered server keeps accepting and persisting work.
    incr_all(&db, &keys, 2);
    let finals = db.read_latest(&keys).unwrap();
    for v in &finals {
        assert_eq!(v.as_ref().and_then(Value::as_i64), Some(10));
    }

    // The restarted server exports the durability subtree with the
    // recovery cost it just paid.
    let snapshot = cluster.snapshot();
    let server0 = snapshot.child("server_0").expect("server_0 subtree");
    let durability = server0.child("durability").expect("durability subtree");
    assert!(durability.counter("records").unwrap_or(0) > 0);
    cluster.shutdown();

    // Offline cross-check: replay server 0's directory through the raw
    // storage primitives — recovered state IS checkpoint + WAL suffix.
    let (_log, rec) = DurableLog::open(DurableLogConfig::new(dir.join("server-0"))).unwrap();
    assert!(
        rec.damage.is_none(),
        "clean shutdown left damage: {:?}",
        rec.damage
    );
    let partition = Partition::new(PartitionId(0), 2, Arc::new(HandlerRegistry::new()));
    let mut checkpoint = Timestamp::ZERO;
    if let Some((_, blob)) = &rec.checkpoint {
        checkpoint = restore_checkpoint(&partition, blob).unwrap();
    }
    assert_eq!(
        checkpoint, ckpt,
        "offline scan found a different checkpoint"
    );
    replay_records(&partition, &rec.records, checkpoint).unwrap();
    for k in keys.iter().filter(|k| partition.owns(k)) {
        let got = partition
            .get(k, Timestamp::MAX, &LocalOnlyEnv)
            .unwrap()
            .value
            .and_then(|v| v.as_i64());
        assert_eq!(got, Some(10), "offline replay diverged on {k:?}");
    }
}

// ---------------------------------------------------------------------
// Cross-system recovery equivalence: the same increment stream through
// ALOHA and Calvin, each with a checkpoint, a kill and a restart mid-run,
// must converge to identical per-key counts.
// ---------------------------------------------------------------------

#[test]
fn cross_system_recovery_converges_to_the_same_state() {
    const KEYS: usize = 10;
    const PHASE1: usize = 4;
    const PHASE2: usize = 3;
    let keys: Vec<Key> = (0..KEYS).map(reg_key).collect();

    // ALOHA: checkpoint after phase 1, kill/restart server 0, then phase 2.
    let adir = TempDir::new("xsys-aloha");
    let aloha = durable_cluster(2, &adir);
    let adb = aloha.database();
    incr_all(&adb, &keys, PHASE1);
    aloha.checkpoint_to_wal().unwrap();
    aloha.kill_server(ServerId(0)).unwrap();
    let report = aloha.restart_server(ServerId(0)).unwrap();
    assert!(report.checkpoint > Timestamp::ZERO || report.replayed > 0);
    incr_all(&adb, &keys, PHASE2);
    let aloha_finals: Vec<Option<i64>> = adb
        .read_latest(&keys)
        .unwrap()
        .iter()
        .map(|v| v.as_ref().and_then(Value::as_i64))
        .collect();
    aloha.shutdown();

    // Calvin: same stream, same crash schedule (quiescent kill).
    let cdir = TempDir::new("xsys-calvin");
    let config = calvin::CalvinConfig::new(2)
        .with_batch_duration(Duration::from_millis(2))
        .with_durable_log(calvin::CalvinDurability::new(cdir.path()));
    let mut builder = calvin::CalvinCluster::builder(config);
    builder.register_program(
        calvin::ProgramId(1),
        calvin::fn_program(
            |args| {
                let key = Key::from(args);
                calvin::CalvinPlan {
                    read_set: vec![key.clone()],
                    write_set: vec![key],
                }
            },
            |args, reads, writes| {
                let key = Key::from(args);
                let old = reads
                    .get(&key)
                    .and_then(|v| v.as_ref())
                    .and_then(Value::as_i64)
                    .unwrap_or(0);
                writes.push((key, Value::from_i64(old + 1)));
            },
        ),
    );
    let cc = builder.start().unwrap();
    let cdb = cc.database();
    let calvin_incr = |times: usize| {
        let handles: Vec<_> = (0..times)
            .flat_map(|_| keys.iter())
            .map(|k| cdb.execute(calvin::ProgramId(1), k.as_bytes()).unwrap())
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
    };
    calvin_incr(PHASE1);
    cc.checkpoint().unwrap();
    cc.kill_server(ServerId(0)).unwrap();
    let report = cc.restart_server(ServerId(0)).unwrap();
    assert!(report.checkpoint_round > 0 || report.replayed_puts > 0);
    calvin_incr(PHASE2);
    let calvin_finals: Vec<Option<i64>> = keys
        .iter()
        .map(|k| cc.read(k).and_then(|v| v.as_i64()))
        .collect();
    cc.shutdown();

    let expected = Some((PHASE1 + PHASE2) as i64);
    for (k, (a, c)) in keys.iter().zip(aloha_finals.iter().zip(&calvin_finals)) {
        assert_eq!(a, c, "engines diverged on {k:?} after recovery");
        assert_eq!(*a, expected, "count on {k:?} wrong after recovery");
    }
}
