//! Property-based tests on the core data structures, on Algorithm 1, and on
//! the fault-injection network layer.

use std::collections::{BTreeMap, HashMap};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use aloha_common::{Key, PartitionId, ServerId, Timestamp, Value};
use aloha_epoch::TimestampOracle;
use aloha_functor::{builtin, Functor, HandlerRegistry};
use aloha_net::{Addr, Bus, DelayLine, FaultPlan, LinkFault, NetConfig};
use aloha_storage::{ChainRead, FinalForm, LocalOnlyEnv, Partition, SnapshotRead, VersionChain};
use aloha_workloads::tpcc::{ItemRow, OrderLineRow, OrderRow, StockRow};
use proptest::prelude::*;

fn ts(v: u64) -> Timestamp {
    Timestamp::from_raw(v)
}

proptest! {
    /// The version chain behaves exactly like a sorted map under arbitrary
    /// interleavings of inserts and floor lookups.
    #[test]
    fn version_chain_matches_btreemap_model(
        ops in proptest::collection::vec((0u64..500, any::<i64>()), 1..120),
        probes in proptest::collection::vec(0u64..600, 1..40),
    ) {
        let chain = VersionChain::new();
        let mut model: BTreeMap<u64, i64> = BTreeMap::new();
        for (v, x) in &ops {
            let inserted = chain.insert(ts(*v + 1), Functor::value_i64(*x));
            let was_new = !model.contains_key(v);
            prop_assert_eq!(inserted, was_new);
            model.entry(*v).or_insert(*x);
        }
        prop_assert_eq!(chain.len(), model.len());
        for probe in &probes {
            let got = chain.floor(ts(*probe + 1)).map(|r| match r {
                ChainRead::Live(rec) => (rec.version().raw() - 1, rec.load()),
                ChainRead::Final(v, form) => (v.raw() - 1, form.into_functor()),
            });
            let expected = model
                .range(..=probe)
                .next_back()
                .map(|(v, x)| (*v, Functor::value_i64(*x)));
            prop_assert_eq!(got, expected);
        }
        // Versions remain sorted no matter the insertion order.
        let versions = chain.versions();
        prop_assert!(versions.windows(2).all(|w| w[0] < w[1]));
    }

    /// Watermark-driven compaction is invisible to reads: for any mix of
    /// committed and aborted settled versions plus a pending tail, any read
    /// at any bound within the retained window returns the same (version,
    /// value) before and after compaction, the watermark never exposes a
    /// non-final record, and pending records are never promoted.
    #[test]
    fn compaction_preserves_reads_and_watermark_finality(
        ops in proptest::collection::vec((0u64..300, any::<i64>(), any::<bool>()), 1..80),
        pending in proptest::collection::vec(400u64..500, 0..6),
        keep in 1usize..4,
        horizon in 0u64..600,
    ) {
        let chain = VersionChain::new();
        for (v, x, abort) in &ops {
            let f = if *abort { Functor::Aborted } else { Functor::value_i64(*x) };
            chain.insert(ts(*v + 1), f);
        }
        let top = ops.iter().map(|(v, _, _)| *v + 1).max().unwrap();
        chain.advance_watermark(ts(top));
        // A pending (uncomputed) tail strictly above the watermark.
        for v in &pending {
            chain.insert(ts(*v), Functor::add(1));
        }
        // A read: floor + skip-aborted, as Algorithm 1's Get does.
        let read = |bound: u64| -> Option<(u64, Option<i64>)> {
            let mut cursor = ts(bound);
            loop {
                let (v, form) = match chain.floor(cursor)? {
                    ChainRead::Final(v, form) => (v, form),
                    ChainRead::Live(rec) => (rec.version(), rec.final_form()?),
                };
                match form {
                    FinalForm::Aborted => cursor = v.pred(),
                    FinalForm::Value(x) => return Some((v.raw(), x.as_i64())),
                    FinalForm::Deleted => return Some((v.raw(), None)),
                }
            }
        };
        let before: Vec<_> = (0..=top + 1).map(read).collect();
        chain.compact(ts(horizon), keep);
        // The oldest surviving committed version bounds the retained window.
        let oldest_committed = chain.versions().into_iter().find(|v| {
            matches!(
                chain.read_at(*v),
                Some(ChainRead::Final(_, form)) if !form.is_aborted()
            ) || matches!(
                chain.read_at(*v),
                Some(ChainRead::Live(rec)) if rec.final_form().is_some_and(|f| !f.is_aborted())
            )
        });
        for (bound, was) in (0..=top + 1).zip(&before) {
            if oldest_committed.is_none_or(|oldest| ts(bound) >= oldest) {
                prop_assert_eq!(&read(bound), was, "read at {} changed", bound);
            }
        }
        // Watermark finality: every record at or below the watermark reads
        // as a final form, never a pending functor.
        for v in chain.versions() {
            if v <= chain.watermark() {
                let is_final = match chain.read_at(v).unwrap() {
                    ChainRead::Final(..) => true,
                    ChainRead::Live(rec) => rec.final_form().is_some(),
                };
                prop_assert!(is_final, "watermark exposed non-final record at {:?}", v);
            }
        }
        // The pending tail survives compaction untouched and uncomputed.
        for v in &pending {
            prop_assert!(matches!(
                chain.read_at(ts(*v)),
                Some(ChainRead::Live(rec)) if rec.final_form().is_none()
            ));
        }
    }

    /// The snapshot-read fast path never observes a *torn* multi-key
    /// transaction. Every transaction writes all of its keys at one
    /// timestamp, so a reader following the frontend's protocol — read every
    /// key at one bound, lift the bound to the retry hint whenever any chain
    /// answers `Folded` — must land on the same transaction on every key,
    /// even when the keys live on partitions whose compaction sweeps run
    /// with different horizons and retention depths.
    #[test]
    fn snapshot_reads_are_never_torn(
        raw_txns in proptest::collection::vec((1u64..400, any::<bool>()), 1..60),
        horizon_a in 0u64..500,
        horizon_b in 0u64..500,
        keep_a in 1usize..3,
        keep_b in 1usize..3,
        probes in proptest::collection::vec(0u64..500, 1..30),
    ) {
        let txns: BTreeMap<u64, bool> = raw_txns.into_iter().collect();
        let (a, b) = (VersionChain::new(), VersionChain::new());
        for (i, (v, abort)) in txns.iter().enumerate() {
            let f = if *abort { Functor::Aborted } else { Functor::value_i64(i as i64) };
            a.insert(ts(*v), f.clone());
            b.insert(ts(*v), f);
        }
        let top = *txns.keys().next_back().unwrap();
        a.advance_watermark(ts(top));
        b.advance_watermark(ts(top));
        // Divergent per-partition compaction: different horizons and depths.
        a.compact(ts(horizon_a), keep_a);
        b.compact(ts(horizon_b), keep_b);
        // The committed history both keys share: version -> transaction id.
        let committed: BTreeMap<u64, i64> = txns.iter().enumerate()
            .filter(|(_, (_, abort))| !**abort)
            .map(|(i, (v, _))| (*v, i as i64))
            .collect();
        for probe in &probes {
            let mut bound = ts(*probe);
            let mut answer = None;
            // The frontend's folded-retry loop (RPC_ATTEMPTS-bounded there).
            for _ in 0..8 {
                match (a.snapshot_read(bound), b.snapshot_read(bound)) {
                    (SnapshotRead::Folded(r), _) | (_, SnapshotRead::Folded(r)) => {
                        prop_assert!(r > Timestamp::ZERO, "retry hint must name a bound");
                        prop_assert!(r > bound, "retry hint must make progress");
                        bound = r;
                    }
                    pair => { answer = Some(pair); break; }
                }
            }
            prop_assert!(answer.is_some(), "folded-retry did not converge");
            let expected = committed.range(..=bound.raw()).next_back();
            match answer.unwrap() {
                (SnapshotRead::Found(va, fa), SnapshotRead::Found(vb, fb)) => {
                    prop_assert_eq!(va, vb, "torn read: keys from different transactions");
                    let (ev, et) = expected.expect("model has a committed floor");
                    prop_assert_eq!(va, ts(*ev));
                    for form in [fa, fb] {
                        match form {
                            FinalForm::Value(x) => prop_assert_eq!(x.as_i64(), Some(*et)),
                            other => prop_assert!(false, "unexpected form {:?}", other),
                        }
                    }
                }
                (SnapshotRead::Missing, SnapshotRead::Missing) => {
                    prop_assert!(expected.is_none(), "both chains lost committed history");
                }
                pair => prop_assert!(false, "torn or pending snapshot read: {:?}", pair),
            }
        }
    }

    /// Partition-level compaction invariance: settle a numeric chain, then
    /// compact with an aggressive keep_versions=1 and assert the latest
    /// read still equals the sequential fold.
    #[test]
    fn partition_reads_survive_aggressive_compaction(
        initial in -1_000i64..1_000,
        deltas in proptest::collection::vec(-50i64..50, 1..30),
    ) {
        let partition = Partition::new(
            PartitionId(0), 1, Arc::new(HandlerRegistry::new()),
        );
        let key = Key::from("k");
        partition.install(&key, ts(1), Functor::value_i64(initial)).unwrap();
        for (i, d) in deltas.iter().enumerate() {
            partition.install(&key, ts(10 + i as u64), Functor::Add(*d)).unwrap();
        }
        let expected: i64 = initial + deltas.iter().sum::<i64>();
        // Settle everything, then fold to a single base record.
        let read = partition.get(&key, Timestamp::MAX, &LocalOnlyEnv).unwrap();
        prop_assert_eq!(read.value.as_ref().unwrap().as_i64(), Some(expected));
        partition.store().compact(Timestamp::MAX, 1);
        let mem = partition.store().memory_stats();
        prop_assert_eq!(mem.live_records, 0);
        prop_assert_eq!(mem.settled_records, 1);
        let after = partition.get(&key, Timestamp::MAX, &LocalOnlyEnv).unwrap();
        prop_assert_eq!(after.value.unwrap().as_i64(), Some(expected));
        prop_assert_eq!(after.version, read.version);
    }

    /// Numeric functor chains resolve to the same value as a sequential
    /// left-fold over the committed operations in version order.
    #[test]
    fn numeric_chain_equals_sequential_fold(
        initial in -1_000i64..1_000,
        ops in proptest::collection::vec((0u8..4, -50i64..50, any::<bool>()), 0..40),
    ) {
        let partition = Partition::new(
            PartitionId(0), 1, Arc::new(HandlerRegistry::new()),
        );
        let key = Key::from("k");
        partition.install(&key, ts(1), Functor::value_i64(initial)).unwrap();
        let mut expected = initial;
        for (i, (kind, arg, aborted)) in ops.iter().enumerate() {
            let version = ts(10 + i as u64);
            let functor = match kind {
                0 => Functor::Add(*arg),
                1 => Functor::Subtr(*arg),
                2 => Functor::Max(*arg),
                _ => Functor::Min(*arg),
            };
            partition.install(&key, version, functor.clone()).unwrap();
            if *aborted {
                partition.abort_version(&key, version);
            } else {
                expected = builtin::apply_numeric(&functor, Some(&Value::from_i64(expected)))
                    .unwrap()
                    .as_i64()
                    .unwrap();
            }
        }
        let read = partition.get(&key, Timestamp::MAX, &LocalOnlyEnv).unwrap();
        prop_assert_eq!(read.value.unwrap().as_i64(), Some(expected));
    }

    /// Historical reads at every intermediate version match the prefix fold.
    #[test]
    fn historical_reads_match_prefix_folds(
        adds in proptest::collection::vec(-20i64..20, 1..25),
    ) {
        let partition = Partition::new(
            PartitionId(0), 1, Arc::new(HandlerRegistry::new()),
        );
        let key = Key::from("k");
        partition.install(&key, ts(1), Functor::value_i64(0)).unwrap();
        for (i, d) in adds.iter().enumerate() {
            partition.install(&key, ts(2 + i as u64), Functor::Add(*d)).unwrap();
        }
        // Settle everything first.
        partition.get(&key, Timestamp::MAX, &LocalOnlyEnv).unwrap();
        let mut prefix = 0i64;
        for (i, d) in adds.iter().enumerate() {
            prefix += d;
            let read = partition.get(&key, ts(2 + i as u64), &LocalOnlyEnv).unwrap();
            prop_assert_eq!(read.value.unwrap().as_i64(), Some(prefix));
        }
    }

    /// Timestamp component round-trips and order embedding.
    #[test]
    fn timestamp_parts_round_trip(
        micros in 0u64..(1u64 << 40),
        server in 0u16..=255,
        seq in 0u64..=Timestamp::MAX_SEQ,
    ) {
        let t = Timestamp::from_parts(micros, ServerId(server), seq);
        prop_assert_eq!(t.micros(), micros);
        prop_assert_eq!(t.server(), ServerId(server));
        prop_assert_eq!(t.seq(), seq);
        prop_assert_eq!(Timestamp::from_raw(t.raw()), t);
    }

    /// The oracle never goes backwards and never leaves the window, for any
    /// clock behavior (even a wildly jumping one).
    #[test]
    fn oracle_is_monotone_in_any_clock(
        clocks in proptest::collection::vec(0u64..2_000, 1..200),
    ) {
        let mut oracle = TimestampOracle::new(ServerId(1));
        let mut last = Timestamp::ZERO;
        for now in clocks {
            if let Some(issued) = oracle.issue(now, 500, 1_500) {
                prop_assert!(issued > last);
                prop_assert!((500..=1_500).contains(&issued.micros()));
                last = issued;
            } else {
                // Refusal is only allowed when the clock is past the window
                // or the window is exhausted at its end.
                prop_assert!(now > 1_500 || last.micros() == 1_500);
            }
        }
    }

    /// TPC-C row codecs round-trip arbitrary field values.
    #[test]
    fn tpcc_rows_round_trip(
        i_id in any::<u32>(),
        w_id in any::<u32>(),
        price in any::<i64>(),
        qty in any::<i64>(),
        name in "[a-zA-Z0-9 ]{0,40}",
    ) {
        let item = ItemRow { i_id, name, price_cents: price };
        prop_assert_eq!(ItemRow::decode(&item.encode()).unwrap(), item);
        let stock = StockRow { i_id, w_id, quantity: qty, ytd: price, order_cnt: qty };
        prop_assert_eq!(StockRow::decode(&stock.encode()).unwrap(), stock);
        let order = OrderRow { o_id: price, d_id: i_id, w_id, c_id: i_id, ol_cnt: w_id };
        prop_assert_eq!(OrderRow::decode(&order.encode()).unwrap(), order);
        let ol = OrderLineRow {
            o_id: price, number: i_id, i_id, supply_w: w_id, qty: w_id, amount_cents: qty,
        };
        prop_assert_eq!(OrderLineRow::decode(&ol.encode()).unwrap(), ol);
    }

    /// Routed keys always land on their target partition; parts round-trip.
    #[test]
    fn routed_key_placement(
        route in any::<u32>(),
        partitions in 1u16..=64,
        payload in proptest::collection::vec(any::<u8>(), 0..20),
    ) {
        let key = Key::with_route(route, &[&payload]);
        prop_assert_eq!(key.partition(partitions).0 as u32, route % partitions as u32);
        prop_assert_eq!(key.route(), Some(route));
        prop_assert_eq!(key.parts().unwrap(), vec![payload.as_slice()]);
    }

    /// Get with a bound below every version is missing; with a bound at or
    /// above the max it finds the last non-aborted version.
    #[test]
    fn get_bounds_are_tight(
        versions in proptest::collection::btree_set(2u64..1_000, 1..30),
    ) {
        let partition = Partition::new(
            PartitionId(0), 1, Arc::new(HandlerRegistry::new()),
        );
        let key = Key::from("k");
        for (i, v) in versions.iter().enumerate() {
            partition.install(&key, ts(*v), Functor::value_i64(i as i64)).unwrap();
        }
        let min = *versions.iter().next().unwrap();
        let max = *versions.iter().next_back().unwrap();
        let below = partition.get(&key, ts(min - 1), &LocalOnlyEnv).unwrap();
        prop_assert!(below.value.is_none());
        let at_max = partition.get(&key, ts(max), &LocalOnlyEnv).unwrap();
        prop_assert_eq!(at_max.version, ts(max));
        prop_assert_eq!(
            at_max.value.unwrap().as_i64(),
            Some(versions.len() as i64 - 1)
        );
    }

    /// For any seeded drop/dup plan, the delivered multiset obeys exact
    /// accounting against the bus fault counters — delivered = sent − drops
    /// + dups, with exactly `dups` values arriving twice and `drops` values
    /// not at all — and the counters themselves stay within generous
    /// (6-sigma) binomial bounds of the configured probabilities.
    #[test]
    fn fault_layer_delivery_matches_counters(
        seed in any::<u64>(),
        drop_pct in 0u32..40,
        dup_pct in 0u32..40,
    ) {
        const N: u64 = 400;
        let (drop_p, dup_p) = (f64::from(drop_pct) / 100.0, f64::from(dup_pct) / 100.0);
        let plan = FaultPlan::new(seed)
            .with_default_link(LinkFault::lossy(drop_p, dup_p, 0.0, Duration::ZERO));
        let bus: Bus<u32> = Bus::new(NetConfig::instant().with_fault(plan));
        let dest = Addr::Server(ServerId(0));
        let ep = bus.register(dest);
        for i in 0..N as u32 {
            bus.send(dest, i).unwrap();
        }
        let net = aloha_net::Transport::snapshot(&bus);
        let drops = net.counter("injected_drops").unwrap_or(0);
        let dups = net.counter("injected_dups").unwrap_or(0);
        // Dropping the bus closes the delay line, which flushes every copy
        // still in flight before the worker exits.
        drop(bus);
        let mut delivered = Vec::new();
        while let Some(v) = ep.try_recv() {
            delivered.push(v);
        }
        prop_assert_eq!(delivered.len() as u64, N - drops + dups);
        // With no reorders and a FIFO delay line, per-sender order survives;
        // duplicated copies arrive back-to-back.
        prop_assert!(delivered.windows(2).all(|w| w[0] <= w[1]), "order violated");
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for v in &delivered {
            prop_assert!(u64::from(*v) < N, "delivered a value never sent: {}", v);
            *counts.entry(*v).or_insert(0) += 1;
        }
        prop_assert!(counts.values().all(|&c| c <= 2), "more than one duplicate");
        prop_assert_eq!(counts.values().filter(|&&c| c == 2).count() as u64, dups);
        prop_assert_eq!((N - counts.len() as u64), drops);
        // Counter magnitudes: binomial mean ± 6 sigma (+1 slack), so a seed
        // that makes the RNG ignore its probabilities would be caught.
        let sigma_bound = |trials: u64, p: f64| 6.0 * (trials as f64 * p * (1.0 - p)).sqrt() + 1.0;
        let drop_dev = (drops as f64 - N as f64 * drop_p).abs();
        prop_assert!(drop_dev <= sigma_bound(N, drop_p), "drops={} p={}", drops, drop_p);
        let survived = N - drops;
        let dup_dev = (dups as f64 - survived as f64 * dup_p).abs();
        prop_assert!(dup_dev <= sigma_bound(survived, dup_p), "dups={} p={}", dups, dup_p);
    }

    /// Reordering alone never loses or duplicates anything: the delivered
    /// multiset equals the sent multiset for every seed and reorder rate.
    #[test]
    fn fault_reorder_preserves_multiset(
        seed in any::<u64>(),
        reorder_pct in 1u32..=100,
    ) {
        const N: u32 = 60;
        let plan = FaultPlan::new(seed).with_default_link(LinkFault::lossy(
            0.0, 0.0, f64::from(reorder_pct) / 100.0, Duration::from_micros(500),
        ));
        let bus: Bus<u32> = Bus::new(NetConfig::instant().with_fault(plan));
        let dest = Addr::Server(ServerId(0));
        let ep = bus.register(dest);
        for i in 0..N {
            bus.send(dest, i).unwrap();
        }
        drop(bus);
        let mut delivered = Vec::new();
        while let Some(v) = ep.try_recv() {
            delivered.push(v);
        }
        delivered.sort_unstable();
        prop_assert_eq!(delivered, (0..N).collect::<Vec<_>>());
    }

    /// The delay line never releases an item before its deadline of
    /// `latency + extra`, for any latency, jitter, and extra-delay mix
    /// (jitter only ever adds).
    #[test]
    fn delay_line_never_releases_early(
        latency_us in 100u64..3_000,
        jitter_us in 0u64..1_000,
        jitter_seed in any::<u64>(),
        extras_us in proptest::collection::vec(0u64..3_000, 1..12),
    ) {
        let latency = Duration::from_micros(latency_us);
        let config = NetConfig::with_jitter(latency, Duration::from_micros(jitter_us), jitter_seed);
        let (tx, rx) = mpsc::channel();
        let line = DelayLine::spawn(config, move |(sent, extra): (Instant, Duration)| {
            tx.send((sent, extra, Instant::now())).unwrap();
        });
        for e in &extras_us {
            let extra = Duration::from_micros(*e);
            line.push_after((Instant::now(), extra), extra);
        }
        line.close();
        let mut released = 0usize;
        while let Ok((sent, extra, got)) = rx.try_recv() {
            released += 1;
            prop_assert!(
                got - sent >= latency + extra,
                "released after {:?}, deadline {:?}",
                got - sent,
                latency + extra
            );
        }
        prop_assert_eq!(released, extras_us.len());
    }
}
