//! Serializability oracle tests: ALOHA-DB's final state must equal a
//! sequential replay of the committed transactions in timestamp order.
//!
//! This is the core correctness claim of functor-enabled ECC: transactions
//! never abort on conflicts, yet the outcome is as if they executed one at a
//! time in timestamp order (§I, §IV).

use std::sync::Arc;
use std::time::Duration;

use aloha_common::{Key, Value};
use aloha_db::core_engine::{fn_program, Cluster, ClusterConfig, ProgramId, TxnOutcome, TxnPlan};
use aloha_functor::{ComputeInput, Functor, HandlerId, HandlerOutput, UserFunctor};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const AFFINE: ProgramId = ProgramId(1);
const H_AFFINE: HandlerId = HandlerId(1);

fn key(i: usize) -> Key {
    Key::from_parts(&[b"reg", &(i as u32).to_be_bytes()])
}

/// Builds a cluster running "affine" transactions: `dst := 2*src + c`,
/// a non-commutative cross-key operation, so any reordering or lost
/// intermediate version changes the final state.
fn affine_cluster(servers: u16) -> Cluster {
    let mut builder =
        Cluster::builder(ClusterConfig::new(servers).with_epoch_duration(Duration::from_millis(2)));
    builder.register_handler(H_AFFINE, |input: &ComputeInput<'_>| {
        let src = Key::from(&input.args[0..input.args.len() - 8]);
        let c = i64::from_be_bytes(input.args[input.args.len() - 8..].try_into().unwrap());
        let v = input.reads.i64(&src).unwrap_or(0);
        HandlerOutput::commit(Value::from_i64(v.wrapping_mul(2).wrapping_add(c)))
    });
    builder.register_program(
        AFFINE,
        fn_program(|ctx| {
            // args = [dst_len u16][dst][src][c i64]
            let dst_len = u16::from_be_bytes(ctx.args[0..2].try_into().unwrap()) as usize;
            let dst = Key::from(&ctx.args[2..2 + dst_len]);
            let rest = &ctx.args[2 + dst_len..];
            let src = Key::from(&rest[..rest.len() - 8]);
            let mut handler_args = src.as_bytes().to_vec();
            handler_args.extend_from_slice(&rest[rest.len() - 8..]);
            Ok(TxnPlan::new().write(
                dst,
                Functor::User(UserFunctor::new(H_AFFINE, vec![src], handler_args)),
            ))
        }),
    );
    builder.start().unwrap()
}

fn encode_affine(dst: &Key, src: &Key, c: i64) -> Vec<u8> {
    let mut args = Vec::new();
    args.extend_from_slice(&(dst.as_bytes().len() as u16).to_be_bytes());
    args.extend_from_slice(dst.as_bytes());
    args.extend_from_slice(src.as_bytes());
    args.extend_from_slice(&c.to_be_bytes());
    args
}

fn run_oracle_check(servers: u16, keys: usize, txns: usize, threads: usize, seed: u64) {
    let cluster = affine_cluster(servers);
    for i in 0..keys {
        cluster.load(key(i), Value::from_i64(i as i64));
    }
    let db = cluster.database();

    // Fire transactions concurrently and record (timestamp, dst, src, c).
    let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let db = db.clone();
            let log = Arc::clone(&log);
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed + t as u64);
                let mut handles = Vec::new();
                for _ in 0..txns / threads {
                    let dst = key(rng.gen_range(0..keys));
                    let src = key(rng.gen_range(0..keys));
                    let c: i64 = rng.gen_range(-100..=100);
                    let h = db.execute(AFFINE, encode_affine(&dst, &src, c)).unwrap();
                    handles.push((h, dst, src, c));
                }
                for (h, dst, src, c) in handles {
                    assert_eq!(h.wait_processed().unwrap(), TxnOutcome::Committed);
                    log.lock().push((h.timestamp(), dst, src, c));
                }
            });
        }
    });

    // Sequential replay in timestamp order.
    let mut entries = log.lock().clone();
    entries.sort_by_key(|(ts, ..)| *ts);
    assert_eq!(entries.len(), (txns / threads) * threads);
    let mut model: std::collections::HashMap<Key, i64> =
        (0..keys).map(|i| (key(i), i as i64)).collect();
    for (_, dst, src, c) in &entries {
        let v = model.get(src).copied().unwrap_or(0);
        model.insert(dst.clone(), v.wrapping_mul(2).wrapping_add(*c));
    }

    // Final states must match exactly.
    let key_list: Vec<Key> = (0..keys).map(key).collect();
    let actual = db.read_latest(&key_list).unwrap();
    for (i, value) in actual.iter().enumerate() {
        let got = value.as_ref().unwrap().as_i64().unwrap();
        let expected = model[&key(i)];
        assert_eq!(
            got, expected,
            "key {i}: cluster state diverged from sequential replay in timestamp order"
        );
    }
    cluster.shutdown();
}

#[test]
fn concurrent_affine_txns_match_sequential_replay_small() {
    run_oracle_check(2, 4, 60, 3, 1);
}

#[test]
fn concurrent_affine_txns_match_sequential_replay_contended() {
    // Tiny key pool: almost every transaction conflicts with another.
    run_oracle_check(2, 2, 80, 4, 2);
}

#[test]
fn concurrent_affine_txns_match_sequential_replay_wide() {
    run_oracle_check(4, 16, 120, 4, 3);
}

#[test]
fn snapshot_reads_are_transactionally_atomic() {
    // A transaction writes the same value to two keys; concurrent
    // latest-version readers must never observe them unequal.
    const PAIR: ProgramId = ProgramId(9);
    let mut builder =
        Cluster::builder(ClusterConfig::new(2).with_epoch_duration(Duration::from_millis(2)));
    builder.register_program(
        PAIR,
        fn_program(|ctx| {
            let v = i64::from_be_bytes(ctx.args.try_into().unwrap());
            Ok(TxnPlan::new()
                .write(Key::from("left"), Functor::value_i64(v))
                .write(Key::from("right"), Functor::value_i64(v)))
        }),
    );
    let cluster = builder.start().unwrap();
    cluster.load(Key::from("left"), Value::from_i64(0));
    cluster.load(Key::from("right"), Value::from_i64(0));
    let db = cluster.database();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|scope| {
        let writer_db = db.clone();
        let writer_stop = Arc::clone(&stop);
        scope.spawn(move || {
            let mut v = 1i64;
            while !writer_stop.load(std::sync::atomic::Ordering::Relaxed) {
                let h = writer_db.execute(PAIR, v.to_be_bytes()).unwrap();
                h.wait_processed().unwrap();
                v += 1;
            }
        });
        for _ in 0..2 {
            let reader_db = db.clone();
            let reader_stop = Arc::clone(&stop);
            scope.spawn(move || {
                while !reader_stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let vals = reader_db
                        .read_latest(&[Key::from("left"), Key::from("right")])
                        .unwrap();
                    let l = vals[0].as_ref().unwrap().as_i64().unwrap();
                    let r = vals[1].as_ref().unwrap().as_i64().unwrap();
                    assert_eq!(l, r, "torn read: snapshot saw a partial transaction");
                }
            });
        }
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    cluster.shutdown();
}

#[test]
fn aborted_transactions_leave_no_trace_in_replay() {
    // Mix committed increments with guaranteed-abort transactions; the
    // final counter must count only commits.
    const INCR: ProgramId = ProgramId(1);
    const DOOMED: ProgramId = ProgramId(2);
    const H_ABORT: HandlerId = HandlerId(5);
    let mut builder =
        Cluster::builder(ClusterConfig::new(2).with_epoch_duration(Duration::from_millis(2)));
    builder.register_handler(H_ABORT, |_: &ComputeInput<'_>| HandlerOutput::abort());
    builder.register_program(
        INCR,
        fn_program(|_| Ok(TxnPlan::new().write(Key::from("ctr"), Functor::add(1)))),
    );
    builder.register_program(
        DOOMED,
        fn_program(|_| {
            Ok(TxnPlan::new().write(
                Key::from("ctr"),
                Functor::User(UserFunctor::new(H_ABORT, vec![], Vec::new())),
            ))
        }),
    );
    let cluster = builder.start().unwrap();
    cluster.load(Key::from("ctr"), Value::from_i64(0));
    let db = cluster.database();
    let mut rng = SmallRng::seed_from_u64(9);
    let mut commits = 0i64;
    let mut handles = Vec::new();
    for _ in 0..60 {
        if rng.gen_bool(0.5) {
            commits += 1;
            handles.push((db.execute(INCR, b"").unwrap(), true));
        } else {
            handles.push((db.execute(DOOMED, b"").unwrap(), false));
        }
    }
    for (h, should_commit) in handles {
        let outcome = h.wait_processed().unwrap();
        assert_eq!(outcome == TxnOutcome::Committed, should_commit);
    }
    let v = db.read_latest(&[Key::from("ctr")]).unwrap()[0]
        .as_ref()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(v, commits);
    cluster.shutdown();
}
