//! Facade package for the ALOHA-DB reproduction workspace.
//!
//! Hosts the runnable examples under `examples/` and the cross-crate
//! integration tests under `tests/`. Re-exports the most commonly used types.

pub use aloha_common as common;
pub use aloha_control as control;
pub use aloha_core as core_engine;
pub use aloha_epoch as epoch;
pub use aloha_functor as functor;
pub use aloha_net as net;
pub use aloha_storage as storage;
pub use aloha_workloads as workloads;
pub use calvin;
